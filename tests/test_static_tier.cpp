// Pipeline integration of the static triage tier: verdict equivalence with
// the tier off vs on (the acceptance bar — skips must never change what the
// sweep concludes), zero cross-check mismatches over the archetype corpus,
// per-kind skip accounting in LandscapeStats, the emulation fallback on the
// computed-jump adversary, cache memoization of static reports, registry
// gauges, text-report rendering, and unit tests of the typed mismatch oracle.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chain/blockchain.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "datagen/contract_factory.h"
#include "datagen/population.h"
#include "evm/types.h"
#include "static/provenance.h"

namespace {

using namespace proxion;
using namespace proxion::core;
using chain::Blockchain;
using datagen::ContractFactory;
using datagen::Population;
using datagen::PopulationGenerator;
using datagen::PopulationSpec;
using evm::Address;
using evm::U256;

Population make_population(std::uint32_t n) {
  PopulationSpec spec;
  spec.total_contracts = n;
  return PopulationGenerator().generate(spec);
}

PipelineConfig tier_off() {
  PipelineConfig config;
  config.static_tier.enabled = false;
  config.static_tier.cross_check = false;
  return config;
}

// ---------------------------------------------------------------------------
// The acceptance bar: prefilter on produces verdict-identical sweeps.

TEST(StaticTierTest, PrefilterPreservesVerdictsBitIdentical) {
  Population pop = make_population(600);
  AnalysisPipeline baseline(*pop.chain, &pop.sources, tier_off());
  AnalysisPipeline tiered(*pop.chain, &pop.sources);  // default: tier on
  const auto off = baseline.run(pop.sweep_inputs());
  const auto on = tiered.run(pop.sweep_inputs());
  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    EXPECT_EQ(off[i].proxy.verdict, on[i].proxy.verdict) << i;
    EXPECT_EQ(off[i].proxy.standard, on[i].proxy.standard) << i;
    EXPECT_EQ(off[i].proxy.logic_source, on[i].proxy.logic_source) << i;
    EXPECT_EQ(off[i].proxy.logic_slot, on[i].proxy.logic_slot) << i;
    EXPECT_EQ(off[i].proxy.logic_address, on[i].proxy.logic_address) << i;
    EXPECT_EQ(off[i].function_collision, on[i].function_collision) << i;
    EXPECT_EQ(off[i].storage_collision, on[i].storage_collision) << i;
  }
}

TEST(StaticTierTest, PopulationSweepHasZeroMismatchesAndRealSkips) {
  Population pop = make_population(800);
  AnalysisPipeline pipeline(*pop.chain, &pop.sources);
  const auto reports = pipeline.run(pop.sweep_inputs());
  const LandscapeStats stats = pipeline.summarize(reports);

  // Sound static claims: the emulation never contradicts them.
  EXPECT_EQ(stats.static_mismatches, 0u);
  EXPECT_TRUE(stats.static_mismatch_bits.empty());

  // The tier actually routes: plain contracts skip as phase-1-absent,
  // minimal proxies fast-path, and real slot proxies still emulate.
  EXPECT_GT(stats.static_skipped_absent, 0u);
  EXPECT_GT(stats.static_emulated, 0u);
  // Every unique blob past the phase-1 opcode test consulted the memoized
  // static report exactly once (cold cache, dedup on => all misses).
  EXPECT_EQ(stats.cache.static_misses,
            stats.static_skipped_dead + stats.static_skipped_minimal +
                stats.static_emulated);

  // Registry gauges mirror the totals for dashboard scrape.
  const auto snap = pipeline.registry().snapshot();
  ASSERT_TRUE(snap.gauges.count("sweep.static.skips"));
  ASSERT_TRUE(snap.gauges.count("sweep.static.mismatches"));
  EXPECT_EQ(snap.gauges.at("sweep.static.mismatches"), 0);
  EXPECT_GT(snap.gauges.at("sweep.static.skips"), 0);
}

// ---------------------------------------------------------------------------
// Per-fixture routing through a hand-built chain

struct MiniSweep {
  Blockchain chain;
  std::vector<SweepInput> inputs;
  Address deployer = Address::from_label("tier.deployer");

  Address add(const evm::Bytes& code) {
    const Address a = chain.deploy_runtime(deployer, code);
    inputs.push_back({.address = a, .year = 2022});
    return a;
  }
};

TEST(StaticTierTest, RoutesEachTriageKind) {
  MiniSweep s;
  const Address logic = s.chain.deploy_runtime(
      s.deployer, ContractFactory::token_contract(11));
  s.add(ContractFactory::minimal_proxy(logic));
  s.add(ContractFactory::token_contract(22));
  s.add(ContractFactory::dead_delegatecall_contract());
  const Address slotp = s.add(ContractFactory::slot_proxy(U256{3}));
  s.chain.set_storage(slotp, U256{3}, logic.to_word());

  AnalysisPipeline pipeline(s.chain, nullptr);
  const auto reports = pipeline.run(s.inputs);
  ASSERT_EQ(reports.size(), 4u);

  const auto& r_min = reports[0].proxy;
  EXPECT_EQ(r_min.static_triage, StaticTriage::kSkippedMinimalProxy);
  EXPECT_EQ(r_min.verdict, ProxyVerdict::kProxy);
  EXPECT_EQ(r_min.standard, ProxyStandard::kEip1167);
  EXPECT_EQ(r_min.logic_address, logic);
  EXPECT_EQ(r_min.logic_source, LogicSource::kHardcoded);
  EXPECT_EQ(r_min.emulation_steps, 0u);

  const auto& r_plain = reports[1].proxy;
  EXPECT_EQ(r_plain.static_triage, StaticTriage::kSkippedNoDelegatecall);
  EXPECT_EQ(r_plain.verdict, ProxyVerdict::kNotProxy);
  EXPECT_EQ(r_plain.emulation_steps, 0u);

  const auto& r_dead = reports[2].proxy;
  EXPECT_EQ(r_dead.static_triage, StaticTriage::kSkippedDeadDelegatecall);
  EXPECT_EQ(r_dead.verdict, ProxyVerdict::kNotProxy);
  EXPECT_TRUE(r_dead.has_delegatecall_opcode);  // phase 1 could NOT skip it
  EXPECT_EQ(r_dead.emulation_steps, 0u);

  const auto& r_slot = reports[3].proxy;
  EXPECT_EQ(r_slot.static_triage, StaticTriage::kEmulated);
  EXPECT_EQ(r_slot.verdict, ProxyVerdict::kProxy);
  EXPECT_EQ(r_slot.logic_source, LogicSource::kStorageSlot);
  EXPECT_EQ(r_slot.logic_slot, U256{3});
  EXPECT_EQ(r_slot.static_mismatch, 0u);
  EXPECT_GT(r_slot.emulation_steps, 0u);

  const LandscapeStats stats = pipeline.summarize(reports);
  EXPECT_EQ(stats.static_skipped_minimal, 1u);
  EXPECT_EQ(stats.static_skipped_absent, 1u);
  EXPECT_EQ(stats.static_skipped_dead, 1u);
  EXPECT_EQ(stats.static_emulated, 1u);
  EXPECT_EQ(stats.static_mismatches, 0u);

  // The text report surfaces the triage line.
  const std::string text = render_landscape_text(stats);
  EXPECT_NE(text.find("static tier:"), std::string::npos);
  EXPECT_NE(text.find("3/4 blobs skipped emulation"), std::string::npos);
  EXPECT_EQ(text.find("static mismatches:"), std::string::npos);
}

TEST(StaticTierTest, ComputedJumpFallsBackToEmulationAndStaysDetected) {
  // The maximally-sensitive adversary: a genuine proxy behind a jump the
  // abstract stack cannot resolve. A wrong skip here flips the verdict, so
  // this asserts both the fallback routing AND the detection.
  MiniSweep s;
  const Address logic = s.chain.deploy_runtime(
      s.deployer, ContractFactory::token_contract(33));
  const Address p = s.add(ContractFactory::computed_jump_contract(U256{7}));
  s.chain.set_storage(p, U256{7}, logic.to_word());

  AnalysisPipeline pipeline(s.chain, nullptr);
  const auto reports = pipeline.run(s.inputs);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].proxy.static_triage, StaticTriage::kEmulated);
  EXPECT_EQ(reports[0].proxy.verdict, ProxyVerdict::kProxy);
  EXPECT_EQ(reports[0].proxy.logic_address, logic);
  EXPECT_EQ(reports[0].proxy.static_mismatch, 0u)
      << "an incomplete CFG must make no contradictable claim";
}

TEST(StaticTierTest, StaticReportsAreMemoizedAcrossClones) {
  // With dedup off every clone re-runs the detector; the static report must
  // be computed once per blob and served from the cache afterwards.
  MiniSweep s;
  const Address logic = s.chain.deploy_runtime(
      s.deployer, ContractFactory::token_contract(44));
  for (int i = 0; i < 3; ++i) {
    const Address p = s.add(ContractFactory::eip1967_proxy());
    s.chain.set_storage(p, ContractFactory::eip1967_slot(), logic.to_word());
  }

  PipelineConfig config;
  config.dedup_by_code_hash = false;
  AnalysisPipeline pipeline(s.chain, nullptr, config);
  const auto reports = pipeline.run(s.inputs);
  const LandscapeStats stats = pipeline.summarize(reports);
  EXPECT_EQ(stats.cache.static_misses, 1u);
  EXPECT_EQ(stats.cache.static_hits, 2u);
  for (const auto& r : reports) {
    EXPECT_EQ(r.proxy.verdict, ProxyVerdict::kProxy);
    EXPECT_EQ(r.proxy.static_triage, StaticTriage::kEmulated);
  }
}

TEST(StaticTierTest, DetectorStandaloneDefaultsToTierOff) {
  // Standalone ProxyDetector keeps the seed behavior unless opted in.
  Blockchain chain;
  const Address d = Address::from_label("standalone.deployer");
  const Address t =
      chain.deploy_runtime(d, ContractFactory::token_contract(55));
  ProxyDetector detector(chain);
  const ProxyReport r = detector.analyze(t);
  EXPECT_EQ(r.static_triage, StaticTriage::kNotRun);
  EXPECT_EQ(r.static_mismatch, 0u);
}

// ---------------------------------------------------------------------------
// The typed mismatch oracle on synthetic inputs

static_analysis::StaticReport complete_report() {
  static_analysis::StaticReport st;
  st.cfg.complete = true;
  return st;
}

static_analysis::DelegatecallSite site(static_analysis::TargetClass cls,
                                       const U256& slot = U256{},
                                       const Address& addr = Address{}) {
  static_analysis::DelegatecallSite s;
  s.pc = 10;
  s.reachable = true;
  s.target_class = cls;
  s.slot = slot;
  s.address = addr;
  return s;
}

TEST(MismatchOracleTest, IncompleteCfgMakesNoClaim) {
  static_analysis::StaticReport st;
  st.cfg.complete = false;
  st.provably_no_delegatecall = true;  // would otherwise contradict below
  ProxyReport emulated;
  emulated.delegatecall_executed = true;
  EXPECT_EQ(ProxyDetector::static_vs_emulation_mismatch(st, emulated), 0u);
}

TEST(MismatchOracleTest, ReachabilityBit) {
  auto st = complete_report();
  st.provably_no_delegatecall = true;
  ProxyReport emulated;
  emulated.delegatecall_executed = true;
  EXPECT_EQ(ProxyDetector::static_vs_emulation_mismatch(st, emulated),
            kMismatchReachability);
  emulated.delegatecall_executed = false;
  EXPECT_EQ(ProxyDetector::static_vs_emulation_mismatch(st, emulated), 0u);
}

TEST(MismatchOracleTest, SlotBit) {
  using static_analysis::TargetClass;
  auto st = complete_report();
  st.has_delegatecall = true;
  st.any_reachable_delegatecall = true;
  st.sites = {site(TargetClass::kStorageSlot, U256{5})};
  ProxyReport emulated;
  emulated.verdict = ProxyVerdict::kProxy;
  emulated.delegatecall_executed = true;
  emulated.logic_source = LogicSource::kStorageSlot;
  emulated.logic_slot = U256{5};
  EXPECT_EQ(ProxyDetector::static_vs_emulation_mismatch(st, emulated), 0u);
  emulated.logic_slot = U256{6};
  EXPECT_EQ(ProxyDetector::static_vs_emulation_mismatch(st, emulated),
            kMismatchSlot);
  // A mixed site population withdraws the claim.
  st.sites.push_back(site(TargetClass::kUnknown));
  EXPECT_EQ(ProxyDetector::static_vs_emulation_mismatch(st, emulated), 0u);
}

TEST(MismatchOracleTest, TargetBit) {
  using static_analysis::TargetClass;
  const Address a = Address::from_label("oracle.a");
  const Address b = Address::from_label("oracle.b");
  auto st = complete_report();
  st.has_delegatecall = true;
  st.any_reachable_delegatecall = true;
  st.sites = {site(TargetClass::kHardcoded, U256{}, a)};
  ProxyReport emulated;
  emulated.verdict = ProxyVerdict::kProxy;
  emulated.delegatecall_executed = true;
  emulated.logic_source = LogicSource::kHardcoded;
  emulated.logic_address = a;
  EXPECT_EQ(ProxyDetector::static_vs_emulation_mismatch(st, emulated), 0u);
  emulated.logic_address = b;
  EXPECT_EQ(ProxyDetector::static_vs_emulation_mismatch(st, emulated),
            kMismatchTarget);
  // Unreachable sites make no claim: reachable_sites() filters them out.
  st.sites[0].reachable = false;
  EXPECT_EQ(ProxyDetector::static_vs_emulation_mismatch(st, emulated), 0u);
}

}  // namespace
