// The live introspection plane: exporter snapshot/ring/rate math against a
// fake clock, a Prometheus exposition round-trip that parses every line
// back, /healthz JSON schema, metric-name registration hygiene, the
// structured event log, the HTTP server over a real loopback socket, and
// scrape-during-record concurrency (a TSan target via
// tools/sanitize_smoke.sh).
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cstdint>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "datagen/population.h"
#include "obs/eventlog.h"
#include "obs/export.h"
#include "obs/http.h"
#include "obs/metrics.h"

namespace {

using proxion::obs::Event;
using proxion::obs::EventLog;
using proxion::obs::EventLogConfig;
using proxion::obs::Exporter;
using proxion::obs::ExporterConfig;
using proxion::obs::Histogram;
using proxion::obs::HttpResponse;
using proxion::obs::HttpServer;
using proxion::obs::Registry;
using proxion::obs::Severity;
using proxion::obs::SweepPhase;
using proxion::obs::SweepStatus;
using proxion::obs::TimedSnapshot;

// ---------------------------------------------------------------------------
// Metric-name hygiene (charset enforced at registration).

TEST(MetricNameTest, ValidatorAcceptsPrometheusPlusDotCharset) {
  EXPECT_TRUE(proxion::obs::valid_metric_name("rpc.get_storage_at"));
  EXPECT_TRUE(proxion::obs::valid_metric_name("sweep:shards_9"));
  EXPECT_TRUE(proxion::obs::valid_metric_name("_leading_underscore"));
  EXPECT_FALSE(proxion::obs::valid_metric_name(""));
  EXPECT_FALSE(proxion::obs::valid_metric_name("9starts_with_digit"));
  EXPECT_FALSE(proxion::obs::valid_metric_name("has space"));
  EXPECT_FALSE(proxion::obs::valid_metric_name("has-dash"));
  EXPECT_FALSE(proxion::obs::valid_metric_name("unicode\xc3\xa9"));
}

TEST(MetricNameTest, RegistryRejectsInvalidNamesAtEveryEntryPoint) {
  Registry reg;
  EXPECT_THROW(reg.counter("bad name"), std::invalid_argument);
  EXPECT_THROW(reg.gauge("bad-name"), std::invalid_argument);
  EXPECT_THROW(reg.histogram(""), std::invalid_argument);
  // Valid names still register fine after the throws.
  reg.counter("fine.name").add(1);
  EXPECT_EQ(reg.snapshot().counters.at("fine.name"), 1u);
}

TEST(MetricNameTest, SanitizerMapsDotsToUnderscores) {
  EXPECT_EQ(Exporter::sanitize_prometheus_name("rpc.get_storage_at"),
            "rpc_get_storage_at");
  EXPECT_EQ(Exporter::sanitize_prometheus_name("plain_name"), "plain_name");
}

// ---------------------------------------------------------------------------
// Exporter: snapshot ring, delta/rate math, contracts_per_s alias.

TEST(ExporterTest, RatesMatchHandComputedDeltasAcrossThreeSnapshots) {
  Registry reg;
  auto& contracts = reg.counter("sweep.contracts");
  auto& rpc = reg.counter("rpc.get_storage_at");

  std::uint64_t fake_ns = 0;
  ExporterConfig config;
  config.interval_ms = 0;  // manual ticks only
  config.clock = [&fake_ns] { return fake_ns; };
  Exporter exporter({&reg}, config);

  // t=1s: contracts=0, rpc=0. No rates yet (one snapshot).
  fake_ns = 1'000'000'000ull;
  exporter.tick();
  EXPECT_TRUE(exporter.rates().empty());

  // t=3s (dt=2s): contracts +100 -> 50/s, rpc +7 -> 3.5/s.
  contracts.add(100);
  rpc.add(7);
  fake_ns = 3'000'000'000ull;
  exporter.tick();
  auto rates = exporter.rates();
  EXPECT_DOUBLE_EQ(rates.at("sweep.contracts"), 50.0);
  EXPECT_DOUBLE_EQ(rates.at("contracts_per_s"), 50.0);  // spec'd alias
  EXPECT_DOUBLE_EQ(rates.at("rpc.get_storage_at"), 3.5);

  // t=4s (dt=1s): contracts +30 -> 30/s; rpc unchanged -> 0/s.
  contracts.add(30);
  fake_ns = 4'000'000'000ull;
  exporter.tick();
  rates = exporter.rates();
  EXPECT_DOUBLE_EQ(rates.at("sweep.contracts"), 30.0);
  EXPECT_DOUBLE_EQ(rates.at("contracts_per_s"), 30.0);
  EXPECT_DOUBLE_EQ(rates.at("rpc.get_storage_at"), 0.0);
}

TEST(ExporterTest, CounterResetYieldsPostResetSlopeNotNegativeRate) {
  Registry reg;
  auto& c = reg.counter("sweep.contracts");
  std::uint64_t fake_ns = 0;
  ExporterConfig config;
  config.interval_ms = 0;
  config.clock = [&fake_ns] { return fake_ns; };
  Exporter exporter({&reg}, config);

  c.add(1000);
  fake_ns = 1'000'000'000ull;
  exporter.tick();
  c.reset();  // serving-mode shed between sweeps
  c.add(40);
  fake_ns = 2'000'000'000ull;
  exporter.tick();
  EXPECT_DOUBLE_EQ(exporter.rates().at("sweep.contracts"), 40.0);
}

TEST(ExporterTest, RingEvictsOldestAtCapacity) {
  Registry reg;
  std::uint64_t fake_ns = 0;
  ExporterConfig config;
  config.interval_ms = 0;
  config.ring_capacity = 3;
  config.clock = [&fake_ns] { return fake_ns; };
  Exporter exporter({&reg}, config);

  for (int i = 0; i < 7; ++i) {
    fake_ns += 1'000'000'000ull;
    exporter.tick();
  }
  EXPECT_EQ(exporter.ticks(), 7u);
  const std::vector<TimedSnapshot> series = exporter.series();
  ASSERT_EQ(series.size(), 3u);
  // Oldest first, strictly increasing seq, newest survives.
  EXPECT_EQ(series[0].seq, 4u);
  EXPECT_EQ(series[1].seq, 5u);
  EXPECT_EQ(series[2].seq, 6u);
  EXPECT_EQ(series[2].mono_ns, 7'000'000'000ull);
}

TEST(ExporterTest, RingCapacityClampedToTwoSoRatesAlwaysHaveABaseline) {
  Registry reg;
  reg.counter("c").add(1);
  std::uint64_t fake_ns = 0;
  ExporterConfig config;
  config.interval_ms = 0;
  config.ring_capacity = 0;  // silly value; clamped to 2
  config.clock = [&fake_ns] { return fake_ns; };
  Exporter exporter({&reg}, config);
  for (int i = 0; i < 4; ++i) {
    fake_ns += 1'000'000'000ull;
    exporter.tick();
  }
  EXPECT_EQ(exporter.series().size(), 2u);
  EXPECT_EQ(exporter.rates().count("c"), 1u);
}

TEST(ExporterTest, MergesRegistriesCountersSumGaugesLaterWins) {
  Registry a, b;
  a.counter("shared").add(10);
  b.counter("shared").add(5);
  a.gauge("g").set(1);
  b.gauge("g").set(99);
  Exporter exporter({&a, &b}, [] {
    ExporterConfig c;
    c.interval_ms = 0;
    c.clock = [] { return std::uint64_t{1}; };
    return c;
  }());
  exporter.tick();
  const auto series = exporter.series();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].merged.counters.at("shared"), 15u);
  EXPECT_EQ(series[0].merged.gauges.at("g"), 99);
}

// ---------------------------------------------------------------------------
// Prometheus exposition round-trip: every line must parse back.

// Parses one exposition body; fails the test on any malformed line.
// Returns sample name -> value (histogram buckets keyed name{le=...}).
std::map<std::string, double> parse_prometheus(const std::string& body) {
  std::map<std::string, double> samples;
  std::set<std::string> typed;
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t eol = body.find('\n', pos);
    EXPECT_NE(eol, std::string::npos) << "body must end with a newline";
    if (eol == std::string::npos) break;
    const std::string line = body.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::size_t sp = line.find(' ', 7);
      EXPECT_NE(sp, std::string::npos) << line;
      const std::string name = line.substr(7, sp - 7);
      const std::string kind = line.substr(sp + 1);
      EXPECT_TRUE(kind == "counter" || kind == "gauge" || kind == "histogram")
          << line;
      typed.insert(name);
      continue;
    }
    EXPECT_NE(line.front(), '#') << "unexpected comment: " << line;
    // `name value` or `name{le="..."} value`.
    const std::size_t sp = line.rfind(' ');
    EXPECT_NE(sp, std::string::npos) << line;
    if (sp == std::string::npos) continue;
    std::string name = line.substr(0, sp);
    const std::string value = line.substr(sp + 1);
    std::string bare = name;
    const std::size_t brace = name.find('{');
    if (brace != std::string::npos) {
      bare = name.substr(0, brace);
      EXPECT_EQ(name.back(), '}') << line;
      EXPECT_EQ(name.compare(brace, 5, "{le=\""), 0) << line;
    }
    // Sample-name charset: sanitized, no dots.
    for (const char ch : bare) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(ch)) || ch == '_' ||
                  ch == ':')
          << "bad char in " << bare;
    }
    EXPECT_EQ(bare.rfind("proxion_", 0), 0) << bare;
    // Every sample's family must have been announced by a TYPE line.
    bool announced = false;
    for (const char* suffix : {"", "_total", "_bucket", "_sum", "_count"}) {
      std::string family = bare;
      const std::string s = suffix;
      if (!s.empty() && family.size() > s.size() &&
          family.compare(family.size() - s.size(), s.size(), s) == 0) {
        family.resize(family.size() - s.size());
      } else if (!s.empty()) {
        continue;
      }
      if (typed.count(family) != 0 || typed.count(family + "_total") != 0) {
        announced = true;
        break;
      }
    }
    EXPECT_TRUE(announced) << "sample without TYPE line: " << bare;
    char* end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    EXPECT_EQ(*end, '\0') << "unparseable value in: " << line;
    samples[name] = v;
  }
  return samples;
}

TEST(PrometheusRenderTest, RoundTripParsesEveryLine) {
  Registry reg;
  reg.counter("sweep.contracts").add(123);
  reg.counter("rpc.get_storage_at").add(7);
  reg.gauge("sweep.shards_total").set(5);
  reg.gauge("negative.gauge").set(-42);
  auto& h = reg.histogram("contract.latency_ns");
  h.record(100);
  h.record(100);
  h.record(50'000);

  std::uint64_t fake_ns = 1'000'000'000ull;
  ExporterConfig config;
  config.interval_ms = 0;
  config.clock = [&fake_ns] { return fake_ns; };
  Exporter exporter({&reg}, config);
  exporter.tick();
  fake_ns = 2'000'000'000ull;
  reg.counter("sweep.contracts").add(10);
  exporter.tick();

  const std::string body = exporter.render_prometheus();
  const auto samples = parse_prometheus(body);

  EXPECT_DOUBLE_EQ(samples.at("proxion_sweep_contracts_total"), 133.0);
  EXPECT_DOUBLE_EQ(samples.at("proxion_rpc_get_storage_at_total"), 7.0);
  EXPECT_DOUBLE_EQ(samples.at("proxion_sweep_shards_total"), 5.0);
  EXPECT_DOUBLE_EQ(samples.at("proxion_negative_gauge"), -42.0);
  // Rate gauges from the last two snapshots (dt=1s, +10 contracts).
  EXPECT_DOUBLE_EQ(samples.at("proxion_contracts_per_s"), 10.0);
  EXPECT_DOUBLE_EQ(samples.at("proxion_sweep_contracts_per_s"), 10.0);
  EXPECT_DOUBLE_EQ(samples.at("proxion_rpc_get_storage_at_per_s"), 0.0);
  // Histogram: +Inf bucket == count, sum exact, buckets cumulative.
  EXPECT_DOUBLE_EQ(samples.at("proxion_contract_latency_ns_count"), 3.0);
  EXPECT_DOUBLE_EQ(samples.at("proxion_contract_latency_ns_sum"), 50'200.0);
  EXPECT_DOUBLE_EQ(
      samples.at("proxion_contract_latency_ns_bucket{le=\"+Inf\"}"), 3.0);
  // Finite buckets, sorted by NUMERIC le (map iteration is lexicographic),
  // must be cumulative and bounded by the +Inf count.
  std::map<double, double> finite_buckets;
  const std::string bucket_prefix = "proxion_contract_latency_ns_bucket{le=\"";
  for (const auto& [name, v] : samples) {
    if (name.rfind(bucket_prefix, 0) != 0) continue;
    const std::string le =
        name.substr(bucket_prefix.size(),
                    name.size() - bucket_prefix.size() - 2);  // strip "}
    if (le == "+Inf") continue;
    finite_buckets[std::strtod(le.c_str(), nullptr)] = v;
  }
  ASSERT_GE(finite_buckets.size(), 2u);  // two occupied boundaries
  double last_cumulative = 0.0;
  for (const auto& [le, v] : finite_buckets) {
    EXPECT_GE(v, last_cumulative) << "buckets must be cumulative at le=" << le;
    EXPECT_LE(v, 3.0);
    last_cumulative = v;
  }
  EXPECT_DOUBLE_EQ(last_cumulative, 3.0);  // all 3 records in finite buckets
}

TEST(PrometheusRenderTest, SelfPrimesWhenRingIsEmpty) {
  Registry reg;
  reg.counter("c").add(9);
  ExporterConfig config;
  config.interval_ms = 0;
  config.clock = [] { return std::uint64_t{1}; };
  Exporter exporter({&reg}, config);
  const std::string body = exporter.render_prometheus();  // no tick() yet
  EXPECT_NE(body.find("proxion_c_total 9\n"), std::string::npos);
  EXPECT_EQ(exporter.ticks(), 1u);
}

// ---------------------------------------------------------------------------
// /healthz JSON schema.

// Minimal structural check: every expected key present, braces balanced,
// no raw control characters.
void expect_healthz_shape(const std::string& json) {
  for (const char* key :
       {"\"status\":", "\"phase\":", "\"sweeps\":", "\"started\":",
        "\"completed\":", "\"contracts\":", "\"total\":", "\"done\":",
        "\"shards\":", "\"committed\":", "\"quarantined\":",
        "\"journal_bytes\":", "\"degraded\":", "\"breaker\":",
        "\"snapshots\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  int depth = 0;
  for (const char ch : json) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    EXPECT_GE(depth, 0);
    EXPECT_GE(ch, 0x20) << "raw control character in healthz JSON";
  }
  EXPECT_EQ(depth, 0) << "unbalanced braces";
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(HealthzTest, ReportsStatusFieldsAndDegradedTransitions) {
  Registry reg;
  ExporterConfig config;
  config.interval_ms = 0;
  config.clock = [] { return std::uint64_t{1}; };
  Exporter exporter({&reg}, config);

  SweepStatus status;
  status.set_phase(SweepPhase::kProxy);
  status.sweeps_started.store(2);
  status.sweeps_completed.store(1);
  status.contracts_total.store(4000);
  status.contracts_done.store(1234);
  status.quarantined.store(3);
  status.shards_total.store(4);
  status.shards_committed.store(2);
  status.journal_bytes.store(65536);
  status.breaker_state.store(0);

  std::string json = exporter.render_healthz(&status);
  expect_healthz_shape(json);
  EXPECT_NE(json.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"phase\":\"proxy\""), std::string::npos);
  EXPECT_NE(json.find("\"total\":4000"), std::string::npos);
  EXPECT_NE(json.find("\"done\":1234"), std::string::npos);
  EXPECT_NE(json.find("\"committed\":2"), std::string::npos);
  EXPECT_NE(json.find("\"quarantined\":3"), std::string::npos);
  EXPECT_NE(json.find("\"journal_bytes\":65536"), std::string::npos);
  EXPECT_NE(json.find("\"breaker\":\"closed\""), std::string::npos);

  // Degraded flag flips the headline status.
  status.degraded.store(true);
  json = exporter.render_healthz(&status);
  EXPECT_NE(json.find("\"status\":\"degraded\""), std::string::npos);
  EXPECT_NE(json.find("\"degraded\":true"), std::string::npos);

  // An open breaker alone is degraded too.
  status.degraded.store(false);
  status.breaker_state.store(1);
  json = exporter.render_healthz(&status);
  EXPECT_NE(json.find("\"status\":\"degraded\""), std::string::npos);
  EXPECT_NE(json.find("\"breaker\":\"open\""), std::string::npos);
}

TEST(HealthzTest, NullStatusRendersIdleDefaults) {
  Registry reg;
  ExporterConfig config;
  config.interval_ms = 0;
  config.clock = [] { return std::uint64_t{1}; };
  Exporter exporter({&reg}, config);
  const std::string json = exporter.render_healthz(nullptr);
  expect_healthz_shape(json);
  EXPECT_NE(json.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"phase\":\"idle\""), std::string::npos);
  EXPECT_NE(json.find("\"breaker\":\"none\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Structured event log.

TEST(EventLogTest, DeterministicNdjsonWithInjectedClocks) {
  std::uint64_t mono = 0;
  EventLogConfig config;
  config.clock = [&mono] { return mono += 1000; };
  config.wall_clock = [] { return std::int64_t{1700000000000}; };
  EventLog log(config);
  log.emit(Severity::kInfo, "pipeline", "sweep started over 10 contracts");
  log.emit(Severity::kWarn, "sweep", "quarantined in fetch: disk_io",
           "0x00000000000000000000000000000000000000aa");
  const std::vector<Event> events = log.recent();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq + 1, events[1].seq);
  EXPECT_EQ(events[0].mono_ns, 1000u);
  EXPECT_EQ(events[1].mono_ns, 2000u);
  const std::string ndjson = log.ndjson();
  // One line per event; every line is an object with the schema keys.
  std::size_t lines = 0, pos = 0, eol;
  while ((eol = ndjson.find('\n', pos)) != std::string::npos) {
    const std::string line = ndjson.substr(pos, eol - pos);
    pos = eol + 1;
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    for (const char* key : {"\"severity\"", "\"mono_ns\"", "\"wall_ms\"",
                            "\"seq\"", "\"component\"", "\"message\""}) {
      EXPECT_NE(line.find(key), std::string::npos) << key << " in " << line;
    }
  }
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(ndjson.find("\"wall_ms\":1700000000000"), std::string::npos);
  EXPECT_NE(ndjson.find("0x00000000000000000000000000000000000000aa"),
            std::string::npos);
}

TEST(EventLogTest, MinSeverityIsSuppressedAndCounted) {
  EventLogConfig config;
  config.min_severity = Severity::kWarn;
  EventLog log(config);
  log.emit(Severity::kDebug, "x", "dropped");
  log.emit(Severity::kInfo, "x", "dropped too");
  log.emit(Severity::kError, "x", "kept");
  EXPECT_EQ(log.emitted(), 1u);
  EXPECT_EQ(log.suppressed(), 2u);
  ASSERT_EQ(log.recent().size(), 1u);
  EXPECT_EQ(log.recent()[0].message, "kept");
}

TEST(EventLogTest, RingOverwritesOldestAtCapacity) {
  EventLogConfig config;
  config.ring_capacity = 3;
  EventLog log(config);
  for (int i = 0; i < 8; ++i) {
    log.emit(Severity::kInfo, "x", "event " + std::to_string(i));
  }
  EXPECT_EQ(log.emitted(), 8u);
  EXPECT_EQ(log.overwritten(), 5u);
  const std::vector<Event> events = log.recent();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].message, "event 5");  // oldest retained
  EXPECT_EQ(events[2].message, "event 7");  // newest
}

TEST(EventLogTest, JsonEscapesQuotesBackslashesAndControlChars) {
  Event e;
  e.component = "x";
  e.message = "quote \" backslash \\ newline \n tab \t";
  const std::string line = EventLog::render_ndjson_line(e);
  EXPECT_NE(line.find("\\\""), std::string::npos);
  EXPECT_NE(line.find("\\\\"), std::string::npos);
  EXPECT_NE(line.find("\\n"), std::string::npos);
  EXPECT_NE(line.find("\\t"), std::string::npos);
  for (const char ch : line) EXPECT_GE(ch, 0x20);
}

// ---------------------------------------------------------------------------
// HTTP server over a real loopback socket.

// Blocking one-shot GET against 127.0.0.1:port; returns the full response
// (status line + headers + body) or "" on connect failure.
std::string http_get(std::uint16_t port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req =
      "GET " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
  std::size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(HttpServerTest, ServesRegisteredPathsOnEphemeralPort) {
  HttpServer server;
  server.handle("/metrics", [](const std::string&) {
    HttpResponse r;
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = "proxion_up 1\n";
    return r;
  });
  server.handle("/healthz", [](const std::string&) {
    HttpResponse r;
    r.content_type = "application/json";
    r.body = "{\"status\":\"ok\"}";
    return r;
  });
  ASSERT_TRUE(server.start(0));  // ephemeral
  ASSERT_NE(server.port(), 0);

  const std::string metrics = http_get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(metrics.find("Connection: close"), std::string::npos);
  EXPECT_NE(metrics.find("proxion_up 1\n"), std::string::npos);

  const std::string health = http_get(server.port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(health.find("{\"status\":\"ok\"}"), std::string::npos);

  const std::string missing = http_get(server.port(), "/nope");
  EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos);

  EXPECT_EQ(server.requests_served(), 3u);
  server.stop();
  EXPECT_FALSE(server.running());
  // Stopped server refuses connections (or resets immediately — either way,
  // no 200).
  EXPECT_EQ(http_get(server.port(), "/metrics").find("200"),
            std::string::npos);
}

TEST(HttpServerTest, QueryStringIsSplitOffAndPassedToHandler) {
  HttpServer server;
  std::string seen_query;
  server.handle("/spans", [&seen_query](const std::string& query) {
    seen_query = query;
    HttpResponse r;
    r.body = "ok";
    return r;
  });
  ASSERT_TRUE(server.start(0));
  const std::string resp = http_get(server.port(), "/spans?max=32");
  EXPECT_NE(resp.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_EQ(seen_query, "max=32");
  server.stop();
}

TEST(HttpServerTest, StartFailsOnPortAlreadyInUse) {
  HttpServer a;
  a.handle("/x", [](const std::string&) { return HttpResponse{}; });
  ASSERT_TRUE(a.start(0));
  HttpServer b;
  b.handle("/x", [](const std::string&) { return HttpResponse{}; });
  EXPECT_FALSE(b.start(a.port()));
  a.stop();
}

// ---------------------------------------------------------------------------
// Scrape-during-record concurrency (TSan target).

TEST(ExporterTest, ServedSweepExposesLayoutCounters) {
  // Satellite of the layout-inference PR: a served sweep's /metrics body
  // must carry the layout counters (global registry: per-inference bumps)
  // and the sweep.layout.* gauges (pipeline registry: last-run snapshot).
  proxion::datagen::PopulationSpec spec;
  spec.total_contracts = 150;
  proxion::datagen::Population pop =
      proxion::datagen::PopulationGenerator().generate(spec);

  proxion::core::PipelineConfig config;
  config.telemetry.enabled = true;
  proxion::core::AnalysisPipeline pipeline(*pop.chain, &pop.sources, config);
  (void)pipeline.run(pop.sweep_inputs());

  ExporterConfig econfig;
  econfig.interval_ms = 0;
  Exporter exporter({&pipeline.registry(), &Registry::global()}, econfig);
  exporter.tick();
  const std::string body = exporter.render_prometheus();
  EXPECT_NE(body.find("proxion_layout_inferred_total"), std::string::npos);
  EXPECT_NE(body.find("proxion_sweep_layout_inferred"), std::string::npos);
  EXPECT_NE(body.find("proxion_sweep_layout_reliable"), std::string::npos);
  EXPECT_NE(body.find("proxion_sweep_layout_source_free_pairs"),
            std::string::npos);

  const auto series = exporter.series();
  ASSERT_FALSE(series.empty());
  EXPECT_GT(series.back().merged.counters.at("layout.inferred"), 0u);
}

TEST(ExporterConcurrencyTest, ScrapesWhileRecordingAreRaceFree) {
  Registry reg;
  auto& c = reg.counter("sweep.contracts");
  auto& g = reg.gauge("sweep.shards_committed");
  auto& h = reg.histogram("contract.latency_ns");

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      std::uint64_t v = static_cast<std::uint64_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        c.add();
        g.set(static_cast<std::int64_t>(v & 0xff));
        h.record(v % 100'000);
        ++v;
      }
    });
  }

  ExporterConfig config;
  config.interval_ms = 0;
  config.ring_capacity = 4;
  Exporter exporter({&reg, &Registry::global()}, config);
  SweepStatus status;
  std::uint64_t last_contracts = 0;
  for (int i = 0; i < 200; ++i) {
    exporter.tick();
    const std::string metrics = exporter.render_prometheus();
    EXPECT_NE(metrics.find("proxion_sweep_contracts_total"),
              std::string::npos);
    expect_healthz_shape(exporter.render_healthz(&status));
    const auto series = exporter.series();
    ASSERT_FALSE(series.empty());
    const std::uint64_t now =
        series.back().merged.counters.at("sweep.contracts");
    EXPECT_GE(now, last_contracts) << "counter went backwards";
    last_contracts = now;
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : writers) t.join();
}

TEST(ExporterConcurrencyTest, BackgroundThreadTicksAndStopsCleanly) {
  Registry reg;
  reg.counter("c").add(1);
  ExporterConfig config;
  config.interval_ms = 1;
  Exporter exporter({&reg}, config);
  exporter.start();
  exporter.start();  // idempotent
  // Wait for at least three ticks (first is immediate).
  for (int i = 0; i < 2000 && exporter.ticks() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(exporter.ticks(), 3u);
  exporter.stop();
  exporter.stop();  // idempotent
  const std::uint64_t after = exporter.ticks();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(exporter.ticks(), after) << "thread kept ticking after stop";
}

}  // namespace
