// Conformance matrix: every factory archetype swept through the full
// detection chain with its expected verdict, standard, and collision
// profile — the ground-truth contract between datagen and core.
#include <gtest/gtest.h>

#include <functional>

#include "chain/blockchain.h"
#include "core/function_collision.h"
#include "core/proxy_detector.h"
#include "core/storage_collision.h"
#include "crypto/eth.h"
#include "datagen/contract_factory.h"

namespace {

using namespace proxion;
using chain::Blockchain;
using core::ProxyStandard;
using core::ProxyVerdict;
using datagen::BodyKind;
using datagen::ContractFactory;
using evm::Bytes;
using evm::U256;

struct ArchetypeCase {
  const char* name;
  /// Deploys the contract (and any supporting contracts); returns the
  /// address under test.
  std::function<evm::Address(Blockchain&, const evm::Address& deployer)>
      deploy;
  ProxyVerdict expected_verdict;
  ProxyStandard expected_standard;
  bool expect_function_collision = false;  // vs its own logic, if any
  bool expect_storage_collision = false;
};

evm::Address deploy_logic(Blockchain& chain, const evm::Address& deployer) {
  return chain.deploy_runtime(deployer, ContractFactory::token_contract(777));
}

const std::vector<ArchetypeCase>& cases() {
  static const std::vector<ArchetypeCase> kCases = {
      {"minimal-proxy",
       [](Blockchain& c, const evm::Address& d) {
         return c.deploy_runtime(
             d, ContractFactory::minimal_proxy(deploy_logic(c, d)));
       },
       ProxyVerdict::kProxy, ProxyStandard::kEip1167},
      {"eip1967",
       [](Blockchain& c, const evm::Address& d) {
         const auto logic = deploy_logic(c, d);
         const auto p = c.deploy_runtime(d, ContractFactory::eip1967_proxy());
         c.set_storage(p, ContractFactory::eip1967_slot(), logic.to_word());
         return p;
       },
       ProxyVerdict::kProxy, ProxyStandard::kEip1967},
      {"eip1822",
       [](Blockchain& c, const evm::Address& d) {
         const auto logic = deploy_logic(c, d);
         const auto p = c.deploy_runtime(d, ContractFactory::eip1822_proxy());
         c.set_storage(p, ContractFactory::eip1822_slot(), logic.to_word());
         return p;
       },
       ProxyVerdict::kProxy, ProxyStandard::kEip1822},
      {"custom-slot0",
       [](Blockchain& c, const evm::Address& d) {
         const auto logic = deploy_logic(c, d);
         const auto p =
             c.deploy_runtime(d, ContractFactory::slot_proxy(U256{0}));
         c.set_storage(p, U256{0}, logic.to_word());
         return p;
       },
       ProxyVerdict::kProxy, ProxyStandard::kOther},
      {"transparent",
       [](Blockchain& c, const evm::Address& d) {
         const auto logic = deploy_logic(c, d);
         const auto p =
             c.deploy_runtime(d, ContractFactory::transparent_proxy());
         c.set_storage(p, ContractFactory::eip1967_slot(), logic.to_word());
         c.set_storage(p, evm::to_u256(crypto::eip1967_admin_slot()),
                       evm::Address::from_label("adm").to_word());
         return p;
       },
       ProxyVerdict::kProxy, ProxyStandard::kEip1967},
      {"beacon",
       [](Blockchain& c, const evm::Address& d) {
         const auto logic = deploy_logic(c, d);
         const auto beacon = c.deploy_runtime(d, ContractFactory::beacon());
         c.set_storage(beacon, U256{0}, logic.to_word());
         const auto p = c.deploy_runtime(d, ContractFactory::beacon_proxy());
         c.set_storage(p, evm::to_u256(crypto::eip1967_beacon_slot()),
                       beacon.to_word());
         return p;
       },
       ProxyVerdict::kProxy, ProxyStandard::kOther},
      {"diamond",
       [](Blockchain& c, const evm::Address& d) {
         return c.deploy_runtime(d, ContractFactory::diamond_proxy());
       },
       ProxyVerdict::kNotProxy, ProxyStandard::kNotProxy},
      {"honeypot",
       [](Blockchain& c, const evm::Address& d) {
         const std::uint32_t lure =
             crypto::selector_u32("free_ether_withdrawal()");
         const auto logic =
             c.deploy_runtime(d, ContractFactory::honeypot_logic(lure));
         const auto p = c.deploy_runtime(
             d, ContractFactory::honeypot_proxy(U256{1}, lure));
         c.set_storage(p, U256{1}, logic.to_word());
         return p;
       },
       ProxyVerdict::kProxy, ProxyStandard::kOther,
       /*fn_collision=*/true},
      {"audius",
       [](Blockchain& c, const evm::Address& d) {
         const auto logic =
             c.deploy_runtime(d, ContractFactory::audius_style_logic());
         const auto p =
             c.deploy_runtime(d, ContractFactory::audius_style_proxy());
         c.set_storage(p, U256{1}, logic.to_word());
         return p;
       },
       ProxyVerdict::kProxy, ProxyStandard::kOther,
       /*fn_collision=*/false, /*storage_collision=*/true},
      {"token",
       [](Blockchain& c, const evm::Address& d) {
         return c.deploy_runtime(d, ContractFactory::token_contract(9));
       },
       ProxyVerdict::kNotProxy, ProxyStandard::kNotProxy},
      {"garbage-push4",
       [](Blockchain& c, const evm::Address& d) {
         return c.deploy_runtime(d, ContractFactory::garbage_push4_contract());
       },
       ProxyVerdict::kNotProxy, ProxyStandard::kNotProxy},
      {"library-user",
       [](Blockchain& c, const evm::Address& d) {
         const auto lib = c.deploy_runtime(d, ContractFactory::math_library());
         return c.deploy_runtime(d, ContractFactory::library_user(lib));
       },
       ProxyVerdict::kNotProxy, ProxyStandard::kNotProxy},
      {"math-library",
       [](Blockchain& c, const evm::Address& d) {
         return c.deploy_runtime(d, ContractFactory::math_library());
       },
       ProxyVerdict::kNotProxy, ProxyStandard::kNotProxy},
      {"mapping-token",
       [](Blockchain& c, const evm::Address& d) {
         return c.deploy_runtime(d,
                                 ContractFactory::mapping_token_contract(11));
       },
       ProxyVerdict::kNotProxy, ProxyStandard::kNotProxy},
      {"packed-config",
       [](Blockchain& c, const evm::Address& d) {
         return c.deploy_runtime(d, ContractFactory::packed_config_contract());
       },
       ProxyVerdict::kNotProxy, ProxyStandard::kNotProxy},
  };
  return kCases;
}

class ArchetypeMatrixTest
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ArchetypeMatrixTest, DetectionMatchesExpectation) {
  const ArchetypeCase& c = cases()[GetParam()];
  Blockchain chain;
  const evm::Address deployer = evm::Address::from_label("matrix.deployer");
  const evm::Address target = c.deploy(chain, deployer);

  core::ProxyDetector detector(chain);
  const auto report = detector.analyze(target);
  EXPECT_EQ(report.verdict, c.expected_verdict) << c.name;
  EXPECT_EQ(report.standard, c.expected_standard) << c.name;

  if (report.is_proxy() && !report.logic_address.is_zero()) {
    const Bytes proxy_code = chain.get_code(target);
    const Bytes logic_code = chain.get_code(report.logic_address);
    core::FunctionCollisionDetector fn;
    EXPECT_EQ(fn.detect(target, proxy_code, report.logic_address, logic_code)
                  .has_collision(),
              c.expect_function_collision)
        << c.name;
    core::StorageCollisionDetector st(chain);
    EXPECT_EQ(st.detect(target, proxy_code, report.logic_address, logic_code)
                  .has_collision(),
              c.expect_storage_collision)
        << c.name;
  }
}

// The layout-inference oracle must make no false claim on any archetype:
// with the tier fully on, emulation-observed accesses must never trip the
// kMismatchLayout* bits (a trip means the inferred layout rejected a slot
// the contract really touches — a soundness bug, not a finding).
TEST_P(ArchetypeMatrixTest, LayoutOracleRaisesNoMismatch) {
  const ArchetypeCase& c = cases()[GetParam()];
  Blockchain chain;
  const evm::Address deployer = evm::Address::from_label("matrix.deployer3");
  const evm::Address target = c.deploy(chain, deployer);

  core::ProxyDetectorConfig config;
  config.static_tier.enabled = true;
  config.static_tier.cross_check = true;
  config.static_tier.infer_layout = true;
  core::ProxyDetector detector(chain, config);
  const auto report = detector.analyze(target);
  EXPECT_EQ(report.static_mismatch & core::kMismatchLayoutSlot, 0u) << c.name;
  EXPECT_EQ(report.static_mismatch & core::kMismatchLayoutWidth, 0u) << c.name;
}

TEST_P(ArchetypeMatrixTest, VerdictStableAcrossRepeatedAnalysis) {
  const ArchetypeCase& c = cases()[GetParam()];
  Blockchain chain;
  const evm::Address deployer = evm::Address::from_label("matrix.deployer2");
  const evm::Address target = c.deploy(chain, deployer);
  core::ProxyDetector detector(chain);
  const auto first = detector.analyze(target);
  for (int i = 0; i < 3; ++i) {
    const auto again = detector.analyze(target);
    EXPECT_EQ(again.verdict, first.verdict) << c.name;
    EXPECT_EQ(again.logic_address, first.logic_address) << c.name;
    EXPECT_EQ(again.standard, first.standard) << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllArchetypes, ArchetypeMatrixTest,
    ::testing::Range<std::size_t>(0, cases().size()),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      std::string name = cases()[info.param].name;
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

}  // namespace
