// End-to-end tests for the durable sharded sweep: bit-identity with a
// monolithic run, kill-at-mid-sweep + resume with zero recomputation of
// committed work, torn-tail recovery, incremental re-sweep after an
// upgrade wave, and quarantine healing through the journal.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/report.h"
#include "datagen/population.h"
#include "store/durable_sweep.h"
#include "store/journal.h"
#include "store/records.h"

namespace {

using namespace proxion;

namespace fs = std::filesystem;

std::string temp_journal(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / "proxion_sweep_tests";
  fs::create_directories(dir);
  const fs::path p = dir / name;
  fs::remove(p);
  fs::remove(store::manifest_path_for(p.string()));
  return p.string();
}

datagen::Population make_population(std::uint32_t n = 900) {
  datagen::PopulationSpec spec;
  spec.total_contracts = n;
  return datagen::PopulationGenerator().generate(spec);
}

/// The deterministic analysis aggregates: everything except wall-clock and
/// cache-effectiveness accounting, which legitimately differ between a
/// monolithic and a sharded execution of the same sweep.
void expect_same_verdicts(const core::LandscapeStats& a,
                          const core::LandscapeStats& b) {
  EXPECT_EQ(a.total_contracts, b.total_contracts);
  EXPECT_EQ(a.proxies, b.proxies);
  EXPECT_EQ(a.emulation_errors, b.emulation_errors);
  EXPECT_EQ(a.hidden_proxies, b.hidden_proxies);
  EXPECT_EQ(a.unique_proxy_codehashes, b.unique_proxy_codehashes);
  EXPECT_EQ(a.function_collisions, b.function_collisions);
  EXPECT_EQ(a.storage_collisions, b.storage_collisions);
  EXPECT_EQ(a.exploitable_storage_collisions, b.exploitable_storage_collisions);
  EXPECT_EQ(a.diamonds_recovered, b.diamonds_recovered);
  EXPECT_EQ(a.by_standard, b.by_standard);
  EXPECT_EQ(a.proxies_by_year, b.proxies_by_year);
  EXPECT_EQ(a.function_collisions_by_year, b.function_collisions_by_year);
  EXPECT_EQ(a.storage_collisions_by_year, b.storage_collisions_by_year);
  EXPECT_EQ(a.pairs_by_source, b.pairs_by_source);
  EXPECT_EQ(a.upgrade_histogram, b.upgrade_histogram);
  EXPECT_EQ(a.total_upgrade_events, b.total_upgrade_events);
  EXPECT_EQ(a.quarantined, b.quarantined);
  EXPECT_EQ(a.analyzed_contracts, b.analyzed_contracts);
  EXPECT_EQ(a.errors_by_kind, b.errors_by_kind);
  // Layout-inference aggregates are per-blob/per-pair deterministic facts
  // and must survive journal round-trips and shard boundaries like the rest.
  EXPECT_EQ(a.layout_inferred, b.layout_inferred);
  EXPECT_EQ(a.layout_reliable, b.layout_reliable);
  EXPECT_EQ(a.family_collisions, b.family_collisions);
  EXPECT_EQ(a.collision_pairs_family_checked, b.collision_pairs_family_checked);
  EXPECT_EQ(a.collision_pairs_source_free, b.collision_pairs_source_free);
}

TEST(DurableSweep, MatchesMonolithicRun) {
  datagen::Population pop = make_population();
  const auto inputs = pop.sweep_inputs();

  core::PipelineConfig config;
  core::AnalysisPipeline mono(*pop.chain, &pop.sources, config);
  const auto mono_stats = mono.summarize(mono.run(inputs));

  core::AnalysisPipeline piped(*pop.chain, &pop.sources, config);
  store::DurableSweepConfig sc;
  sc.journal_path = temp_journal("match.journal");
  sc.shard_size = 200;
  store::DurableSweep sweep(piped, *pop.chain, &pop.sources, sc);
  const store::DurableSweepResult result = sweep.run(inputs);

  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.replayed, 0u);
  EXPECT_EQ(result.recomputed, inputs.size());
  EXPECT_GT(result.shards_run, 1u);
  expect_same_verdicts(result.stats, mono_stats);
  EXPECT_EQ(result.stats.sweep_shards, result.shards_run);

  const auto manifest =
      store::load_manifest(store::manifest_path_for(sc.journal_path));
  ASSERT_TRUE(manifest.has_value());
  EXPECT_TRUE(manifest->complete);
  EXPECT_EQ(manifest->contracts_committed, inputs.size());
}

TEST(DurableSweep, KillMidSweepThenResumeIsBitIdentical) {
  datagen::Population pop = make_population();
  const auto inputs = pop.sweep_inputs();

  core::PipelineConfig config;
  core::AnalysisPipeline mono(*pop.chain, &pop.sources, config);
  const auto mono_stats = mono.summarize(mono.run(inputs));

  core::AnalysisPipeline piped(*pop.chain, &pop.sources, config);
  store::DurableSweepConfig sc;
  sc.journal_path = temp_journal("kill.journal");
  sc.shard_size = 150;
  sc.max_shards = 2;  // deterministic stand-in for `kill -9` after 2 commits
  store::DurableSweep killed(piped, *pop.chain, &pop.sources, sc);
  const store::DurableSweepResult partial = killed.run(inputs);
  ASSERT_TRUE(partial.error.empty()) << partial.error;
  EXPECT_FALSE(partial.complete);
  EXPECT_EQ(partial.shards_run, 2u);
  ASSERT_GT(partial.recomputed, 0u);
  ASSERT_LT(partial.recomputed, inputs.size());

  const auto mid_manifest =
      store::load_manifest(store::manifest_path_for(sc.journal_path));
  ASSERT_TRUE(mid_manifest.has_value());
  EXPECT_FALSE(mid_manifest->complete);
  EXPECT_EQ(mid_manifest->contracts_committed, partial.recomputed);

  sc.max_shards = 0;
  store::DurableSweep resumed(piped, *pop.chain, &pop.sources, sc);
  const store::DurableSweepResult result = resumed.resume(inputs);
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_TRUE(result.complete);
  // Zero recomputation of committed work: every journaled contract replays.
  EXPECT_EQ(result.replayed, partial.recomputed);
  EXPECT_EQ(result.recomputed, inputs.size() - partial.recomputed);
  expect_same_verdicts(result.stats, mono_stats);
  EXPECT_EQ(result.stats.journal_replayed, result.replayed);
  EXPECT_EQ(result.stats.incremental_reanalyzed, 0u);

  const auto manifest =
      store::load_manifest(store::manifest_path_for(sc.journal_path));
  ASSERT_TRUE(manifest.has_value());
  EXPECT_TRUE(manifest->complete);
}

TEST(DurableSweep, ResumeSurvivesTornTail) {
  datagen::Population pop = make_population();
  const auto inputs = pop.sweep_inputs();

  core::PipelineConfig config;
  core::AnalysisPipeline mono(*pop.chain, &pop.sources, config);
  const auto mono_stats = mono.summarize(mono.run(inputs));

  core::AnalysisPipeline piped(*pop.chain, &pop.sources, config);
  store::DurableSweepConfig sc;
  sc.journal_path = temp_journal("torn.journal");
  sc.shard_size = 150;
  sc.max_shards = 3;
  store::DurableSweep killed(piped, *pop.chain, &pop.sources, sc);
  const store::DurableSweepResult partial = killed.run(inputs);
  ASSERT_TRUE(partial.error.empty()) << partial.error;
  ASSERT_FALSE(partial.complete);

  // A crash mid-append leaves a torn frame past the last commit; fake one.
  {
    std::ofstream out(sc.journal_path,
                      std::ios::binary | std::ios::app);
    const char torn[] = {0x40, 0x00, 0x00, 0x00, 0x02, 0x11, 0x22};
    out.write(torn, sizeof(torn));
  }

  sc.max_shards = 0;
  store::DurableSweep resumed(piped, *pop.chain, &pop.sources, sc);
  const store::DurableSweepResult result = resumed.resume(inputs);
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.replayed, partial.recomputed);
  expect_same_verdicts(result.stats, mono_stats);

  // The healed journal reads back clean end to end.
  const auto replay = store::read_journal(sc.journal_path);
  ASSERT_TRUE(replay.has_value());
  EXPECT_FALSE(replay->tail_dropped);
  EXPECT_EQ(replay->frames.back().type, store::RecordType::kSweepEnd);
}

TEST(DurableSweep, IncrementalWithoutChangesRecomputesNothing) {
  datagen::Population pop = make_population();
  const auto inputs = pop.sweep_inputs();

  core::PipelineConfig config;
  core::AnalysisPipeline piped(*pop.chain, &pop.sources, config);
  store::DurableSweepConfig sc;
  sc.journal_path = temp_journal("steady.journal");
  sc.shard_size = 200;
  store::DurableSweep sweep(piped, *pop.chain, &pop.sources, sc);
  const store::DurableSweepResult first = sweep.run(inputs);
  ASSERT_TRUE(first.error.empty()) << first.error;

  const store::DurableSweepResult second = sweep.incremental(inputs);
  ASSERT_TRUE(second.error.empty()) << second.error;
  EXPECT_TRUE(second.complete);
  EXPECT_EQ(second.recomputed, 0u);
  EXPECT_EQ(second.replayed, inputs.size());
  EXPECT_EQ(second.stats.incremental_reanalyzed, 0u);
  expect_same_verdicts(second.stats, first.stats);
}

TEST(DurableSweep, MappingKeyFlipBetweenLapsStaysBitIdentical) {
  // Satellite of the layout-inference PR: shed_cross_run_state drops the
  // layout memo side table (with the whole AnalysisCache entry), so a second
  // lap over a chain whose *storage* mutated between laps — here a mapping
  // element flipped under a keccak-derived slot — must be bit-identical to a
  // cold pipeline over the mutated chain. A stale cross-lap memo would show
  // up as a verdict/aggregate drift.
  datagen::Population pop = make_population();
  const auto inputs = pop.sweep_inputs();

  core::PipelineConfig config;
  core::AnalysisPipeline piped(*pop.chain, &pop.sources, config);
  store::DurableSweepConfig sc;
  sc.journal_path = temp_journal("mapflip_lap1.journal");
  sc.shard_size = 200;
  store::DurableSweep lap1(piped, *pop.chain, &pop.sources, sc);
  const store::DurableSweepResult first = lap1.run(inputs);
  ASSERT_TRUE(first.error.empty()) << first.error;
  ASSERT_TRUE(first.complete);

  // Flip a mapping element on every population contract: the balances-style
  // mapping rooted at slot 2, keyed by a fresh attacker address — slot =
  // keccak256(key ++ 2).
  const evm::U256 key = evm::Address::from_label("flip.attacker").to_word();
  evm::Bytes preimage(64, 0);
  const auto key_be = key.to_be_bytes();
  const auto base_be = evm::U256{2}.to_be_bytes();
  std::copy(key_be.begin(), key_be.end(), preimage.begin());
  std::copy(base_be.begin(), base_be.end(), preimage.begin() + 32);
  const evm::U256 flipped = evm::to_u256(crypto::keccak256(preimage));
  for (const auto& input : inputs) {
    pop.chain->set_storage(input.address, flipped, evm::U256{1});
  }

  // Lap 2 on a fresh journal reuses the SAME pipeline (shed after the final
  // lap-1 shard is what makes this legal) and must match a cold pipeline.
  sc.journal_path = temp_journal("mapflip_lap2.journal");
  store::DurableSweep lap2(piped, *pop.chain, &pop.sources, sc);
  const store::DurableSweepResult second = lap2.run(inputs);
  ASSERT_TRUE(second.error.empty()) << second.error;
  ASSERT_TRUE(second.complete);

  core::AnalysisPipeline cold(*pop.chain, &pop.sources, config);
  const auto cold_stats = cold.summarize(cold.run(inputs));
  expect_same_verdicts(second.stats, cold_stats);
}

TEST(DurableSweep, IncrementalAfterUpgradeWaveReanalyzesOnlyChanges) {
  datagen::Population pop = make_population(1'200);
  const auto inputs = pop.sweep_inputs();

  core::PipelineConfig config;
  core::AnalysisPipeline piped(*pop.chain, &pop.sources, config);
  store::DurableSweepConfig sc;
  sc.journal_path = temp_journal("wave.journal");
  sc.shard_size = 250;
  store::DurableSweep sweep(piped, *pop.chain, &pop.sources, sc);
  const store::DurableSweepResult base = sweep.run(inputs);
  ASSERT_TRUE(base.error.empty()) << base.error;

  // Upgrade wave: repoint k EIP-1967 proxies at a different logic contract.
  const evm::U256 eip1967_slot = evm::U256::from_hex(
      "360894a13ba1a3210667c828492db98dca3e2076cc3735a920a3ca505d382bbc");
  evm::Address new_logic;
  for (const auto& c : pop.contracts) {
    if (c.archetype == datagen::Archetype::kToken) {
      new_logic = c.address;  // any non-proxy contract with code will do
      break;
    }
  }
  ASSERT_FALSE(new_logic.is_zero());
  std::vector<evm::Address> upgraded;
  pop.chain->mine_block();
  for (const auto& c : pop.contracts) {
    if (upgraded.size() >= 5) break;
    if (c.archetype != datagen::Archetype::kEip1967Proxy) continue;
    if (c.logic_truth == new_logic) continue;
    pop.chain->set_storage(c.address, eip1967_slot, new_logic.to_word());
    upgraded.push_back(c.address);
  }
  ASSERT_EQ(upgraded.size(), 5u);
  pop.chain->mine_block();

  const store::DurableSweepResult inc = sweep.incremental(inputs);
  ASSERT_TRUE(inc.error.empty()) << inc.error;
  EXPECT_TRUE(inc.complete);
  // Only the upgraded proxies re-enter the pipeline; the other ~1200 replay.
  EXPECT_EQ(inc.recomputed, upgraded.size());
  EXPECT_EQ(inc.replayed, inputs.size() - upgraded.size());
  EXPECT_EQ(inc.stats.incremental_reanalyzed, upgraded.size());

  // The merged result equals a from-scratch sweep of the mutated chain.
  core::AnalysisPipeline fresh(*pop.chain, &pop.sources, config);
  const auto fresh_stats = fresh.summarize(fresh.run(inputs));
  expect_same_verdicts(inc.stats, fresh_stats);
  // The wave's upgrade events are visible in the merged histogram.
  EXPECT_EQ(inc.stats.total_upgrade_events,
            base.stats.total_upgrade_events + upgraded.size());
}

TEST(DurableSweep, ResumeRetriesQuarantinedRecords) {
  datagen::Population pop = make_population();
  const auto inputs = pop.sweep_inputs();

  core::PipelineConfig config;
  core::AnalysisPipeline piped(*pop.chain, &pop.sources, config);
  store::DurableSweepConfig sc;
  sc.journal_path = temp_journal("sick.journal");
  sc.shard_size = 200;
  store::DurableSweep sweep(piped, *pop.chain, &pop.sources, sc);
  const store::DurableSweepResult base = sweep.run(inputs);
  ASSERT_TRUE(base.error.empty()) << base.error;
  const auto clean_stats = base.stats;

  // Append a quarantined duplicate for one contract, as a crash-adjacent
  // RPC outage would have journaled. Last-wins: it supersedes the healthy
  // record already in the journal.
  const auto replay = store::read_journal(sc.journal_path);
  ASSERT_TRUE(replay.has_value());
  std::vector<store::ContractRecord> journaled;
  for (const auto& frame : replay->frames) {
    if (frame.type != store::RecordType::kContract) continue;
    auto rec = store::decode_contract_record(frame.payload);
    ASSERT_TRUE(rec.has_value());
    journaled.push_back(std::move(*rec));
  }
  auto group_size = [&](const crypto::Hash256& h) {
    std::size_t n = 0;
    for (const auto& r : journaled) n += r.code_hash == h ? 1 : 0;
    return n;
  };
  // A proxy from a small clone family, so the whole-group recompute below
  // has a known, tight size.
  std::optional<store::ContractRecord> victim;
  for (const auto& rec : journaled) {
    if (rec.analysis.proxy.verdict == core::ProxyVerdict::kProxy &&
        group_size(rec.code_hash) <= 8) {
      victim = rec;
      break;
    }
  }
  ASSERT_TRUE(victim.has_value());
  const std::size_t victim_group = group_size(victim->code_hash);
  victim->analysis.error = core::ErrorRecord{core::ErrorKind::kRpcExhausted,
                                             "pairs", "injected outage"};
  {
    auto writer = store::JournalWriter::open_append(sc.journal_path);
    ASSERT_TRUE(writer.has_value());
    ASSERT_TRUE(writer->append(store::RecordType::kContract,
                               store::encode_contract_record(*victim)));
    ASSERT_TRUE(writer->sync());
  }

  const store::DurableSweepResult healed = sweep.resume(inputs);
  ASSERT_TRUE(healed.error.empty()) << healed.error;
  EXPECT_TRUE(healed.complete);
  // The victim's whole hash group re-ran (dedup metadata must converge);
  // everything else replayed.
  EXPECT_EQ(healed.recomputed, victim_group);
  EXPECT_EQ(healed.replayed + healed.recomputed, inputs.size());
  EXPECT_EQ(healed.stats.quarantined, 0u);
  expect_same_verdicts(healed.stats, clean_stats);
}

TEST(DurableSweep, ShedBetweenShardsDoesNotChangeResults) {
  datagen::Population pop = make_population(600);
  const auto inputs = pop.sweep_inputs();
  core::PipelineConfig config;

  core::AnalysisPipeline p1(*pop.chain, &pop.sources, config);
  store::DurableSweepConfig sc;
  sc.journal_path = temp_journal("shed_on.journal");
  sc.shard_size = 100;
  const auto shed_on =
      store::DurableSweep(p1, *pop.chain, &pop.sources, sc).run(inputs);
  ASSERT_TRUE(shed_on.error.empty()) << shed_on.error;

  core::AnalysisPipeline p2(*pop.chain, &pop.sources, config);
  sc.journal_path = temp_journal("shed_off.journal");
  sc.shed_between_shards = false;
  const auto shed_off =
      store::DurableSweep(p2, *pop.chain, &pop.sources, sc).run(inputs);
  ASSERT_TRUE(shed_off.error.empty()) << shed_off.error;

  expect_same_verdicts(shed_on.stats, shed_off.stats);
}

TEST(DurableSweep, ShardSizeZeroDegeneratesToOneShard) {
  datagen::Population pop = make_population(300);
  const auto inputs = pop.sweep_inputs();
  core::PipelineConfig config;
  core::AnalysisPipeline piped(*pop.chain, &pop.sources, config);
  store::DurableSweepConfig sc;
  sc.journal_path = temp_journal("mono.journal");
  sc.shard_size = 0;
  const auto result =
      store::DurableSweep(piped, *pop.chain, &pop.sources, sc).run(inputs);
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.shards_run, 1u);
  EXPECT_EQ(result.recomputed, inputs.size());
}

}  // namespace
