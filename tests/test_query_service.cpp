// The always-on service layer: chain follower + lock-free query plane.
// Covers bit-identity of the followed snapshot against a cold batch sweep
// at the same head, fast-forward on empty blocks, quarantine healing
// through an impl-slot write, same-block deploy+upgrade, concurrent
// scrapes during snapshot swaps (the TSan leg), the /v1 JSON schemas from
// docs/QUERY_API.md, and HTTP prefix routing over a real loopback socket.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "core/report.h"
#include "datagen/contract_factory.h"
#include "datagen/population.h"
#include "obs/export.h"
#include "obs/http.h"
#include "serve/follower.h"
#include "serve/query_service.h"
#include "store/durable_sweep.h"
#include "store/journal.h"
#include "store/records.h"

namespace {

using namespace proxion;

namespace fs = std::filesystem;

std::string temp_journal(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / "proxion_serve_tests";
  fs::create_directories(dir);
  const fs::path p = dir / name;
  fs::remove(p);
  fs::remove(store::manifest_path_for(p.string()));
  return p.string();
}

datagen::Population make_population(std::uint32_t n = 500) {
  datagen::PopulationSpec spec;
  spec.total_contracts = n;
  return datagen::PopulationGenerator().generate(spec);
}

int year_of_block(std::uint64_t block) {
  const std::uint64_t year = datagen::PopulationGenerator::kFirstYear +
                             block / datagen::PopulationGenerator::kBlocksPerYear;
  return static_cast<int>(std::min<std::uint64_t>(
      year, datagen::PopulationGenerator::kLastYear));
}

serve::ChainFollowerConfig follower_config(obs::SweepStatus* status = nullptr) {
  serve::ChainFollowerConfig config;
  config.year_of_block = year_of_block;
  config.status = status;
  return config;
}

evm::Address find_archetype(const datagen::Population& pop,
                            datagen::Archetype a, std::size_t skip = 0) {
  for (const auto& c : pop.contracts) {
    if (c.archetype != a) continue;
    if (skip > 0) {
      --skip;
      continue;
    }
    return c.address;
  }
  return {};
}

std::vector<core::VerdictRow> sorted_rows(const serve::Snapshot& snap) {
  std::vector<core::VerdictRow> rows = snap.rows;
  std::sort(rows.begin(), rows.end(),
            [](const core::VerdictRow& a, const core::VerdictRow& b) {
              return a.address < b.address;
            });
  return rows;
}

/// Absorb the population generator's open-block tail: one empty block plus a
/// poll so later polls see only the blocks the test itself mines.
void settle(datagen::Population& pop, serve::ChainFollower& follower) {
  follower.poll();
  pop.chain->mine_block();
  follower.poll();
}

// Blocking one-shot GET against 127.0.0.1:port; returns the full response
// (status line + headers + body) or "" on connect failure.
std::string http_get(std::uint16_t port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req =
      "GET " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
  std::size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

// ---------------------------------------------------------------------------
// VulnClass names.

TEST(VulnClassTest, NamesRoundTrip) {
  for (std::size_t i = 0; i < serve::kVulnClassCount; ++i) {
    const auto c = static_cast<serve::VulnClass>(i);
    const auto parsed = serve::vuln_class_from_name(serve::to_string(c));
    ASSERT_TRUE(parsed.has_value()) << serve::to_string(c);
    EXPECT_EQ(*parsed, c);
  }
  EXPECT_FALSE(serve::vuln_class_from_name("bogus").has_value());
  EXPECT_FALSE(serve::vuln_class_from_name("").has_value());
}

TEST(VulnClassTest, LogicSourceNames) {
  EXPECT_EQ(core::to_string(core::LogicSource::kNone), "none");
  EXPECT_EQ(core::to_string(core::LogicSource::kHardcoded), "hardcoded");
  EXPECT_EQ(core::to_string(core::LogicSource::kStorageSlot), "storage-slot");
  EXPECT_EQ(core::to_string(core::LogicSource::kComputed), "computed");
}

// ---------------------------------------------------------------------------
// Follower vs cold batch sweep: bit identity at the same head.

TEST(ChainFollower, SnapshotMatchesColdBatchAfterFollowedMutations) {
  datagen::Population pop = make_population();
  core::PipelineConfig config;
  core::AnalysisPipeline pipeline(*pop.chain, &pop.sources, config);
  store::DurableSweepConfig sc;
  sc.journal_path = temp_journal("identity.journal");
  sc.shard_size = 200;
  serve::QueryService query;
  serve::ChainFollower follower(pipeline, *pop.chain, &pop.sources, sc, query,
                                pop.sweep_inputs(), follower_config());
  settle(pop, follower);

  // Mixed workload: a deploy, an upgrade, an empty block, and a
  // deploy+same-block-upgrade, each sealed and absorbed before the next.
  const evm::Address deployer = evm::Address::from_label("identity-deployer");
  const evm::Address proxy =
      find_archetype(pop, datagen::Archetype::kEip1967Proxy);
  const evm::Address logic = find_archetype(pop, datagen::Archetype::kToken);
  ASSERT_FALSE(proxy.is_zero());
  ASSERT_FALSE(logic.is_zero());
  const evm::U256 slot = datagen::ContractFactory::eip1967_slot();

  pop.chain->deploy_runtime(deployer,
                            datagen::ContractFactory::token_contract(77));
  pop.chain->mine_block();
  follower.poll();

  pop.chain->set_storage(proxy, slot, logic.to_word());
  pop.chain->mine_block();
  follower.poll();

  pop.chain->mine_block();  // empty
  follower.poll();

  const evm::Address late_proxy = pop.chain->deploy_runtime(
      deployer, datagen::ContractFactory::eip1967_proxy());
  pop.chain->set_storage(late_proxy, slot, logic.to_word());
  pop.chain->mine_block();
  follower.poll();

  const std::uint64_t head = pop.chain->height();
  const std::shared_ptr<const serve::Snapshot> live = query.snapshot();
  EXPECT_EQ(live->head_block, head);

  // Cold: a fresh pipeline + sweep over the follower's own input list at the
  // same head must produce bit-identical verdict rows.
  const std::vector<core::SweepInput> inputs = follower.inputs();
  core::AnalysisPipeline cold_pipe(*pop.chain, &pop.sources, config);
  serve::QueryService cold_query;
  store::DurableSweepConfig cold_sc;
  cold_sc.journal_path = temp_journal("identity_cold.journal");
  cold_sc.shard_size = 200;
  cold_sc.record_sink = [&](std::span<const store::ContractRecord> records) {
    cold_query.apply_records(records);
  };
  store::DurableSweep cold(cold_pipe, *pop.chain, &pop.sources, cold_sc);
  const store::DurableSweepResult result = cold.run(inputs);
  ASSERT_TRUE(result.error.empty()) << result.error;
  cold_query.publish(head);
  const std::shared_ptr<const serve::Snapshot> batch = cold_query.snapshot();

  ASSERT_EQ(live->rows.size(), batch->rows.size());
  EXPECT_EQ(live->proxies, batch->proxies);
  EXPECT_EQ(live->quarantined, batch->quarantined);
  const std::vector<core::VerdictRow> a = sorted_rows(*live);
  const std::vector<core::VerdictRow> b = sorted_rows(*batch);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "row " << i << " (" << a[i].address.to_hex()
                          << ") diverges from the cold batch sweep";
  }
}

TEST(ChainFollower, EmptyBlockFastForwardsWithoutResweep) {
  datagen::Population pop = make_population(300);
  core::PipelineConfig config;
  core::AnalysisPipeline pipeline(*pop.chain, &pop.sources, config);
  store::DurableSweepConfig sc;
  sc.journal_path = temp_journal("ff.journal");
  serve::QueryService query;
  serve::ChainFollower follower(pipeline, *pop.chain, &pop.sources, sc, query,
                                pop.sweep_inputs(), follower_config());
  settle(pop, follower);

  const std::uint64_t laps = follower.stats().laps.load();
  const std::uint64_t ffs = follower.stats().fast_forwards.load();
  const std::uint64_t version = query.snapshot()->version;

  pop.chain->mine_block();  // nothing deployed, nothing written
  EXPECT_EQ(follower.poll(), 1u);

  EXPECT_EQ(follower.stats().laps.load(), laps) << "empty block caused a lap";
  EXPECT_EQ(follower.stats().fast_forwards.load(), ffs + 1);
  const std::shared_ptr<const serve::Snapshot> snap = query.snapshot();
  EXPECT_EQ(snap->head_block, pop.chain->height());
  EXPECT_GT(snap->version, version);  // stamp advanced without a resweep
}

TEST(ChainFollower, ImplSlotWriteToQuarantinedContractHeals) {
  datagen::Population pop = make_population();
  core::PipelineConfig config;
  core::AnalysisPipeline pipeline(*pop.chain, &pop.sources, config);
  store::DurableSweepConfig sc;
  sc.journal_path = temp_journal("heal.journal");
  sc.shard_size = 200;
  serve::QueryService query;
  serve::ChainFollower follower(pipeline, *pop.chain, &pop.sources, sc, query,
                                pop.sweep_inputs(), follower_config());
  settle(pop, follower);

  const evm::Address victim =
      find_archetype(pop, datagen::Archetype::kEip1967Proxy);
  const evm::Address new_logic =
      find_archetype(pop, datagen::Archetype::kToken);
  ASSERT_FALSE(victim.is_zero());
  ASSERT_FALSE(new_logic.is_zero());

  // Quarantine the victim in the journal, as a crash-adjacent RPC outage
  // would have: last-wins, so it supersedes the healthy record.
  const auto replay = store::read_journal(sc.journal_path);
  ASSERT_TRUE(replay.has_value());
  std::optional<store::ContractRecord> injected;
  for (const auto& frame : replay->frames) {
    if (frame.type != store::RecordType::kContract) continue;
    auto rec = store::decode_contract_record(frame.payload);
    ASSERT_TRUE(rec.has_value());
    if (rec->analysis.address == victim) injected = std::move(*rec);
  }
  ASSERT_TRUE(injected.has_value());
  injected->analysis.error = core::ErrorRecord{core::ErrorKind::kRpcExhausted,
                                               "pairs", "injected outage"};
  {
    auto writer = store::JournalWriter::open_append(sc.journal_path);
    ASSERT_TRUE(writer.has_value());
    ASSERT_TRUE(writer->append(store::RecordType::kContract,
                               store::encode_contract_record(*injected)));
    ASSERT_TRUE(writer->sync());
  }

  // The very contract the journal now quarantines gets an impl-slot write:
  // the next lap must recompute it, not replay the poisoned record.
  pop.chain->set_storage(victim, datagen::ContractFactory::eip1967_slot(),
                         new_logic.to_word());
  pop.chain->mine_block();
  follower.poll();
  EXPECT_EQ(follower.last_error(), "");

  const std::shared_ptr<const serve::Snapshot> snap = query.snapshot();
  const auto it = snap->by_address.find(victim);
  ASSERT_NE(it, snap->by_address.end());
  const core::VerdictRow& row = snap->rows[it->second];
  EXPECT_FALSE(row.quarantined);
  EXPECT_EQ(row.verdict, core::ProxyVerdict::kProxy);
  EXPECT_EQ(row.logic_address, new_logic);
  EXPECT_EQ(row.logic_source, core::LogicSource::kStorageSlot);
}

TEST(ChainFollower, DeployAndSameBlockUpgradeServesPostUpgradeImpl) {
  datagen::Population pop = make_population(300);
  core::PipelineConfig config;
  core::AnalysisPipeline pipeline(*pop.chain, &pop.sources, config);
  store::DurableSweepConfig sc;
  sc.journal_path = temp_journal("sameblock.journal");
  serve::QueryService query;
  serve::ChainFollower follower(pipeline, *pop.chain, &pop.sources, sc, query,
                                pop.sweep_inputs(), follower_config());
  settle(pop, follower);

  const evm::Address impl = find_archetype(pop, datagen::Archetype::kToken);
  ASSERT_FALSE(impl.is_zero());
  const evm::Address deployer = evm::Address::from_label("sameblock-deployer");
  const evm::Address proxy = pop.chain->deploy_runtime(
      deployer, datagen::ContractFactory::eip1967_proxy());
  pop.chain->set_storage(proxy, datagen::ContractFactory::eip1967_slot(),
                         impl.to_word());
  pop.chain->mine_block();
  const std::uint64_t discovered_before =
      follower.stats().contracts_discovered.load();
  follower.poll();

  EXPECT_EQ(follower.stats().contracts_discovered.load(),
            discovered_before + 1);
  const std::shared_ptr<const serve::Snapshot> snap = query.snapshot();
  const auto it = snap->by_address.find(proxy);
  ASSERT_NE(it, snap->by_address.end());
  const core::VerdictRow& row = snap->rows[it->second];
  EXPECT_EQ(row.verdict, core::ProxyVerdict::kProxy);
  EXPECT_EQ(row.standard, core::ProxyStandard::kEip1967);
  EXPECT_EQ(row.logic_address, impl);
}

// The TSan leg: readers hammer the snapshot and the JSON renderers while
// the follower's background thread publishes new snapshots.
TEST(ChainFollower, ConcurrentScrapeDuringSnapshotSwap) {
  datagen::Population pop = make_population(300);
  core::PipelineConfig config;
  core::AnalysisPipeline pipeline(*pop.chain, &pop.sources, config);
  store::DurableSweepConfig sc;
  sc.journal_path = temp_journal("swap.journal");
  serve::QueryService query;
  serve::ChainFollower follower(pipeline, *pop.chain, &pop.sources, sc, query,
                                pop.sweep_inputs(), follower_config());
  settle(pop, follower);

  const evm::Address proxy =
      find_archetype(pop, datagen::Archetype::kEip1967Proxy);
  ASSERT_FALSE(proxy.is_zero());
  const std::string proxy_hex = proxy.to_hex();

  follower.start();
  // Fence the catch-up poll start() schedules before mutating the chain —
  // the single-writer contract from serve/follower.h.
  ASSERT_TRUE(follower.wait_synced(pop.chain->height()));
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const std::shared_ptr<const serve::Snapshot> snap = query.snapshot();
        ASSERT_NE(snap, nullptr);
        ASSERT_EQ(snap->rows.size(), snap->by_address.size());
        const obs::HttpResponse r = query.contract_endpoint(proxy_hex);
        ASSERT_EQ(r.status, 200);
        const obs::HttpResponse s = follower.status_endpoint();
        ASSERT_EQ(s.status, 200);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (std::size_t wave = 0; wave < 6; ++wave) {
    const evm::Address impl =
        find_archetype(pop, datagen::Archetype::kToken, wave);
    ASSERT_FALSE(impl.is_zero());
    pop.chain->set_storage(proxy, datagen::ContractFactory::eip1967_slot(),
                           impl.to_word());
    pop.chain->mine_block();
    ASSERT_TRUE(follower.wait_synced(pop.chain->height()));
  }

  stop.store(true);
  for (std::thread& t : readers) t.join();
  follower.stop();
  EXPECT_GT(reads.load(), 0u);
  EXPECT_GE(follower.stats().laps.load(), 6u);
}

// ---------------------------------------------------------------------------
// /v1 JSON schemas — the normative shapes from docs/QUERY_API.md.

class QueryApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pop_ = make_population();
    pipeline_.emplace(*pop_->chain, &pop_->sources, config_);
    sc_.journal_path = temp_journal("api.journal");
    follower_.emplace(*pipeline_, *pop_->chain, &pop_->sources, sc_, query_,
                      pop_->sweep_inputs(), follower_config());
    settle(*pop_, *follower_);
  }

  std::optional<datagen::Population> pop_;
  core::PipelineConfig config_;
  std::optional<core::AnalysisPipeline> pipeline_;
  store::DurableSweepConfig sc_;
  serve::QueryService query_;
  std::optional<serve::ChainFollower> follower_;
};

TEST_F(QueryApiTest, ContractResponseCarriesEveryDocumentedField) {
  const evm::Address proxy =
      find_archetype(*pop_, datagen::Archetype::kEip1967Proxy);
  const obs::HttpResponse r = query_.contract_endpoint(proxy.to_hex());
  ASSERT_EQ(r.status, 200);
  EXPECT_EQ(r.content_type, "application/json");
  for (const char* field :
       {"\"head_block\":", "\"snapshot_version\":", "\"address\":",
        "\"code_hash\":", "\"year\":", "\"verdict\":", "\"standard\":",
        "\"hidden\":", "\"has_source\":", "\"has_tx\":", "\"deduplicated\":",
        "\"quarantined\":", "\"error_kind\":", "\"logic\":", "\"source\":",
        "\"logic_address\":", "\"slot\":", "\"upgrade_events\":", "\"vulns\":",
        "\"function_collision\":", "\"storage_collision\":",
        "\"storage_collision_exploitable\":", "\"family_collision\":"}) {
    EXPECT_NE(r.body.find(field), std::string::npos) << field;
  }
  EXPECT_NE(r.body.find("\"verdict\":\"proxy\""), std::string::npos);
  EXPECT_NE(r.body.find("\"standard\":\"EIP-1967\""), std::string::npos);
  EXPECT_NE(r.body.find("\"source\":\"storage-slot\""), std::string::npos);
  EXPECT_NE(r.body.find("\"error_kind\":null"), std::string::npos);
}

TEST_F(QueryApiTest, CodehashResponseListsCloneFamily) {
  const evm::Address proxy =
      find_archetype(*pop_, datagen::Archetype::kMinimalProxy);
  const std::shared_ptr<const serve::Snapshot> snap = query_.snapshot();
  const auto it = snap->by_address.find(proxy);
  ASSERT_NE(it, snap->by_address.end());
  const std::string hash_hex =
      "0x" + crypto::to_hex(snap->rows[it->second].code_hash);

  const obs::HttpResponse r = query_.codehash_endpoint(hash_hex);
  ASSERT_EQ(r.status, 200);
  for (const char* field : {"\"head_block\":", "\"snapshot_version\":",
                            "\"code_hash\":", "\"count\":", "\"truncated\":",
                            "\"addresses\":"}) {
    EXPECT_NE(r.body.find(field), std::string::npos) << field;
  }
  EXPECT_NE(r.body.find(proxy.to_hex()), std::string::npos);
}

TEST_F(QueryApiTest, VulnsResponseFiltersByClass) {
  const obs::HttpResponse r = query_.vulns_endpoint("class=function_collision");
  ASSERT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("\"class\":\"function_collision\""),
            std::string::npos);
  for (const char* field :
       {"\"head_block\":", "\"count\":", "\"truncated\":", "\"addresses\":"}) {
    EXPECT_NE(r.body.find(field), std::string::npos) << field;
  }
  // Every listed address really carries the flag in the snapshot.
  const std::shared_ptr<const serve::Snapshot> snap = query_.snapshot();
  for (const std::uint32_t index :
       snap->by_vuln[static_cast<std::size_t>(
           serve::VulnClass::kFunctionCollision)]) {
    EXPECT_TRUE(snap->rows[index].function_collision);
  }
}

TEST_F(QueryApiTest, TruncationReportsFullCount) {
  const std::shared_ptr<const serve::Snapshot> snap = query_.snapshot();
  std::size_t vulnerable = 0;
  for (const core::VerdictRow& row : snap->rows) {
    vulnerable += row.function_collision ? 1 : 0;
  }
  ASSERT_GT(vulnerable, 2u) << "population lost its collision family";

  // The default cap is generous enough for the whole family...
  const obs::HttpResponse full =
      query_.vulns_endpoint("class=function_collision");
  ASSERT_EQ(full.status, 200);
  EXPECT_NE(full.body.find("\"truncated\":false"), std::string::npos);
  EXPECT_NE(full.body.find("\"count\":" + std::to_string(vulnerable)),
            std::string::npos);

  // ...a capped service (fed the same records, replayed from the journal)
  // truncates the list but still reports the full count.
  serve::QueryServiceConfig small;
  small.max_results = 2;
  serve::QueryService capped(small);
  const auto replay = store::read_journal(sc_.journal_path);
  ASSERT_TRUE(replay.has_value());
  for (const auto& frame : replay->frames) {
    if (frame.type != store::RecordType::kContract) continue;
    auto rec = store::decode_contract_record(frame.payload);
    ASSERT_TRUE(rec.has_value());
    capped.apply_records({&*rec, 1});
  }
  capped.publish(snap->head_block);
  const obs::HttpResponse r = capped.vulns_endpoint("class=function_collision");
  ASSERT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("\"truncated\":true"), std::string::npos);
  EXPECT_NE(r.body.find("\"count\":" + std::to_string(vulnerable)),
            std::string::npos);
}

TEST_F(QueryApiTest, ErrorShapesAreUniform) {
  struct Case {
    obs::HttpResponse resp;
    int status;
    const char* code;
  };
  const Case cases[] = {
      {query_.contract_endpoint("0x1234"), 400, "bad_address"},
      {query_.contract_endpoint(evm::Address{}.to_hex()), 404, "not_found"},
      {query_.codehash_endpoint("zz"), 400, "bad_hash"},
      {query_.codehash_endpoint(std::string(64, '0')), 404, "not_found"},
      {query_.vulns_endpoint(""), 400, "missing_class"},
      {query_.vulns_endpoint("class=bogus"), 400, "unknown_class"},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(c.resp.status, c.status) << c.code;
    EXPECT_NE(c.resp.body.find(std::string("\"error\":\"") + c.code + "\""),
              std::string::npos)
        << c.resp.body;
    EXPECT_NE(c.resp.body.find("\"detail\":"), std::string::npos) << c.code;
  }
}

TEST_F(QueryApiTest, StatusReportsFollowerCounters) {
  const obs::HttpResponse r = follower_->status_endpoint();
  ASSERT_EQ(r.status, 200);
  for (const char* field :
       {"\"following\":", "\"chain_head\":", "\"snapshot_head\":",
        "\"staleness_blocks\":", "\"snapshot_version\":",
        "\"snapshot_entries\":", "\"laps\":", "\"fast_forwards\":",
        "\"blocks_processed\":", "\"contracts_discovered\":",
        "\"last_lap_us\":", "\"degraded\":", "\"last_error\":"}) {
    EXPECT_NE(r.body.find(field), std::string::npos) << field;
  }
  EXPECT_NE(r.body.find("\"staleness_blocks\":0"), std::string::npos);
  EXPECT_NE(r.body.find("\"last_error\":\"\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// The /healthz phase between laps, and HTTP routing over a real socket.

TEST(ChainFollower, HealthzReportsFollowingPhaseBetweenLaps) {
  datagen::Population pop = make_population(300);
  obs::SweepStatus status;
  core::PipelineConfig config;
  config.telemetry.status = &status;
  core::AnalysisPipeline pipeline(*pop.chain, &pop.sources, config);
  store::DurableSweepConfig sc;
  sc.journal_path = temp_journal("phase.journal");
  sc.status = &status;
  serve::QueryService query;
  serve::ChainFollower follower(pipeline, *pop.chain, &pop.sources, sc, query,
                                pop.sweep_inputs(), follower_config(&status));
  follower.poll();

  // Between laps the process is live-following, not stuck in the last batch
  // phase the sweep happened to end on.
  EXPECT_EQ(status.get_phase(), obs::SweepPhase::kFollowing);
  obs::Registry reg;
  obs::ExporterConfig exp_config;
  exp_config.interval_ms = 0;
  exp_config.clock = [] { return std::uint64_t{1}; };
  obs::Exporter exporter({&reg}, exp_config);
  const std::string json = exporter.render_healthz(&status);
  EXPECT_NE(json.find("\"phase\":\"following\""), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"ok\""), std::string::npos);
}

TEST(QueryHttp, PrefixRoutingServesV1OverLoopback) {
  datagen::Population pop = make_population(300);
  core::PipelineConfig config;
  core::AnalysisPipeline pipeline(*pop.chain, &pop.sources, config);
  store::DurableSweepConfig sc;
  sc.journal_path = temp_journal("http.journal");
  serve::QueryService query;
  serve::ChainFollower follower(pipeline, *pop.chain, &pop.sources, sc, query,
                                pop.sweep_inputs(), follower_config());
  settle(pop, follower);

  obs::HttpServer server;
  query.register_endpoints(server);
  follower.register_status_endpoint(server);
  ASSERT_TRUE(server.start(0));

  const evm::Address proxy =
      find_archetype(pop, datagen::Archetype::kEip1967Proxy);
  const std::string ok =
      http_get(server.port(), "/v1/contract/" + proxy.to_hex());
  EXPECT_NE(ok.find("200"), std::string::npos);
  EXPECT_NE(ok.find("\"verdict\":\"proxy\""), std::string::npos);

  const std::string status = http_get(server.port(), "/v1/status");
  EXPECT_NE(status.find("200"), std::string::npos);
  EXPECT_NE(status.find("\"staleness_blocks\":"), std::string::npos);

  const std::string vulns =
      http_get(server.port(), "/v1/vulns?class=storage_collision");
  EXPECT_NE(vulns.find("200"), std::string::npos);
  EXPECT_NE(vulns.find("\"class\":\"storage_collision\""), std::string::npos);

  const std::string bad = http_get(server.port(), "/v1/contract/nope");
  EXPECT_NE(bad.find("400"), std::string::npos);
  EXPECT_NE(bad.find("bad_address"), std::string::npos);

  const std::string missing = http_get(server.port(), "/v1/unknown");
  EXPECT_NE(missing.find("404"), std::string::npos);

  server.stop();
}

}  // namespace
