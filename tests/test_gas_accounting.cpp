// EIP-2929 warm/cold access pricing: cold SLOADs and account touches cost a
// surcharge, repeat accesses are warm, warmth is shared across frames of
// one transaction and reset between transactions.
#include <gtest/gtest.h>

#include "datagen/assembler.h"
#include "evm/host.h"
#include "evm/interpreter.h"

namespace {

using namespace proxion::evm;
using proxion::datagen::Assembler;

class GasTest : public ::testing::Test {
 protected:
  std::uint64_t gas_used(const Bytes& code, bool eip2929 = true) {
    host_.set_code(self_, code);
    InterpreterConfig config;
    config.eip2929_access_costs = eip2929;
    Interpreter interp(host_, config);
    CallParams params;
    params.code_address = self_;
    params.storage_address = self_;
    params.caller = caller_;
    params.gas = 10'000'000;
    const ExecResult r = interp.execute(params);
    EXPECT_TRUE(r.success() || r.halt == HaltReason::kRevert);
    return r.gas_used;
  }

  MemoryHost host_;
  Address self_ = Address::from_label("gas.self");
  Address caller_ = Address::from_label("gas.caller");
};

TEST_F(GasTest, ColdSloadCostsMoreThanWarm) {
  Assembler one;
  one.push(U256{5}, 1).op(Opcode::SLOAD).op(Opcode::POP).op(Opcode::STOP);
  Assembler two;
  two.push(U256{5}, 1).op(Opcode::SLOAD).op(Opcode::POP);
  two.push(U256{5}, 1).op(Opcode::SLOAD).op(Opcode::POP);
  two.op(Opcode::STOP);

  const std::uint64_t g1 = gas_used(one.assemble());
  const std::uint64_t g2 = gas_used(two.assemble());
  // The second (warm) SLOAD costs base 100 + PUSH/POP, far below the cold
  // 2100: the delta must be small.
  EXPECT_LT(g2 - g1, 300u);
  EXPECT_GE(g1, 2100u);
}

TEST_F(GasTest, DistinctSlotsEachPayCold) {
  Assembler two_slots;
  two_slots.push(U256{5}, 1).op(Opcode::SLOAD).op(Opcode::POP);
  two_slots.push(U256{6}, 1).op(Opcode::SLOAD).op(Opcode::POP);
  two_slots.op(Opcode::STOP);
  Assembler same_slot;
  same_slot.push(U256{5}, 1).op(Opcode::SLOAD).op(Opcode::POP);
  same_slot.push(U256{5}, 1).op(Opcode::SLOAD).op(Opcode::POP);
  same_slot.op(Opcode::STOP);
  EXPECT_GT(gas_used(two_slots.assemble()),
            gas_used(same_slot.assemble()) + 1500);
}

TEST_F(GasTest, SloadThenSstoreOnlyOneColdCharge) {
  Assembler a;
  a.push(U256{5}, 1).op(Opcode::SLOAD).op(Opcode::POP);
  a.push(U256{1}, 1).push(U256{5}, 1).op(Opcode::SSTORE);
  a.op(Opcode::STOP);
  Assembler b;  // store only (one cold charge)
  b.push(U256{1}, 1).push(U256{5}, 1).op(Opcode::SSTORE);
  b.op(Opcode::STOP);
  const std::uint64_t ga = gas_used(a.assemble());
  const std::uint64_t gb = gas_used(b.assemble());
  // The SLOAD warmed the slot: ga exceeds gb by roughly the warm-load cost,
  // not by another 2000 cold surcharge.
  EXPECT_LT(ga - gb, 400u);
}

TEST_F(GasTest, ColdBalanceCheaperSecondTime) {
  const Address stranger = Address::from_label("gas.stranger");
  Assembler once;
  once.push_address(stranger).op(Opcode::BALANCE).op(Opcode::POP);
  once.op(Opcode::STOP);
  Assembler twice;
  twice.push_address(stranger).op(Opcode::BALANCE).op(Opcode::POP);
  twice.push_address(stranger).op(Opcode::BALANCE).op(Opcode::POP);
  twice.op(Opcode::STOP);
  const std::uint64_t g1 = gas_used(once.assemble());
  const std::uint64_t g2 = gas_used(twice.assemble());
  EXPECT_GE(g1, 2600u);
  EXPECT_LT(g2 - g1, 300u);  // the second touch is warm
}

TEST_F(GasTest, SelfIsPreWarmed) {
  // EXTCODESIZE(self) pays no cold surcharge: self is in the tx access list.
  Assembler a;
  a.op(Opcode::ADDRESS).op(Opcode::EXTCODESIZE).op(Opcode::POP);
  a.op(Opcode::STOP);
  EXPECT_LT(gas_used(a.assemble()), 500u);
}

TEST_F(GasTest, WarmthSharedAcrossCallFrames) {
  // self calls callee; callee SLOADs its slot 3 twice across two inner
  // calls... simpler: caller warms callee via CALL, then EXTCODESIZE on the
  // callee is warm.
  const Address callee = Address::from_label("gas.callee");
  host_.set_code(callee, Bytes{0x00});

  Assembler a;
  a.push(U256{0}, 1).push(U256{0}, 1).push(U256{0}, 1).push(U256{0}, 1)
      .push(U256{0}, 1);
  a.push_address(callee).op(Opcode::GAS).op(Opcode::CALL).op(Opcode::POP);
  a.push_address(callee).op(Opcode::EXTCODESIZE).op(Opcode::POP);
  a.op(Opcode::STOP);

  Assembler b;  // EXTCODESIZE only: pays the cold touch
  b.push_address(callee).op(Opcode::EXTCODESIZE).op(Opcode::POP);
  b.op(Opcode::STOP);

  const std::uint64_t ga = gas_used(a.assemble());
  const std::uint64_t gb = gas_used(b.assemble());
  // `a` paid cold once (at CALL); its EXTCODESIZE was warm. So the extra
  // cost of `a` over `b` is the call machinery, not another 2500.
  EXPECT_LT(ga, gb + 2500);
}

TEST_F(GasTest, AccessStateResetsBetweenTransactions) {
  Assembler a;
  a.push(U256{5}, 1).op(Opcode::SLOAD).op(Opcode::POP).op(Opcode::STOP);
  host_.set_code(self_, a.assemble());
  Interpreter interp(host_);
  CallParams params;
  params.code_address = self_;
  params.storage_address = self_;
  params.gas = 1'000'000;
  const std::uint64_t first = interp.execute(params).gas_used;
  const std::uint64_t second = interp.execute(params).gas_used;
  EXPECT_EQ(first, second);  // slot is cold again in the new transaction
  EXPECT_GE(first, 2100u);
}

TEST_F(GasTest, DisableFlagRemovesSurcharges) {
  Assembler a;
  a.push(U256{5}, 1).op(Opcode::SLOAD).op(Opcode::POP).op(Opcode::STOP);
  const std::uint64_t with = gas_used(a.assemble(), true);
  const std::uint64_t without = gas_used(a.assemble(), false);
  EXPECT_EQ(with - without, 2000u);
}

TEST_F(GasTest, PrecompilesAreAlwaysWarm) {
  Assembler a;  // two identity calls: neither pays a cold account touch
  for (int i = 0; i < 2; ++i) {
    a.push(U256{0}, 1).push(U256{0}, 1).push(U256{0}, 1).push(U256{0}, 1);
    a.push(U256{4}, 1).op(Opcode::GAS).op(Opcode::STATICCALL).op(Opcode::POP);
  }
  a.op(Opcode::STOP);
  EXPECT_LT(gas_used(a.assemble()), 1000u);
}

}  // namespace
