// The trace-observer contract that Proxion's detectors build on: event
// ordering, depths, stack snapshots, SLOAD/SSTORE attribution across
// delegatecall context switches, and halt notifications.
#include <gtest/gtest.h>

#include <vector>

#include "datagen/assembler.h"
#include "datagen/contract_factory.h"
#include "evm/host.h"
#include "evm/interpreter.h"

namespace {

using namespace proxion::evm;
using proxion::datagen::Assembler;
using proxion::datagen::ContractFactory;

struct Event {
  enum class Kind { kInstruction, kCall, kHalt, kSload, kSstore } kind;
  int depth = 0;
  std::uint8_t opcode = 0;
  Address address;
  U256 slot, value;
  CallKind call_kind = CallKind::kCall;
  std::size_t stack_depth = 0;
};

class Recorder final : public TraceObserver {
 public:
  void on_instruction(int depth, const Address& addr, std::uint32_t /*pc*/,
                      std::uint8_t opcode,
                      std::span<const U256> stack) override {
    events.push_back({Event::Kind::kInstruction, depth, opcode, addr, {}, {},
                      CallKind::kCall, stack.size()});
  }
  void on_call(CallKind kind, int depth, const Address& /*from*/,
               const Address& to, BytesView /*calldata*/) override {
    events.push_back(
        {Event::Kind::kCall, depth, 0, to, {}, {}, kind, 0});
  }
  void on_halt(int depth, HaltReason /*reason*/) override {
    events.push_back({Event::Kind::kHalt, depth, 0, {}, {}, {},
                      CallKind::kCall, 0});
  }
  void on_sload(int depth, const Address& addr, const U256& slot,
                const U256& value) override {
    events.push_back({Event::Kind::kSload, depth, 0, addr, slot, value,
                      CallKind::kCall, 0});
  }
  void on_sstore(int depth, const Address& addr, const U256& slot,
                 const U256& value) override {
    events.push_back({Event::Kind::kSstore, depth, 0, addr, slot, value,
                      CallKind::kCall, 0});
  }

  std::vector<Event> events;

  std::vector<Event> of_kind(Event::Kind kind) const {
    std::vector<Event> out;
    for (const auto& e : events) {
      if (e.kind == kind) out.push_back(e);
    }
    return out;
  }
};

class TraceTest : public ::testing::Test {
 protected:
  ExecResult run(const Address& target, Bytes calldata = {}) {
    Interpreter interp(host_);
    interp.set_observer(&recorder_);
    CallParams params;
    params.code_address = target;
    params.storage_address = target;
    params.caller = user_;
    params.origin = user_;
    params.calldata = std::move(calldata);
    return interp.execute(params);
  }

  MemoryHost host_;
  Recorder recorder_;
  Address user_ = Address::from_label("trace.user");
};

TEST_F(TraceTest, InstructionStreamMatchesProgramOrder) {
  const Address a = Address::from_label("t1");
  // PUSH1 1; PUSH1 2; ADD; STOP
  host_.set_code(a, proxion::crypto::from_hex("600160020100"));
  run(a);
  const auto ins = recorder_.of_kind(Event::Kind::kInstruction);
  ASSERT_EQ(ins.size(), 4u);
  EXPECT_EQ(ins[0].opcode, 0x60);
  EXPECT_EQ(ins[1].opcode, 0x60);
  EXPECT_EQ(ins[2].opcode, 0x01);
  EXPECT_EQ(ins[3].opcode, 0x00);
  // Stack snapshot taken BEFORE each instruction executes.
  EXPECT_EQ(ins[0].stack_depth, 0u);
  EXPECT_EQ(ins[2].stack_depth, 2u);
  EXPECT_EQ(ins[3].stack_depth, 1u);
}

TEST_F(TraceTest, TopLevelCallAndHaltReported) {
  const Address a = Address::from_label("t2");
  host_.set_code(a, proxion::crypto::from_hex("00"));
  run(a);
  const auto calls = recorder_.of_kind(Event::Kind::kCall);
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0].depth, 0);
  EXPECT_EQ(calls[0].address, a);
  const auto halts = recorder_.of_kind(Event::Kind::kHalt);
  ASSERT_EQ(halts.size(), 1u);
}

TEST_F(TraceTest, DelegatecallDepthAndStorageAttribution) {
  // proxy (slot 0) -> logic writes slot 9 with CALLER: the SSTORE event must
  // attribute the write to the PROXY's storage at depth 1.
  const Address logic = Address::from_label("t3.logic");
  host_.set_code(logic, ContractFactory::plain_contract(
                            {{.prototype = "f()",
                              .body = proxion::datagen::BodyKind::kStoreCaller,
                              .slot = U256{9}}}));
  const Address proxy = Address::from_label("t3.proxy");
  host_.set_code(proxy, ContractFactory::slot_proxy(U256{0}));
  host_.set_storage(proxy, U256{0}, logic.to_word());

  Bytes calldata(4, 0);
  const auto sel = proxion::crypto::selector_of("f()");
  std::copy(sel.begin(), sel.end(), calldata.begin());
  run(proxy, calldata);

  const auto calls = recorder_.of_kind(Event::Kind::kCall);
  ASSERT_EQ(calls.size(), 2u);  // top-level + the delegatecall
  EXPECT_EQ(calls[1].call_kind, CallKind::kDelegateCall);
  EXPECT_EQ(calls[1].depth, 1);
  EXPECT_EQ(calls[1].address, logic);

  const auto sloads = recorder_.of_kind(Event::Kind::kSload);
  ASSERT_GE(sloads.size(), 1u);
  EXPECT_EQ(sloads[0].address, proxy);  // impl slot read in proxy context
  EXPECT_EQ(sloads[0].slot, U256{0});

  const auto sstores = recorder_.of_kind(Event::Kind::kSstore);
  ASSERT_EQ(sstores.size(), 1u);
  EXPECT_EQ(sstores[0].depth, 1);
  EXPECT_EQ(sstores[0].address, proxy);  // delegate context == proxy storage
  EXPECT_EQ(sstores[0].slot, U256{9});
  EXPECT_EQ(sstores[0].value, user_.to_word());
}

TEST_F(TraceTest, SloadReportsValueReturnedToGuest) {
  const Address a = Address::from_label("t4");
  Assembler asm_;
  asm_.push(U256{7}, 1).op(Opcode::SLOAD).op(Opcode::POP).op(Opcode::STOP);
  host_.set_code(a, asm_.assemble());
  host_.set_storage(a, U256{7}, U256{0xfeed});
  run(a);
  const auto sloads = recorder_.of_kind(Event::Kind::kSload);
  ASSERT_EQ(sloads.size(), 1u);
  EXPECT_EQ(sloads[0].value, U256{0xfeed});
}

TEST_F(TraceTest, NestedCallsReportIncreasingDepths) {
  // a -> CALL b -> CALL c; depths 1 and 2.
  const Address c = Address::from_label("t5.c");
  host_.set_code(c, proxion::crypto::from_hex("00"));
  const Address b = Address::from_label("t5.b");
  Assembler basm;
  basm.push(U256{0}, 1).push(U256{0}, 1).push(U256{0}, 1).push(U256{0}, 1)
      .push(U256{0}, 1);
  basm.push_address(c);
  basm.op(Opcode::GAS).op(Opcode::CALL).op(Opcode::POP).op(Opcode::STOP);
  host_.set_code(b, basm.assemble());
  const Address a = Address::from_label("t5.a");
  Assembler aasm;
  aasm.push(U256{0}, 1).push(U256{0}, 1).push(U256{0}, 1).push(U256{0}, 1)
      .push(U256{0}, 1);
  aasm.push_address(b);
  aasm.op(Opcode::GAS).op(Opcode::CALL).op(Opcode::POP).op(Opcode::STOP);
  host_.set_code(a, aasm.assemble());

  run(a);
  const auto calls = recorder_.of_kind(Event::Kind::kCall);
  ASSERT_EQ(calls.size(), 3u);
  EXPECT_EQ(calls[0].depth, 0);
  EXPECT_EQ(calls[1].depth, 1);
  EXPECT_EQ(calls[1].address, b);
  EXPECT_EQ(calls[2].depth, 2);
  EXPECT_EQ(calls[2].address, c);
}

TEST_F(TraceTest, NoObserverNoCrash) {
  const Address a = Address::from_label("t6");
  host_.set_code(a, proxion::crypto::from_hex("600160020100"));
  Interpreter interp(host_);  // no observer installed
  CallParams params;
  params.code_address = a;
  params.storage_address = a;
  EXPECT_EQ(interp.execute(params).halt, HaltReason::kStop);
}

}  // namespace
