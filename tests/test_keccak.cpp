// Keccak-256 known-answer tests plus the Ethereum-specific helpers built on
// it (selectors, proxy storage slot constants, CREATE/CREATE2 addresses).
#include <gtest/gtest.h>

#include "crypto/eth.h"
#include "crypto/keccak.h"

namespace {

using namespace proxion::crypto;

std::string hex_of(const Hash256& h) {
  return to_hex(std::span<const std::uint8_t>(h));
}

TEST(Keccak, EmptyString) {
  // The famous Keccak-256("") digest, e.g. the default account code hash.
  EXPECT_EQ(hex_of(keccak256("")),
            "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470");
}

TEST(Keccak, Abc) {
  EXPECT_EQ(hex_of(keccak256("abc")),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45");
}

TEST(Keccak, HelloWorld) {
  EXPECT_EQ(hex_of(keccak256("hello world")),
            "47173285a8d7341e5e972fc677286384f802f8ef42a5ec5f03bbfa254cb01fad");
}

TEST(Keccak, LongInputCrossingBlockBoundary) {
  // 200 bytes > rate (136): exercises multi-block absorption.
  std::string input(200, 'a');
  const Hash256 once = keccak256(input);
  Keccak256 streaming;
  streaming.update(std::string_view(input).substr(0, 77));
  streaming.update(std::string_view(input).substr(77));
  EXPECT_EQ(once, streaming.finalize());
}

TEST(Keccak, ExactlyOneRateBlock) {
  std::string input(136, 'x');
  Keccak256 h;
  h.update(input);
  EXPECT_EQ(h.finalize(), keccak256(input));
}

TEST(Keccak, IncrementalByteAtATime) {
  const std::string input = "the quick brown fox jumps over the lazy dog";
  Keccak256 h;
  for (const char c : input) h.update(std::string_view(&c, 1));
  EXPECT_EQ(h.finalize(), keccak256(input));
}

TEST(Selector, TransferSelector) {
  // transfer(address,uint256) -> 0xa9059cbb, the best-known selector.
  EXPECT_EQ(selector_u32("transfer(address,uint256)"), 0xa9059cbbu);
}

TEST(Selector, PaperExampleFreeEtherWithdrawal) {
  // §2.1 states free_ether_withdrawal() hashes to 0xdf4a3106.
  EXPECT_EQ(selector_u32("free_ether_withdrawal()"), 0xdf4a3106u);
}

TEST(Selector, BalanceOf) {
  EXPECT_EQ(selector_u32("balanceOf(address)"), 0x70a08231u);
}

TEST(Slots, Eip1967ImplementationSlot) {
  // The well-known constant from EIP-1967.
  EXPECT_EQ(
      hex_of(eip1967_implementation_slot()),
      "360894a13ba1a3210667c828492db98dca3e2076cc3735a920a3ca505d382bbc");
}

TEST(Slots, Eip1967AdminSlot) {
  EXPECT_EQ(
      hex_of(eip1967_admin_slot()),
      "b53127684a568b3173ae13b9f8a6016e243e63b6e8ee1178d6a717850b5d6103");
}

TEST(Slots, Eip1822ProxiableSlot) {
  EXPECT_EQ(
      hex_of(eip1822_proxiable_slot()),
      "c5f16f0fcc639fa48a6947836d9850f504798523bf8c9a3a87d5876cf622bcf7");
}

TEST(Slots, DistinctFromEachOther) {
  EXPECT_NE(eip1967_implementation_slot(), eip1967_admin_slot());
  EXPECT_NE(eip1967_implementation_slot(), eip1967_beacon_slot());
  EXPECT_NE(eip1822_proxiable_slot(), eip2535_diamond_storage_slot());
}

TEST(Rlp, SingleSmallByte) {
  const std::vector<std::uint8_t> data = {0x42};
  EXPECT_EQ(rlp::encode_bytes(data), (std::vector<std::uint8_t>{0x42}));
}

TEST(Rlp, ShortString) {
  const std::vector<std::uint8_t> data = {0xde, 0xad};
  EXPECT_EQ(rlp::encode_bytes(data),
            (std::vector<std::uint8_t>{0x82, 0xde, 0xad}));
}

TEST(Rlp, ZeroEncodesAsEmptyString) {
  EXPECT_EQ(rlp::encode_uint(0), (std::vector<std::uint8_t>{0x80}));
}

TEST(Rlp, SmallIntEncodesAsItself) {
  EXPECT_EQ(rlp::encode_uint(5), (std::vector<std::uint8_t>{0x05}));
}

TEST(Rlp, LongStringUsesLengthOfLength) {
  std::vector<std::uint8_t> data(60, 0xaa);
  const auto encoded = rlp::encode_bytes(data);
  EXPECT_EQ(encoded[0], 0xb8);  // 0xb7 + 1 length byte
  EXPECT_EQ(encoded[1], 60);
  EXPECT_EQ(encoded.size(), 62u);
}

TEST(CreateAddress, KnownVector) {
  // The canonical test vector: sender 0x6ac7ea33f8831ea9dcc53393aaa88b25a785dbf0
  // with nonce 0 creates 0xcd234a471b72ba2f1ccf0a70fcaba648a5eecd8d.
  AddressBytes sender{};
  const auto raw = from_hex("6ac7ea33f8831ea9dcc53393aaa88b25a785dbf0");
  std::copy(raw.begin(), raw.end(), sender.begin());
  EXPECT_EQ(to_hex(create_address(sender, 0)),
            "cd234a471b72ba2f1ccf0a70fcaba648a5eecd8d");
  EXPECT_EQ(to_hex(create_address(sender, 1)),
            "343c43a37d37dff08ae8c4a11544c718abb4fcf8");
}

TEST(Create2Address, Eip1014Vector) {
  // EIP-1014 example 1: address 0x0000...00, salt 0, init code 0x00.
  AddressBytes sender{};
  Hash256 salt{};
  const std::vector<std::uint8_t> init_code = {0x00};
  EXPECT_EQ(to_hex(create2_address(sender, salt, init_code)),
            "4d1a2e2bb4f88f0250f26ffff098b0b30b26bf38");
}

TEST(Create2Address, DependsOnEveryInput) {
  AddressBytes sender{};
  Hash256 salt{};
  const std::vector<std::uint8_t> code1 = {0x00};
  const std::vector<std::uint8_t> code2 = {0x01};
  const auto a = create2_address(sender, salt, code1);
  const auto b = create2_address(sender, salt, code2);
  EXPECT_NE(a, b);
  salt[31] = 1;
  const auto c = create2_address(sender, salt, code1);
  EXPECT_NE(a, c);
}

TEST(Hex, RoundTrip) {
  const std::vector<std::uint8_t> data = {0x00, 0xff, 0x12, 0xab};
  EXPECT_EQ(from_hex(to_hex(data)), data);
  EXPECT_EQ(from_hex("0x00ff12ab"), data);
}

TEST(Hex, RejectsBadInput) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);   // odd length
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);    // non-hex
}

}  // namespace
