// Keccak-256 known-answer tests plus the Ethereum-specific helpers built on
// it (selectors, proxy storage slot constants, CREATE/CREATE2 addresses).
#include <gtest/gtest.h>

#include <cstdio>
#include <span>
#include <vector>

#include "crypto/eth.h"
#include "crypto/keccak.h"
#include "obs/metrics.h"

namespace {

using namespace proxion::crypto;

std::string hex_of(const Hash256& h) {
  return to_hex(std::span<const std::uint8_t>(h));
}

TEST(Keccak, EmptyString) {
  // The famous Keccak-256("") digest, e.g. the default account code hash.
  EXPECT_EQ(hex_of(keccak256("")),
            "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470");
}

TEST(Keccak, Abc) {
  EXPECT_EQ(hex_of(keccak256("abc")),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45");
}

TEST(Keccak, HelloWorld) {
  EXPECT_EQ(hex_of(keccak256("hello world")),
            "47173285a8d7341e5e972fc677286384f802f8ef42a5ec5f03bbfa254cb01fad");
}

TEST(Keccak, LongInputCrossingBlockBoundary) {
  // 200 bytes > rate (136): exercises multi-block absorption.
  std::string input(200, 'a');
  const Hash256 once = keccak256(input);
  Keccak256 streaming;
  streaming.update(std::string_view(input).substr(0, 77));
  streaming.update(std::string_view(input).substr(77));
  EXPECT_EQ(once, streaming.finalize());
}

TEST(Keccak, ExactlyOneRateBlock) {
  std::string input(136, 'x');
  Keccak256 h;
  h.update(input);
  EXPECT_EQ(h.finalize(), keccak256(input));
}

TEST(Keccak, IncrementalByteAtATime) {
  const std::string input = "the quick brown fox jumps over the lazy dog";
  Keccak256 h;
  for (const char c : input) h.update(std::string_view(&c, 1));
  EXPECT_EQ(h.finalize(), keccak256(input));
}

// ---- batched hashing ------------------------------------------------------

std::vector<std::uint8_t> patterned_message(std::size_t len,
                                            std::uint8_t seed) {
  std::vector<std::uint8_t> m(len);
  for (std::size_t i = 0; i < len; ++i) {
    m[i] = static_cast<std::uint8_t>(seed + i * 7 + (i >> 3));
  }
  return m;
}

TEST(KeccakBatch, MatchesScalarForEveryBatchSize) {
  // 0..9 messages per batch covers: empty batch, lone message (scalar
  // fallback), partial lanes (2, 3), one full 4-lane group, full group plus
  // remainder, and two full groups plus remainder.
  for (std::size_t n = 0; n <= 9; ++n) {
    std::vector<std::vector<std::uint8_t>> msgs;
    for (std::size_t i = 0; i < n; ++i) {
      msgs.push_back(patterned_message(32 + i * 17, static_cast<std::uint8_t>(i)));
    }
    const auto batched =
        keccak256_many(std::span<const std::vector<std::uint8_t>>(msgs));
    ASSERT_EQ(batched.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(batched[i], keccak256(msgs[i]))
          << "batch size " << n << ", message " << i << ", backend "
          << keccak_batch_backend();
    }
  }
}

TEST(KeccakBatch, RaggedLengthsAcrossRateBoundaries) {
  // Lengths straddling the 136-byte rate: 135 needs the 0x81 combined pad
  // byte, 136 gains an all-padding block, 271/272 repeat that at two blocks,
  // and 0 is the empty message.
  const std::size_t lengths[] = {0, 1, 31, 32, 135, 136, 137, 200, 271, 272, 500};
  std::vector<std::vector<std::uint8_t>> msgs;
  for (std::size_t i = 0; i < std::size(lengths); ++i) {
    msgs.push_back(patterned_message(lengths[i], static_cast<std::uint8_t>(i)));
  }
  const auto batched =
      keccak256_many(std::span<const std::vector<std::uint8_t>>(msgs));
  ASSERT_EQ(batched.size(), msgs.size());
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    EXPECT_EQ(batched[i], keccak256(msgs[i]))
        << "length " << lengths[i] << ", backend " << keccak_batch_backend();
  }
}

TEST(KeccakBatch, IdenticalMessagesShareALaneGroup) {
  // Four equal-length messages pack into one 4-wide permutation; equal
  // inputs must produce equal digests and match scalar.
  std::vector<std::vector<std::uint8_t>> msgs(4, patterned_message(64, 9));
  const auto batched =
      keccak256_many(std::span<const std::vector<std::uint8_t>>(msgs));
  const Hash256 expected = keccak256(msgs[0]);
  for (const auto& d : batched) EXPECT_EQ(d, expected);
}

TEST(KeccakBatch, SpanOverloadMatchesVectorOverload) {
  std::vector<std::vector<std::uint8_t>> msgs;
  for (std::size_t i = 0; i < 6; ++i) {
    msgs.push_back(patterned_message(40 + i * 50, static_cast<std::uint8_t>(i)));
  }
  std::vector<std::span<const std::uint8_t>> views(msgs.begin(), msgs.end());
  const auto by_vec =
      keccak256_many(std::span<const std::vector<std::uint8_t>>(msgs));
  const auto by_span =
      keccak256_many(std::span<const std::span<const std::uint8_t>>(views));
  EXPECT_EQ(by_vec, by_span);
}

TEST(KeccakBatch, BackendNameIsNonEmpty) {
  const char* backend = keccak_batch_backend();
  ASSERT_NE(backend, nullptr);
  EXPECT_STRNE(backend, "");
  // Visible in --gtest_output so CI logs show which kernel actually ran.
  std::printf("keccak batch backend: %s\n", backend);
}

// ---- selector memo --------------------------------------------------------

TEST(SelectorMemo, MemoizedMatchesDirectHash) {
  set_selector_memo_enabled(true);
  clear_selector_memo();
  const Selector first = selector_of("transfer(address,uint256)");
  const Selector again = selector_of("transfer(address,uint256)");
  EXPECT_EQ(first, again);
  EXPECT_EQ(selector_u32("transfer(address,uint256)"), 0xa9059cbbu);
}

TEST(SelectorMemo, DisableBypassesAndClears) {
  set_selector_memo_enabled(true);
  clear_selector_memo();
  const Selector memoized = selector_of("balanceOf(address)");
  set_selector_memo_enabled(false);
  EXPECT_FALSE(selector_memo_enabled());
  const Selector direct = selector_of("balanceOf(address)");
  EXPECT_EQ(memoized, direct);
  set_selector_memo_enabled(true);
  EXPECT_TRUE(selector_memo_enabled());
}

TEST(SelectorMemo, CountsHitsAndMisses) {
  using proxion::obs::Registry;
  set_selector_memo_enabled(true);
  clear_selector_memo();
  const auto counter = [](const char* name) {
    const auto snap = Registry::global().snapshot();
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? std::uint64_t{0} : it->second;
  };
  const std::uint64_t hits0 = counter("crypto.selector_memo.hits");
  const std::uint64_t misses0 = counter("crypto.selector_memo.misses");
  (void)selector_of("proxionMemoProbe(uint256)");  // cold: miss
  (void)selector_of("proxionMemoProbe(uint256)");  // warm: hit
  (void)selector_of("proxionMemoProbe(uint256)");  // warm: hit
  EXPECT_EQ(counter("crypto.selector_memo.misses") - misses0, 1u);
  EXPECT_EQ(counter("crypto.selector_memo.hits") - hits0, 2u);
}

TEST(Selector, TransferSelector) {
  // transfer(address,uint256) -> 0xa9059cbb, the best-known selector.
  EXPECT_EQ(selector_u32("transfer(address,uint256)"), 0xa9059cbbu);
}

TEST(Selector, PaperExampleFreeEtherWithdrawal) {
  // §2.1 states free_ether_withdrawal() hashes to 0xdf4a3106.
  EXPECT_EQ(selector_u32("free_ether_withdrawal()"), 0xdf4a3106u);
}

TEST(Selector, BalanceOf) {
  EXPECT_EQ(selector_u32("balanceOf(address)"), 0x70a08231u);
}

TEST(Slots, Eip1967ImplementationSlot) {
  // The well-known constant from EIP-1967.
  EXPECT_EQ(
      hex_of(eip1967_implementation_slot()),
      "360894a13ba1a3210667c828492db98dca3e2076cc3735a920a3ca505d382bbc");
}

TEST(Slots, Eip1967AdminSlot) {
  EXPECT_EQ(
      hex_of(eip1967_admin_slot()),
      "b53127684a568b3173ae13b9f8a6016e243e63b6e8ee1178d6a717850b5d6103");
}

TEST(Slots, Eip1822ProxiableSlot) {
  EXPECT_EQ(
      hex_of(eip1822_proxiable_slot()),
      "c5f16f0fcc639fa48a6947836d9850f504798523bf8c9a3a87d5876cf622bcf7");
}

TEST(Slots, DistinctFromEachOther) {
  EXPECT_NE(eip1967_implementation_slot(), eip1967_admin_slot());
  EXPECT_NE(eip1967_implementation_slot(), eip1967_beacon_slot());
  EXPECT_NE(eip1822_proxiable_slot(), eip2535_diamond_storage_slot());
}

TEST(Rlp, SingleSmallByte) {
  const std::vector<std::uint8_t> data = {0x42};
  EXPECT_EQ(rlp::encode_bytes(data), (std::vector<std::uint8_t>{0x42}));
}

TEST(Rlp, ShortString) {
  const std::vector<std::uint8_t> data = {0xde, 0xad};
  EXPECT_EQ(rlp::encode_bytes(data),
            (std::vector<std::uint8_t>{0x82, 0xde, 0xad}));
}

TEST(Rlp, ZeroEncodesAsEmptyString) {
  EXPECT_EQ(rlp::encode_uint(0), (std::vector<std::uint8_t>{0x80}));
}

TEST(Rlp, SmallIntEncodesAsItself) {
  EXPECT_EQ(rlp::encode_uint(5), (std::vector<std::uint8_t>{0x05}));
}

TEST(Rlp, LongStringUsesLengthOfLength) {
  std::vector<std::uint8_t> data(60, 0xaa);
  const auto encoded = rlp::encode_bytes(data);
  EXPECT_EQ(encoded[0], 0xb8);  // 0xb7 + 1 length byte
  EXPECT_EQ(encoded[1], 60);
  EXPECT_EQ(encoded.size(), 62u);
}

TEST(CreateAddress, KnownVector) {
  // The canonical test vector: sender 0x6ac7ea33f8831ea9dcc53393aaa88b25a785dbf0
  // with nonce 0 creates 0xcd234a471b72ba2f1ccf0a70fcaba648a5eecd8d.
  AddressBytes sender{};
  const auto raw = from_hex("6ac7ea33f8831ea9dcc53393aaa88b25a785dbf0");
  std::copy(raw.begin(), raw.end(), sender.begin());
  EXPECT_EQ(to_hex(create_address(sender, 0)),
            "cd234a471b72ba2f1ccf0a70fcaba648a5eecd8d");
  EXPECT_EQ(to_hex(create_address(sender, 1)),
            "343c43a37d37dff08ae8c4a11544c718abb4fcf8");
}

TEST(Create2Address, Eip1014Vector) {
  // EIP-1014 example 1: address 0x0000...00, salt 0, init code 0x00.
  AddressBytes sender{};
  Hash256 salt{};
  const std::vector<std::uint8_t> init_code = {0x00};
  EXPECT_EQ(to_hex(create2_address(sender, salt, init_code)),
            "4d1a2e2bb4f88f0250f26ffff098b0b30b26bf38");
}

TEST(Create2Address, DependsOnEveryInput) {
  AddressBytes sender{};
  Hash256 salt{};
  const std::vector<std::uint8_t> code1 = {0x00};
  const std::vector<std::uint8_t> code2 = {0x01};
  const auto a = create2_address(sender, salt, code1);
  const auto b = create2_address(sender, salt, code2);
  EXPECT_NE(a, b);
  salt[31] = 1;
  const auto c = create2_address(sender, salt, code1);
  EXPECT_NE(a, c);
}

TEST(Hex, RoundTrip) {
  const std::vector<std::uint8_t> data = {0x00, 0xff, 0x12, 0xab};
  EXPECT_EQ(from_hex(to_hex(data)), data);
  EXPECT_EQ(from_hex("0x00ff12ab"), data);
}

TEST(Hex, RejectsBadInput) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);   // odd length
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);    // non-hex
}

}  // namespace
