// The §8.2 future-work extension: diamond (EIP-2535) detection via
// transaction-harvested selector hints.
#include <gtest/gtest.h>

#include "chain/blockchain.h"
#include "core/diamond_probe.h"
#include "core/proxy_detector.h"
#include "crypto/eth.h"
#include "datagen/contract_factory.h"

namespace {

using namespace proxion;
using namespace proxion::core;
using chain::Blockchain;
using datagen::BodyKind;
using datagen::ContractFactory;
using evm::Bytes;
using evm::U256;

class DiamondProbeTest : public ::testing::Test {
 protected:
  Address deploy_diamond_with_facet(std::string_view prototype,
                                    const Address& facet) {
    const Address diamond =
        chain_.deploy_runtime(user_, ContractFactory::diamond_proxy());
    register_facet(diamond, crypto::selector_u32(prototype), facet);
    return diamond;
  }

  void register_facet(const Address& diamond, std::uint32_t selector,
                      const Address& facet) {
    std::array<std::uint8_t, 64> preimage{};
    const auto sel_word = U256{selector}.to_be_bytes();
    std::copy(sel_word.begin(), sel_word.end(), preimage.begin());
    const auto base = ContractFactory::diamond_base_slot().to_be_bytes();
    std::copy(base.begin(), base.end(), preimage.begin() + 32);
    chain_.set_storage(diamond, evm::to_u256(crypto::keccak256(preimage)),
                       facet.to_word());
  }

  Bytes calldata_for(std::string_view prototype) {
    const auto sel = crypto::selector_of(prototype);
    Bytes out(36, 0);
    std::copy(sel.begin(), sel.end(), out.begin());
    return out;
  }

  ProxyReport base_report(const Address& a) {
    ProxyDetector detector(chain_);
    return detector.analyze(a);
  }

  Blockchain chain_;
  Address user_ = Address::from_label("diamond.user");
};

TEST_F(DiamondProbeTest, DetectsDiamondAfterTransactionHint) {
  const Address facet = chain_.deploy_runtime(
      user_, ContractFactory::plain_contract(
                 {{.prototype = "facetFn()",
                   .body = BodyKind::kReturnConstant, .aux = U256{7}}}));
  const Address diamond = deploy_diamond_with_facet("facetFn()", facet);

  // A user once called the registered selector: that tx is the hint.
  chain_.call(user_, diamond, calldata_for("facetFn()"));

  const ProxyReport base = base_report(diamond);
  EXPECT_FALSE(base.is_proxy());  // the plain detector misses it (§8.1)

  DiamondProber prober(chain_);
  const DiamondReport report = prober.probe(diamond, base);
  EXPECT_TRUE(report.is_diamond);
  ASSERT_EQ(report.routed_selectors.size(), 1u);
  EXPECT_EQ(report.routed_selectors[0], crypto::selector_u32("facetFn()"));
  ASSERT_EQ(report.facets.size(), 1u);
  EXPECT_EQ(report.facets[0], facet);
}

TEST_F(DiamondProbeTest, NoTransactionsNoDetection) {
  // Without any past tx (and no PUSH4 hints in the runtime), the diamond
  // stays hidden — the residual limitation the paper accepts.
  const Address facet = chain_.deploy_runtime(
      user_, ContractFactory::plain_contract(
                 {{.prototype = "facetFn()", .body = BodyKind::kStop}}));
  const Address diamond = deploy_diamond_with_facet("facetFn()", facet);

  DiamondProber prober(chain_);
  const DiamondReport report = prober.probe(diamond, base_report(diamond));
  EXPECT_FALSE(report.is_diamond);
}

TEST_F(DiamondProbeTest, MultipleFacetsRecovered) {
  const Address facet_a = chain_.deploy_runtime(
      user_, ContractFactory::plain_contract(
                 {{.prototype = "alpha()", .body = BodyKind::kStop}}));
  const Address facet_b = chain_.deploy_runtime(
      user_, ContractFactory::plain_contract(
                 {{.prototype = "beta()", .body = BodyKind::kStop}}));
  const Address diamond = deploy_diamond_with_facet("alpha()", facet_a);
  register_facet(diamond, crypto::selector_u32("beta()"), facet_b);

  chain_.call(user_, diamond, calldata_for("alpha()"));
  chain_.call(user_, diamond, calldata_for("beta()"));

  DiamondProber prober(chain_);
  const DiamondReport report = prober.probe(diamond, base_report(diamond));
  EXPECT_TRUE(report.is_diamond);
  EXPECT_EQ(report.routed_selectors.size(), 2u);
  EXPECT_EQ(report.facets.size(), 2u);
}

TEST_F(DiamondProbeTest, UnregisteredSelectorHintsDoNotTrigger) {
  const Address facet = chain_.deploy_runtime(
      user_, ContractFactory::plain_contract(
                 {{.prototype = "facetFn()", .body = BodyKind::kStop}}));
  const Address diamond = deploy_diamond_with_facet("facetFn()", facet);
  // Users called the wrong selector (reverted) — still a hint, still no
  // forwarding for it.
  chain_.call(user_, diamond, calldata_for("bogus()"));

  DiamondProber prober(chain_);
  const DiamondReport report = prober.probe(diamond, base_report(diamond));
  EXPECT_FALSE(report.is_diamond);
}

TEST_F(DiamondProbeTest, DoesNotReexaminePlainProxiesOrNonProxies) {
  const Address logic =
      chain_.deploy_runtime(user_, ContractFactory::token_contract(1));
  const Address proxy =
      chain_.deploy_runtime(user_, ContractFactory::minimal_proxy(logic));
  const Address token =
      chain_.deploy_runtime(user_, ContractFactory::token_contract(2));

  DiamondProber prober(chain_);
  EXPECT_FALSE(prober.probe(proxy, base_report(proxy)).is_diamond);
  EXPECT_FALSE(prober.probe(token, base_report(token)).is_diamond);
}

TEST_F(DiamondProbeTest, HarvestMergesExternalAndInternalSelectors) {
  const Address facet = chain_.deploy_runtime(
      user_, ContractFactory::plain_contract(
                 {{.prototype = "facetFn()", .body = BodyKind::kStop}}));
  const Address diamond = deploy_diamond_with_facet("facetFn()", facet);
  chain_.call(user_, diamond, calldata_for("facetFn()"));
  chain_.call(user_, diamond, calldata_for("other()"));

  DiamondProber prober(chain_);
  const auto hints = prober.harvest_selectors(diamond);
  EXPECT_GE(hints.size(), 2u);
  EXPECT_NE(std::find(hints.begin(), hints.end(),
                      crypto::selector_u32("facetFn()")),
            hints.end());
}

TEST_F(DiamondProbeTest, ProbingDoesNotMutateChain) {
  const Address facet = chain_.deploy_runtime(
      user_, ContractFactory::plain_contract(
                 {{.prototype = "facetFn()", .body = BodyKind::kStoreCaller,
                   .slot = U256{3}}}));
  const Address diamond = deploy_diamond_with_facet("facetFn()", facet);
  chain_.call(user_, diamond, calldata_for("facetFn()"));
  const U256 before = chain_.get_storage(diamond, U256{3});

  DiamondProber prober(chain_);
  prober.probe(diamond, base_report(diamond));
  EXPECT_EQ(chain_.get_storage(diamond, U256{3}), before);
}

}  // namespace
