// Algorithm 1: binary-search recovery of every logic address ever stored in
// a proxy's implementation slot, with API-call efficiency vs the naive scan.
#include <gtest/gtest.h>

#include "chain/archive_node.h"
#include "chain/blockchain.h"
#include "core/logic_finder.h"
#include "core/proxy_detector.h"
#include "datagen/contract_factory.h"

namespace {

using namespace proxion;
using namespace proxion::core;
using chain::ArchiveNode;
using chain::Blockchain;
using datagen::ContractFactory;
using evm::U256;

class LogicFinderTest : public ::testing::Test {
 protected:
  /// Deploys a slot-0 proxy and stores `logics[i]` at the given heights.
  Address setup_proxy(const std::vector<std::pair<std::uint64_t, Address>>&
                          upgrades,
                      std::uint64_t final_height) {
    const Address proxy =
        chain_.deploy_runtime(user_, ContractFactory::slot_proxy(U256{0}));
    for (const auto& [height, logic] : upgrades) {
      chain_.mine_until(height);
      chain_.set_storage(proxy, U256{0}, logic.to_word());
    }
    chain_.mine_until(final_height);
    return proxy;
  }

  ProxyReport slot_report(const Address& proxy) {
    ProxyDetector detector(chain_);
    return detector.analyze(proxy);
  }

  Blockchain chain_;
  Address user_ = Address::from_label("finder.user");
};

TEST_F(LogicFinderTest, SingleLogicNeverUpgraded) {
  const Address logic = Address::from_label("logic.v1");
  const Address proxy = setup_proxy({{10, logic}}, 5000);

  ArchiveNode node(chain_);
  LogicFinder finder(node);
  const LogicHistory h = finder.find(proxy, slot_report(proxy));

  ASSERT_EQ(h.logic_addresses.size(), 1u);
  EXPECT_EQ(h.logic_addresses[0], logic);
  EXPECT_EQ(h.upgrade_events, 0u);  // zero -> v1 is not an upgrade
}

TEST_F(LogicFinderTest, MultipleUpgradesAllRecoveredInOrder) {
  const Address v1 = Address::from_label("logic.v1");
  const Address v2 = Address::from_label("logic.v2");
  const Address v3 = Address::from_label("logic.v3");
  const Address proxy =
      setup_proxy({{10, v1}, {1000, v2}, {3000, v3}}, 5000);

  ArchiveNode node(chain_);
  LogicFinder finder(node);
  const LogicHistory h = finder.find(proxy, slot_report(proxy));

  ASSERT_EQ(h.logic_addresses.size(), 3u);
  EXPECT_EQ(h.logic_addresses[0], v1);
  EXPECT_EQ(h.logic_addresses[1], v2);
  EXPECT_EQ(h.logic_addresses[2], v3);
  EXPECT_EQ(h.upgrade_events, 2u);
}

TEST_F(LogicFinderTest, BinarySearchIsLogarithmicInBlockCount) {
  const Address logic = Address::from_label("logic.v1");
  const Address proxy = setup_proxy({{10, logic}}, 100'000);

  ArchiveNode node(chain_);
  LogicFinder finder(node);
  const LogicHistory h = finder.find(proxy, slot_report(proxy));

  ASSERT_EQ(h.logic_addresses.size(), 1u);
  // log2(100'000) ~ 17; with memoized endpoints the search needs well under
  // 100 calls — the paper reports ~26 on 15M-block mainnet (§6.1).
  EXPECT_LE(h.api_calls, 100u);
  EXPECT_GT(h.api_calls, 0u);
}

TEST_F(LogicFinderTest, NaiveScanCostsOneCallPerBlock) {
  const Address logic = Address::from_label("logic.v1");
  const Address proxy = setup_proxy({{10, logic}}, 2000);

  ArchiveNode node(chain_);
  LogicFinder finder(node);
  node.reset_counters();
  const LogicHistory naive = finder.find_naive(proxy, U256{0});
  EXPECT_EQ(naive.api_calls, chain_.height() + 1);
  ASSERT_EQ(naive.logic_addresses.size(), 1u);

  node.reset_counters();
  const LogicHistory fast = finder.find(proxy, slot_report(proxy));
  EXPECT_LT(fast.api_calls * 10, naive.api_calls);  // >10x cheaper
  EXPECT_EQ(fast.logic_addresses, naive.logic_addresses);
}

TEST_F(LogicFinderTest, HardcodedProxyNeedsNoApiCalls) {
  const Address logic = Address::from_label("logic.fixed");
  const Address proxy =
      chain_.deploy_runtime(user_, ContractFactory::minimal_proxy(logic));
  chain_.mine_until(1000);

  ArchiveNode node(chain_);
  LogicFinder finder(node);
  const LogicHistory h = finder.find(proxy, slot_report(proxy));
  ASSERT_EQ(h.logic_addresses.size(), 1u);
  EXPECT_EQ(h.logic_addresses[0], logic);
  EXPECT_EQ(h.api_calls, 0u);
  EXPECT_EQ(node.get_storage_at_calls(), 0u);
}

TEST_F(LogicFinderTest, NonProxyYieldsEmptyHistory) {
  const Address token = chain_.deploy_runtime(
      user_, ContractFactory::token_contract(1));
  ArchiveNode node(chain_);
  LogicFinder finder(node);
  const LogicHistory h = finder.find(token, slot_report(token));
  EXPECT_TRUE(h.logic_addresses.empty());
}

TEST_F(LogicFinderTest, UninitializedSlotYieldsEmptyHistory) {
  const Address proxy =
      chain_.deploy_runtime(user_, ContractFactory::slot_proxy(U256{0}));
  chain_.mine_until(500);
  ArchiveNode node(chain_);
  LogicFinder finder(node);
  const LogicHistory h = finder.find(proxy, slot_report(proxy));
  EXPECT_TRUE(h.logic_addresses.empty());  // zero address excluded
  EXPECT_EQ(h.upgrade_events, 0u);
}

TEST_F(LogicFinderTest, ManyUpgradesStressTest) {
  std::vector<std::pair<std::uint64_t, Address>> upgrades;
  for (int i = 0; i < 20; ++i) {
    upgrades.emplace_back(100 + 200 * i,
                          Address::from_label("v" + std::to_string(i)));
  }
  const Address proxy = setup_proxy(upgrades, 10'000);

  ArchiveNode node(chain_);
  LogicFinder finder(node);
  const LogicHistory h = finder.find(proxy, slot_report(proxy));
  EXPECT_EQ(h.logic_addresses.size(), 20u);
  EXPECT_EQ(h.upgrade_events, 19u);
  // Still far cheaper than scanning 10k blocks.
  EXPECT_LT(h.api_calls, 1500u);
}

TEST_F(LogicFinderTest, AlgorithmAssumptionRevertedValueIsMissed) {
  // Algorithm 1 assumes logic addresses are never reused (§4.3). If a proxy
  // downgrades back to an old version so that endpoints match, intermediate
  // versions inside that range can be missed. Document the behaviour.
  const Address v1 = Address::from_label("logic.v1");
  const Address v2 = Address::from_label("logic.v2");
  const Address proxy = setup_proxy(
      {{64, v1}, {96, v2}, {128, v1}}, 127);
  // Hmm: set final height just below the revert so endpoints differ — keep
  // the deterministic assertion on the fully-visible case instead.
  ArchiveNode node(chain_);
  LogicFinder finder(node);
  const LogicHistory h = finder.find(proxy, slot_report(proxy));
  // v1 and v2 are both visible here because the final value differs from
  // genesis; the order must be first-seen.
  ASSERT_GE(h.logic_addresses.size(), 1u);
  EXPECT_EQ(h.logic_addresses[0], v1);
}

}  // namespace
