// The paper's core claim (§4): proxy detection from bytecode alone, via the
// two-phase opcode-prefilter + crafted-calldata emulation, including logic
// address attribution (hard-coded vs storage slot), standard classification
// (Table 4), and the documented diamond-proxy miss (§8.1).
#include <gtest/gtest.h>

#include "chain/blockchain.h"
#include "core/proxy_detector.h"
#include "crypto/eth.h"
#include "datagen/assembler.h"
#include "datagen/contract_factory.h"

namespace {

using namespace proxion;
using namespace proxion::core;
using chain::Blockchain;
using datagen::Assembler;
using datagen::BodyKind;
using datagen::ContractFactory;
using datagen::FunctionSpec;
using evm::Bytes;
using evm::Opcode;
using evm::U256;

class ProxyDetectorTest : public ::testing::Test {
 protected:
  Address deploy(Bytes code) { return chain_.deploy_runtime(user_, code); }

  ProxyReport analyze(const Address& a) {
    ProxyDetector detector(chain_);
    return detector.analyze(a);
  }

  Blockchain chain_;
  Address user_ = Address::from_label("detector.user");
};

TEST_F(ProxyDetectorTest, MinimalProxyIsDetectedAsEip1167) {
  const Address logic = deploy(ContractFactory::token_contract(1));
  const Address proxy = deploy(ContractFactory::minimal_proxy(logic));
  const ProxyReport r = analyze(proxy);

  EXPECT_EQ(r.verdict, ProxyVerdict::kProxy);
  EXPECT_TRUE(r.has_delegatecall_opcode);
  EXPECT_TRUE(r.calldata_forwarded);
  EXPECT_EQ(r.logic_address, logic);
  EXPECT_EQ(r.logic_source, LogicSource::kHardcoded);
  EXPECT_EQ(r.standard, ProxyStandard::kEip1167);
}

TEST_F(ProxyDetectorTest, SlotZeroProxyDetectedWithSlotAttribution) {
  const Address logic = deploy(ContractFactory::token_contract(2));
  const Address proxy = deploy(ContractFactory::slot_proxy(U256{0}));
  chain_.set_storage(proxy, U256{0}, logic.to_word());

  const ProxyReport r = analyze(proxy);
  EXPECT_EQ(r.verdict, ProxyVerdict::kProxy);
  EXPECT_EQ(r.logic_source, LogicSource::kStorageSlot);
  EXPECT_EQ(r.logic_slot, U256{0});
  EXPECT_EQ(r.logic_address, logic);
  EXPECT_EQ(r.standard, ProxyStandard::kOther);  // non-standard slot
}

TEST_F(ProxyDetectorTest, Eip1967ProxyClassified) {
  const Address logic = deploy(ContractFactory::token_contract(3));
  const Address proxy = deploy(ContractFactory::eip1967_proxy());
  chain_.set_storage(proxy, ContractFactory::eip1967_slot(), logic.to_word());

  const ProxyReport r = analyze(proxy);
  EXPECT_EQ(r.verdict, ProxyVerdict::kProxy);
  EXPECT_EQ(r.standard, ProxyStandard::kEip1967);
  EXPECT_EQ(r.logic_slot, ContractFactory::eip1967_slot());
  EXPECT_EQ(r.logic_address, logic);
}

TEST_F(ProxyDetectorTest, Eip1822ProxyClassified) {
  const Address logic = deploy(ContractFactory::token_contract(4));
  const Address proxy = deploy(ContractFactory::eip1822_proxy());
  chain_.set_storage(proxy, ContractFactory::eip1822_slot(), logic.to_word());

  const ProxyReport r = analyze(proxy);
  EXPECT_EQ(r.verdict, ProxyVerdict::kProxy);
  EXPECT_EQ(r.standard, ProxyStandard::kEip1822);
}

TEST_F(ProxyDetectorTest, TransparentProxyDetectedFromUserPerspective) {
  const Address logic = deploy(ContractFactory::token_contract(5));
  const Address proxy = deploy(ContractFactory::transparent_proxy());
  chain_.set_storage(proxy, ContractFactory::eip1967_slot(), logic.to_word());
  chain_.set_storage(proxy, evm::to_u256(crypto::eip1967_admin_slot()),
                     Address::from_label("admin").to_word());

  const ProxyReport r = analyze(proxy);
  EXPECT_EQ(r.verdict, ProxyVerdict::kProxy);
  EXPECT_EQ(r.standard, ProxyStandard::kEip1967);
}

TEST_F(ProxyDetectorTest, UninitializedSlotProxyIsStillAProxy) {
  // Fresh proxy whose implementation slot is still zero: the fallback
  // forwards to address(0); the *pattern* is still a proxy.
  const Address proxy = deploy(ContractFactory::eip1967_proxy());
  const ProxyReport r = analyze(proxy);
  EXPECT_EQ(r.verdict, ProxyVerdict::kProxy);
  EXPECT_TRUE(r.logic_address.is_zero());
  EXPECT_EQ(r.logic_source, LogicSource::kStorageSlot);
}

TEST_F(ProxyDetectorTest, PlainTokenIsNotAProxy) {
  const Address token = deploy(ContractFactory::token_contract(6));
  const ProxyReport r = analyze(token);
  EXPECT_EQ(r.verdict, ProxyVerdict::kNotProxy);
  EXPECT_FALSE(r.has_delegatecall_opcode);  // phase-1 already excludes it
}

TEST_F(ProxyDetectorTest, LibraryUserIsNotAProxyDespiteDelegatecall) {
  // §2.2: delegatecall in a *named function* is a library call, not a proxy.
  // Phase 1 passes (the opcode exists) but phase 2 must reject it.
  const Address lib = deploy(ContractFactory::math_library());
  const Address lib_user = deploy(ContractFactory::library_user(lib));
  const ProxyReport r = analyze(lib_user);
  EXPECT_TRUE(r.has_delegatecall_opcode);
  EXPECT_EQ(r.verdict, ProxyVerdict::kNotProxy);
  EXPECT_FALSE(r.delegatecall_executed);
}

TEST_F(ProxyDetectorTest, DiamondProxyIsMissedAsDocumented) {
  // §8.1: random probe selectors are not registered in the facet mapping,
  // so the diamond reverts before delegating — Proxion's known limitation.
  const Address diamond = deploy(ContractFactory::diamond_proxy());
  const ProxyReport r = analyze(diamond);
  EXPECT_TRUE(r.has_delegatecall_opcode);
  EXPECT_EQ(r.verdict, ProxyVerdict::kNotProxy);
}

TEST_F(ProxyDetectorTest, HoneypotProxyDetected) {
  const Address logic = deploy(ContractFactory::honeypot_logic(0xdf4a3106));
  const Address proxy =
      deploy(ContractFactory::honeypot_proxy(U256{1}, 0xdf4a3106));
  chain_.set_storage(proxy, U256{1}, logic.to_word());
  const ProxyReport r = analyze(proxy);
  EXPECT_EQ(r.verdict, ProxyVerdict::kProxy);
  EXPECT_EQ(r.logic_address, logic);
}

TEST_F(ProxyDetectorTest, EmptyCodeIsNotProxy) {
  const ProxyReport r = analyze(Address::from_label("empty-account"));
  EXPECT_EQ(r.verdict, ProxyVerdict::kNotProxy);
}

TEST_F(ProxyDetectorTest, MalformedBytecodeYieldsEmulationError) {
  // DELEGATECALL with an empty stack: passes phase 1, faults in phase 2
  // before any forwarding — the paper's §6.2 "insufficient values on the
  // EVM stack" bucket.
  const Address bad = deploy(Bytes{0xf4});
  const ProxyReport r = analyze(bad);
  EXPECT_TRUE(r.has_delegatecall_opcode);
  EXPECT_EQ(r.verdict, ProxyVerdict::kEmulationError);
  EXPECT_EQ(r.halt, evm::HaltReason::kStackUnderflow);
}

TEST_F(ProxyDetectorTest, InfiniteLoopYieldsEmulationError) {
  Assembler a;
  a.jumpdest("loop");
  a.push_label("loop").op(Opcode::JUMP);
  a.op(Opcode::DELEGATECALL);  // unreachable; passes phase 1
  const Address spinner = deploy(a.assemble());
  const ProxyReport r = analyze(spinner);
  EXPECT_EQ(r.verdict, ProxyVerdict::kEmulationError);
}

TEST_F(ProxyDetectorTest, RevertingContractIsCleanNotProxy) {
  Assembler a;
  a.push(U256{0}, 1).push(U256{0}, 1).op(Opcode::REVERT);
  a.op(Opcode::DELEGATECALL);  // dead code after revert
  const Address r_contract = deploy(a.assemble());
  const ProxyReport r = analyze(r_contract);
  EXPECT_EQ(r.verdict, ProxyVerdict::kNotProxy);
}

TEST_F(ProxyDetectorTest, ProbeSelectorAvoidsAllPush4Candidates) {
  // Build a contract carrying many PUSH4 constants; the crafted probe must
  // differ from every one of them (§4.2).
  Assembler a;
  for (std::uint32_t s = 0; s < 64; ++s) {
    a.push_selector(0x11110000 + s);
    a.op(Opcode::POP);
  }
  a.op(Opcode::STOP);
  const Bytes code = a.assemble();
  const evm::Disassembly dis(code);
  const std::uint32_t probe = ProxyDetector::craft_probe_selector(
      Address::from_label("probe-test"), dis);
  for (const std::uint32_t candidate : dis.push4_values()) {
    EXPECT_NE(probe, candidate);
  }
}

TEST_F(ProxyDetectorTest, ProbeSelectorIsDeterministicPerAddress) {
  const evm::Disassembly dis(Bytes{0x00});
  const Address a = Address::from_label("a");
  const Address b = Address::from_label("b");
  EXPECT_EQ(ProxyDetector::craft_probe_selector(a, dis),
            ProxyDetector::craft_probe_selector(a, dis));
  EXPECT_NE(ProxyDetector::craft_probe_selector(a, dis),
            ProxyDetector::craft_probe_selector(b, dis));
}

TEST_F(ProxyDetectorTest, ProxyWithFunctionsStillDetected) {
  // A proxy that has real dispatcher functions AND a delegating fallback
  // (the honeypot shape): the probe must dodge the dispatcher.
  const Address logic = deploy(ContractFactory::token_contract(8));
  const Address proxy = deploy(ContractFactory::slot_proxy(
      U256{1}, {{.prototype = "owner()",
                 .body = BodyKind::kReturnStorageAddress,
                 .slot = U256{0}}}));
  chain_.set_storage(proxy, U256{1}, logic.to_word());
  const ProxyReport r = analyze(proxy);
  EXPECT_EQ(r.verdict, ProxyVerdict::kProxy);
  EXPECT_EQ(r.logic_slot, U256{1});
}

TEST_F(ProxyDetectorTest, EmulationDoesNotMutateChainState) {
  const Address logic = deploy(ContractFactory::plain_contract(
      {{.prototype = "f()", .body = BodyKind::kStoreCaller, .slot = U256{5}}}));
  const Address proxy = deploy(ContractFactory::slot_proxy(U256{0}));
  chain_.set_storage(proxy, U256{0}, logic.to_word());

  analyze(proxy);
  // Whatever the emulated fallback did, the real chain is untouched.
  EXPECT_EQ(chain_.get_storage(proxy, U256{5}), U256{});
  EXPECT_TRUE(chain_.internal_txs().empty());
}

TEST_F(ProxyDetectorTest, VerdictStringsForReporting) {
  EXPECT_EQ(to_string(ProxyVerdict::kProxy), "proxy");
  EXPECT_EQ(to_string(ProxyVerdict::kNotProxy), "not-proxy");
  EXPECT_EQ(to_string(ProxyStandard::kEip1167), "EIP-1167");
  EXPECT_EQ(to_string(ProxyStandard::kOther), "other");
}

}  // namespace
