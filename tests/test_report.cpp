// Report rendering plus the §7.1 code-hash source-propagation pipeline
// option.
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/report.h"
#include "datagen/contract_factory.h"
#include "datagen/population.h"

namespace {

using namespace proxion;
using namespace proxion::core;
using datagen::BodyKind;
using datagen::ContractFactory;
using evm::U256;

LandscapeStats sample_stats() {
  LandscapeStats stats;
  stats.total_contracts = 100;
  stats.proxies = 54;
  stats.hidden_proxies = 20;
  stats.emulation_errors = 3;
  stats.unique_proxy_codehashes = 7;
  stats.function_collisions = 5;
  stats.storage_collisions = 2;
  stats.exploitable_storage_collisions = 1;
  stats.total_upgrade_events = 4;
  stats.by_standard[ProxyStandard::kEip1167] = 48;
  stats.by_standard[ProxyStandard::kOther] = 6;
  stats.function_collisions_by_year[2021] = 3;
  stats.function_collisions_by_year[2022] = 2;
  stats.storage_collisions_by_year[2022] = 2;
  stats.upgrade_histogram[0] = 50;
  stats.upgrade_histogram[2] = 4;
  return stats;
}

TEST(Report, LandscapeTextContainsHeadlines) {
  const std::string text = render_landscape_text(sample_stats());
  EXPECT_NE(text.find("proxy contracts:     54 (54.0%)"), std::string::npos);
  EXPECT_NE(text.find("hidden proxies:      20"), std::string::npos);
  EXPECT_NE(text.find("EIP-1167=48"), std::string::npos);
  EXPECT_NE(text.find("storage collisions:  2 (1 with verified exploit)"),
            std::string::npos);
}

TEST(Report, CollisionsCsvHasAllYears) {
  const std::string csv = render_collisions_csv(sample_stats());
  EXPECT_NE(csv.find("year,function_collisions,storage_collisions"),
            std::string::npos);
  EXPECT_NE(csv.find("2021,3,0"), std::string::npos);
  EXPECT_NE(csv.find("2022,2,2"), std::string::npos);
  EXPECT_NE(csv.find("2015,0,0"), std::string::npos);
  // 1 header + 9 years
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 10);
}

TEST(Report, StandardsCsvRatios) {
  const std::string csv = render_standards_csv(sample_stats());
  EXPECT_NE(csv.find("EIP-1167,48,88.89"), std::string::npos);
  EXPECT_NE(csv.find("other,6,11.11"), std::string::npos);
}

TEST(Report, UpgradesCsv) {
  const std::string csv = render_upgrades_csv(sample_stats());
  EXPECT_NE(csv.find("0,50"), std::string::npos);
  EXPECT_NE(csv.find("2,4"), std::string::npos);
}

TEST(Report, ContractsCsvRoundTripsSweep) {
  datagen::PopulationSpec spec;
  spec.total_contracts = 150;
  datagen::Population pop = datagen::PopulationGenerator().generate(spec);
  AnalysisPipeline pipeline(*pop.chain, &pop.sources);
  const auto reports = pipeline.run(pop.sweep_inputs());
  const std::string csv = render_contracts_csv(reports);
  // one header + one line per report
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'),
            static_cast<long>(reports.size()) + 1);
  EXPECT_NE(csv.find(reports[0].address.to_hex()), std::string::npos);
}

TEST(SourcePropagation, CloneInheritsVerifiedSourceForCollisionMode) {
  // One wyvern-style proxy is verified; an identical clone is not. With
  // propagation ON both report the (source-visible) collision; the clone's
  // own availability flag stays false.
  chain::Blockchain chain;
  sourcemeta::SourceRepository sources;
  const evm::Address user = evm::Address::from_label("prop.user");

  const std::vector<datagen::FunctionSpec> shared = {
      {.prototype = "proxyType()", .body = BodyKind::kReturnConstant,
       .aux = U256{2}},
      {.prototype = "implementation()",
       .body = BodyKind::kReturnStorageAddress, .slot = U256{2}},
  };
  const evm::Address logic = chain.deploy_runtime(
      user, ContractFactory::plain_contract(shared));
  const evm::Address verified =
      chain.deploy_runtime(user, ContractFactory::slot_proxy(U256{2}, shared));
  const evm::Address clone =
      chain.deploy_runtime(user, ContractFactory::slot_proxy(U256{2}, shared));
  chain.set_storage(verified, U256{2}, logic.to_word());
  chain.set_storage(clone, U256{2}, logic.to_word());

  sourcemeta::SourceRecord rec;
  rec.contract_name = "OwnableDelegateProxy";
  rec.fallback_delegates = true;
  rec.functions = {{.prototype = "proxyType()"},
                   {.prototype = "implementation()"}};
  sources.publish(verified, rec);
  sources.publish(logic, rec);

  std::vector<SweepInput> inputs = {
      {verified, 2021, true, false},
      {clone, 2022, false, false},
      {logic, 2021, true, false},
  };
  AnalysisPipeline pipeline(chain, &sources);
  const auto reports = pipeline.run(inputs);
  EXPECT_TRUE(reports[0].function_collision);
  EXPECT_TRUE(reports[1].function_collision);  // via the donor's source
  EXPECT_FALSE(reports[1].has_source);
}

}  // namespace
