// U256 arithmetic: EVM semantics (wrapping, div-by-zero -> 0, signed ops,
// shifts, SIGNEXTEND/BYTE) including property-style parameterized sweeps.
#include <gtest/gtest.h>

#include <random>

#include "evm/types.h"

namespace {

using proxion::evm::Address;
using proxion::evm::U256;

const U256 kMax = ~U256{};  // 2^256 - 1

TEST(U256, BasicConstruction) {
  EXPECT_TRUE(U256{}.is_zero());
  EXPECT_EQ(U256{7}.low64(), 7u);
  EXPECT_TRUE(U256{7}.fits_u64());
  EXPECT_FALSE((U256{1} << U256{64}).fits_u64());
}

TEST(U256, HexRoundTrip) {
  const U256 v = U256::from_hex("0xdeadbeefcafebabe1122334455667788");
  EXPECT_EQ(v.to_hex(), "0xdeadbeefcafebabe1122334455667788");
  EXPECT_EQ(U256{}.to_hex(), "0x0");
  EXPECT_EQ(U256{255}.to_hex(), "0xff");
}

TEST(U256, BeBytesRoundTrip) {
  const U256 v = U256::from_hex(
      "0x0102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f20");
  EXPECT_EQ(U256::from_be_bytes(v.to_be_bytes()), v);
}

TEST(U256, FromBeSliceShortInput) {
  const std::uint8_t raw[2] = {0x12, 0x34};
  EXPECT_EQ(U256::from_be_slice(std::span(raw, 2)), U256{0x1234});
}

TEST(U256, AdditionWraps) {
  EXPECT_EQ(kMax + U256{1}, U256{});
  EXPECT_EQ(kMax + kMax, kMax - U256{1});
}

TEST(U256, SubtractionWraps) {
  EXPECT_EQ(U256{} - U256{1}, kMax);
  EXPECT_EQ(U256{5} - U256{3}, U256{2});
}

TEST(U256, MultiplicationCarriesAcrossLimbs) {
  const U256 a = U256{1} << U256{64};
  EXPECT_EQ(a * a, U256{1} << U256{128});
  EXPECT_EQ((a * a) * (a * a), U256{});  // 2^256 wraps to zero
  EXPECT_EQ(U256{0xffffffffffffffffull} * U256{2},
            (U256{1} << U256{65}) - U256{2});
}

TEST(U256, DivisionAndModulo) {
  EXPECT_EQ(U256{100} / U256{7}, U256{14});
  EXPECT_EQ(U256{100} % U256{7}, U256{2});
  // EVM rule: division by zero yields zero, not a trap.
  EXPECT_EQ(U256{100} / U256{}, U256{});
  EXPECT_EQ(U256{100} % U256{}, U256{});
  const U256 big = U256::from_hex(
      "0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff");
  EXPECT_EQ(big / U256{1}, big);
  EXPECT_EQ(big / big, U256{1});
  EXPECT_EQ(big % big, U256{});
}

TEST(U256, DivisionMultiLimb) {
  const U256 n = (U256{1} << U256{200}) + U256{12345};
  const U256 d = (U256{1} << U256{100}) + U256{7};
  const U256 q = n / d;
  const U256 r = n % d;
  EXPECT_EQ(q * d + r, n);
  EXPECT_TRUE(r < d);
}

TEST(U256, ComparisonAcrossLimbs) {
  const U256 high = U256{1} << U256{192};
  const U256 low = kMax >> U256{64};
  EXPECT_TRUE(low < high);
  EXPECT_TRUE(high > low);
  EXPECT_EQ(high <=> high, std::strong_ordering::equal);
}

TEST(U256, ShiftEdgeCases) {
  EXPECT_EQ(U256{1} << U256{255}, U256::from_hex(
      "0x8000000000000000000000000000000000000000000000000000000000000000"));
  EXPECT_EQ(U256{1} << U256{256}, U256{});  // shift >= 256 -> 0
  EXPECT_EQ(kMax >> U256{256}, U256{});
  EXPECT_EQ((U256{1} << U256{255}) >> U256{255}, U256{1});
  EXPECT_EQ(U256{0xff} << U256{0}, U256{0xff});
}

TEST(U256, SignedDivision) {
  const U256 minus_ten = U256{} - U256{10};
  EXPECT_EQ(minus_ten.sdiv(U256{3}), U256{} - U256{3});
  EXPECT_EQ(minus_ten.sdiv(U256{} - U256{3}), U256{3});
  EXPECT_EQ(U256{10}.sdiv(U256{} - U256{3}), U256{} - U256{3});
  EXPECT_EQ(minus_ten.sdiv(U256{}), U256{});
}

TEST(U256, SignedModuloTakesDividendSign) {
  const U256 minus_ten = U256{} - U256{10};
  EXPECT_EQ(minus_ten.smod(U256{3}), U256{} - U256{1});
  EXPECT_EQ(U256{10}.smod(U256{} - U256{3}), U256{1});
}

TEST(U256, SignedComparison) {
  const U256 minus_one = kMax;
  EXPECT_TRUE(minus_one.slt(U256{0}));
  EXPECT_TRUE(U256{0}.sgt(minus_one));
  EXPECT_FALSE(U256{1}.slt(U256{0}));
  EXPECT_TRUE((U256{} - U256{5}).slt(U256{} - U256{3}));
}

TEST(U256, ArithmeticShiftRight) {
  const U256 minus_eight = U256{} - U256{8};
  EXPECT_EQ(minus_eight.sar(U256{1}), U256{} - U256{4});
  EXPECT_EQ(minus_eight.sar(U256{300}), kMax);  // sign fill saturates
  EXPECT_EQ(U256{8}.sar(U256{1}), U256{4});
  EXPECT_EQ(U256{8}.sar(U256{300}), U256{});
}

TEST(U256, Exponentiation) {
  EXPECT_EQ(U256{2}.exp(U256{10}), U256{1024});
  EXPECT_EQ(U256{3}.exp(U256{0}), U256{1});
  EXPECT_EQ(U256{0}.exp(U256{0}), U256{1});  // EVM defines 0^0 = 1
  EXPECT_EQ(U256{2}.exp(U256{256}), U256{});  // wraps to zero
  EXPECT_EQ(U256{10}.exp(U256{18}), U256{1'000'000'000'000'000'000ull});
}

TEST(U256, AddmodMulmod) {
  EXPECT_EQ(U256::addmod(U256{10}, U256{10}, U256{8}), U256{4});
  EXPECT_EQ(U256::mulmod(U256{10}, U256{10}, U256{8}), U256{4});
  EXPECT_EQ(U256::addmod(U256{1}, U256{2}, U256{}), U256{});
  // The signature case: intermediate sum exceeding 2^256 must not wrap.
  EXPECT_EQ(U256::addmod(kMax, kMax, U256{12}), (kMax % U256{12}) * U256{2} % U256{12});
  EXPECT_EQ(U256::mulmod(kMax, kMax, kMax), U256{});
  EXPECT_EQ(U256::mulmod(kMax, U256{2}, kMax), U256{});
}

TEST(U256, SignExtend) {
  // Extend byte 0 of 0xff -> -1.
  EXPECT_EQ(U256{0xff}.signextend(U256{0}), kMax);
  EXPECT_EQ(U256{0x7f}.signextend(U256{0}), U256{0x7f});
  EXPECT_EQ(U256{0xff80}.signextend(U256{1}),
            kMax - U256{0x7f});  // 0xff...ff80
  EXPECT_EQ(U256{0x1234}.signextend(U256{31}), U256{0x1234});  // no-op
  EXPECT_EQ(U256{0x1234}.signextend(U256{100}), U256{0x1234});
}

TEST(U256, ByteExtraction) {
  const U256 v = U256::from_hex(
      "0x0102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f20");
  EXPECT_EQ(v.byte(U256{0}), 0x01);
  EXPECT_EQ(v.byte(U256{31}), 0x20);
  EXPECT_EQ(v.byte(U256{32}), 0x00);  // out of range -> 0
}

TEST(U256, BitLength) {
  EXPECT_EQ(U256{}.bit_length(), 0);
  EXPECT_EQ(U256{1}.bit_length(), 1);
  EXPECT_EQ(U256{0xff}.bit_length(), 8);
  EXPECT_EQ((U256{1} << U256{200}).bit_length(), 201);
  EXPECT_EQ(kMax.bit_length(), 256);
}

// ---- Property sweeps ------------------------------------------------------

class U256PropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  U256 random_value(std::mt19937_64& rng) {
    // Mix of small, medium, and full-width values.
    switch (rng() % 3) {
      case 0: return U256{rng() % 1000};
      case 1: return U256{rng()};
      default: return U256{rng(), rng(), rng(), rng()};
    }
  }
};

TEST_P(U256PropertyTest, AdditionCommutesAndSubtractionInverts) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const U256 a = random_value(rng);
    const U256 b = random_value(rng);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ(a - a, U256{});
  }
}

TEST_P(U256PropertyTest, DivModIdentity) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const U256 a = random_value(rng);
    const U256 b = random_value(rng);
    if (b.is_zero()) continue;
    EXPECT_EQ((a / b) * b + (a % b), a);
    EXPECT_TRUE(a % b < b);
  }
}

TEST_P(U256PropertyTest, ShiftsInvertBelowWordSize) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const U256 a = random_value(rng);
    const std::uint64_t s = rng() % 128;
    EXPECT_EQ(((a << U256{s}) >> U256{s}) & (kMax >> U256{s + 128}),
              a & (kMax >> U256{s + 128}));
  }
}

TEST_P(U256PropertyTest, MulmodMatchesSmallModulusArithmetic) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t a = rng() % 100000;
    const std::uint64_t b = rng() % 100000;
    const std::uint64_t m = 1 + rng() % 100000;
    EXPECT_EQ(U256::mulmod(U256{a}, U256{b}, U256{m}),
              U256{(a * b) % m});
  }
}

TEST_P(U256PropertyTest, BitwiseDeMorgan) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const U256 a = random_value(rng);
    const U256 b = random_value(rng);
    EXPECT_EQ(~(a & b), ~a | ~b);
    EXPECT_EQ(~(a | b), ~a & ~b);
    EXPECT_EQ(a ^ b, (a | b) & ~(a & b));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, U256PropertyTest,
                         ::testing::Values(1u, 42u, 20240920u, 0xdeadbeefu));

TEST(AddressTest, WordRoundTrip) {
  const Address a = Address::from_label("round-trip");
  EXPECT_EQ(Address::from_word(a.to_word()), a);
  EXPECT_FALSE(a.is_zero());
  EXPECT_TRUE(Address{}.is_zero());
}

TEST(AddressTest, HexRoundTrip) {
  const Address a = Address::from_hex(
      "0xdAC17F958D2ee523a2206206994597C13D831ec7");  // USDT from Listing 1
  EXPECT_EQ(a.to_hex(), "0xdac17f958d2ee523a2206206994597c13d831ec7");
}

TEST(AddressTest, FromWordTruncatesHighBits) {
  const proxion::evm::U256 word =
      (U256{0xff} << U256{200}) | U256{0x1234};
  const Address a = Address::from_word(word);
  EXPECT_EQ(a.to_word(), U256{0x1234});
}

}  // namespace
