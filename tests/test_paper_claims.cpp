// Integration assertions for the paper's headline claims, pinned as tests so
// regressions that would silently break a reproduction claim fail CI:
//   §6.2  Proxion finds strictly more proxies than every baseline;
//   §6.2  Proxion excludes the library callers CRUSH includes;
//   §6.3  on labelled pairs Proxion's accuracy beats the baselines';
//   §7.2  clone families dominate; most proxies never upgrade;
//   §6.1  Algorithm 1 costs ~log(blocks), not blocks.
#include <gtest/gtest.h>

#include "baselines/crush.h"
#include "baselines/etherscan.h"
#include "baselines/salehi.h"
#include "baselines/uschunt.h"
#include "core/pipeline.h"
#include "datagen/population.h"

namespace {

using namespace proxion;
using datagen::Archetype;
using datagen::Population;

class PaperClaimsTest : public ::testing::Test {
 protected:
  static Population& pop() {
    static Population p = [] {
      datagen::PopulationSpec spec;
      spec.total_contracts = 2'500;
      return datagen::PopulationGenerator().generate(spec);
    }();
    return p;
  }

  static const std::vector<core::ContractAnalysis>& reports() {
    static const std::vector<core::ContractAnalysis> r = [] {
      core::AnalysisPipeline pipeline(*pop().chain, &pop().sources);
      return pipeline.run(pop().sweep_inputs());
    }();
    return r;
  }
};

TEST_F(PaperClaimsTest, ProxionFindsMoreProxiesThanEveryBaseline) {
  auto& chain = *pop().chain;
  baselines::UschuntAnalyzer uschunt(pop().sources);
  baselines::CrushAnalyzer crush(chain);
  baselines::SalehiAnalyzer salehi(chain);

  std::uint64_t proxion_count = 0, uschunt_count = 0, salehi_count = 0;
  for (std::size_t i = 0; i < pop().contracts.size(); ++i) {
    const auto& c = pop().contracts[i];
    if (reports()[i].proxy.is_proxy()) ++proxion_count;
    const auto ur = uschunt.detect_proxy(c.address);
    if (ur.status == baselines::UschuntStatus::kAnalyzed && ur.is_proxy) {
      ++uschunt_count;
    }
    // Salehi replay is expensive; only replay contracts with history.
    if (c.has_tx && salehi.analyze(c.address).is_proxy) ++salehi_count;
  }
  std::unordered_set<std::string> crush_proxies;
  for (const auto& pair : crush.find_proxy_pairs()) {
    crush_proxies.insert(pair.proxy.to_hex());
  }

  EXPECT_GT(proxion_count, uschunt_count);
  EXPECT_GT(proxion_count, crush_proxies.size());
  EXPECT_GT(proxion_count, salehi_count);
}

TEST_F(PaperClaimsTest, ProxionExcludesLibraryCallersCrushIncludes) {
  auto& chain = *pop().chain;
  baselines::CrushAnalyzer crush(chain);
  core::ProxyDetector detector(chain);

  std::uint64_t crush_library_hits = 0;
  for (const auto& pair : crush.find_proxy_pairs()) {
    if (!detector.analyze(pair.proxy).is_proxy()) ++crush_library_hits;
  }
  // The population plants library users with history: CRUSH must have
  // swallowed at least some, and Proxion must reject all of them.
  EXPECT_GT(crush_library_hits, 0u);

  for (std::size_t i = 0; i < pop().contracts.size(); ++i) {
    if (pop().contracts[i].archetype == Archetype::kLibraryUser) {
      EXPECT_FALSE(reports()[i].proxy.is_proxy());
    }
  }
}

TEST_F(PaperClaimsTest, HiddenProxiesAreProxionExclusive) {
  auto& chain = *pop().chain;
  baselines::UschuntAnalyzer uschunt(pop().sources);
  baselines::SalehiAnalyzer salehi(chain);

  std::uint64_t hidden_found = 0;
  for (std::size_t i = 0; i < pop().contracts.size(); ++i) {
    const auto& c = pop().contracts[i];
    if (c.has_source || c.has_tx || !reports()[i].proxy.is_proxy()) continue;
    ++hidden_found;
    EXPECT_EQ(uschunt.detect_proxy(c.address).status,
              baselines::UschuntStatus::kNoSource);
    EXPECT_FALSE(salehi.analyze(c.address).has_history);
  }
  EXPECT_GT(hidden_found, 100u);  // a large class, per Fig 2
}

TEST_F(PaperClaimsTest, CloneFamiliesDominateAndRarelyUpgrade) {
  std::unordered_map<std::string, std::uint64_t> by_code;
  auto& chain = *pop().chain;
  std::uint64_t proxies = 0, upgraded = 0;
  for (const auto& r : reports()) {
    if (!r.proxy.is_proxy()) continue;
    ++proxies;
    if (r.logic_history.upgrade_events > 0) ++upgraded;
    const auto h = evm::code_hash(chain.get_code(r.address));
    by_code[std::string(reinterpret_cast<const char*>(h.data()), h.size())]++;
  }
  // §7.2: duplicates dominate (few unique codebases)...
  EXPECT_LT(by_code.size() * 20, proxies);
  // ... and under ~2% of proxies ever upgrade (paper: 0.26%).
  EXPECT_LT(upgraded * 50, proxies);
}

TEST_F(PaperClaimsTest, Algorithm1CostIsLogarithmicNotLinear) {
  const std::uint64_t height = pop().chain->height();
  for (const auto& r : reports()) {
    if (!r.proxy.is_proxy() ||
        r.proxy.logic_source != core::LogicSource::kStorageSlot) {
      continue;
    }
    // Generous bound: even many-upgrade proxies stay far below per-block.
    EXPECT_LT(r.logic_history.api_calls, height / 4) << r.address.to_hex();
  }
}

TEST_F(PaperClaimsTest, EmulationErrorRateIsLowSingleDigits) {
  std::uint64_t errors = 0;
  for (const auto& r : reports()) {
    if (r.proxy.verdict == core::ProxyVerdict::kEmulationError) ++errors;
  }
  const double rate =
      static_cast<double>(errors) / static_cast<double>(reports().size());
  EXPECT_GT(rate, 0.005);  // the population plants broken blobs (§7.1)
  EXPECT_LT(rate, 0.10);   // paper: 4.9%
}

TEST_F(PaperClaimsTest, EtherscanHeuristicOverapproximatesProxion) {
  auto& chain = *pop().chain;
  std::uint64_t etherscan_count = 0, proxion_count = 0;
  for (std::size_t i = 0; i < pop().contracts.size(); ++i) {
    const auto code = chain.get_code(pop().contracts[i].address);
    if (baselines::etherscan_detect(code).is_proxy) ++etherscan_count;
    if (reports()[i].proxy.is_proxy()) ++proxion_count;
  }
  EXPECT_GT(etherscan_count, proxion_count);  // opcode presence is a superset
}

}  // namespace
