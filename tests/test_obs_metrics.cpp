// The telemetry metric primitives: counter/gauge semantics, histogram
// bucket-boundary exactness, snapshot merging, percentile estimates checked
// against a sorted-vector oracle, and concurrent recording (this test is
// also a TSan target via tools/sanitize_smoke.sh).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace {

using proxion::obs::Counter;
using proxion::obs::Gauge;
using proxion::obs::Histogram;
using proxion::obs::HistogramSnapshot;
using proxion::obs::HistogramSummary;
using proxion::obs::Registry;

TEST(CounterTest, AddsAccumulateAndResetZeroes) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(CounterTest, ConcurrentAddsSumExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAddAndReset) {
  Gauge g;
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(MetricsTest, EnabledSwitchToggles) {
  EXPECT_TRUE(proxion::obs::enabled());  // default-on
  proxion::obs::set_enabled(false);
  EXPECT_FALSE(proxion::obs::enabled());
  proxion::obs::set_enabled(true);
  EXPECT_TRUE(proxion::obs::enabled());
}

// Every bucket boundary must be exact: bucket_lower_bound(i) is the
// smallest value in bucket i, its predecessor falls in bucket i-1, and
// bucket_upper_bound(i) still maps to i.
TEST(HistogramBucketsTest, BoundsAreExactInversesOfIndex) {
  for (unsigned i = 0; i < Histogram::kBucketCount; ++i) {
    const std::uint64_t lo = Histogram::bucket_lower_bound(i);
    ASSERT_EQ(Histogram::bucket_index(lo), i) << "lower bound of " << i;
    if (i > 0) {
      ASSERT_EQ(Histogram::bucket_index(lo - 1), i - 1)
          << "predecessor of lower bound of " << i;
    }
    const std::uint64_t hi = Histogram::bucket_upper_bound(i);
    ASSERT_EQ(Histogram::bucket_index(hi), i) << "upper bound of " << i;
  }
  EXPECT_EQ(Histogram::bucket_index(~std::uint64_t{0}),
            Histogram::kBucketCount - 1);
}

// The resolution contract behind the percentile error bound: past the unit
// buckets, a bucket is never wider than 1/8 of its lower bound.
TEST(HistogramBucketsTest, BucketWidthBoundedByEighthOfLowerBound) {
  for (unsigned i = Histogram::kSubBuckets; i < Histogram::kBucketCount; ++i) {
    const std::uint64_t lo = Histogram::bucket_lower_bound(i);
    const std::uint64_t hi = Histogram::bucket_upper_bound(i);
    ASSERT_LE(hi - lo + 1, lo / Histogram::kSubBuckets) << "bucket " << i;
  }
}

TEST(HistogramTest, RecordsLandInTheirBuckets) {
  Histogram h;
  const std::uint64_t values[] = {0, 1, 7, 8, 9, 100, 1'000'000,
                                  (std::uint64_t{1} << 40) + 12345};
  for (std::uint64_t v : values) h.record(v);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, std::size(values));
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, (std::uint64_t{1} << 40) + 12345);
  for (std::uint64_t v : values) {
    EXPECT_GE(snap.buckets[Histogram::bucket_index(v)], 1u) << v;
  }
}

// The percentile estimate is the midpoint of the bucket holding the rank-th
// sample (clamped to the observed [min, max]), so it must land in the SAME
// bucket as a sorted-vector oracle — an exact assertion, not a tolerance.
TEST(HistogramTest, PercentilesMatchSortedOracleBucketExactly) {
  std::mt19937_64 rng(42);
  Histogram h;
  std::vector<std::uint64_t> samples;
  samples.reserve(5'000);
  for (int i = 0; i < 5'000; ++i) {
    // Log-uniform spread over [0, 2^48): small and huge values both matter.
    const unsigned bits = static_cast<unsigned>(rng() % 48) + 1;
    const std::uint64_t v = rng() & ((std::uint64_t{1} << bits) - 1);
    samples.push_back(v);
    h.record(v);
  }
  std::sort(samples.begin(), samples.end());
  const HistogramSnapshot snap = h.snapshot();
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0}) {
    const std::size_t rank = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(p / 100.0 * static_cast<double>(samples.size()))));
    const std::uint64_t oracle = samples[rank - 1];
    const double estimate = snap.percentile(p);
    EXPECT_EQ(Histogram::bucket_index(static_cast<std::uint64_t>(estimate)),
              Histogram::bucket_index(oracle))
        << "p" << p << ": estimate " << estimate << " vs oracle " << oracle;
  }
}

TEST(HistogramTest, PercentileEdgeCases) {
  Histogram h;
  EXPECT_EQ(h.snapshot().percentile(50.0), 0.0);  // empty
  h.record(1'000);
  const HistogramSnapshot one = h.snapshot();
  // A single sample: every percentile is clamped into its bucket.
  EXPECT_EQ(Histogram::bucket_index(
                static_cast<std::uint64_t>(one.percentile(50.0))),
            Histogram::bucket_index(1'000));
  EXPECT_EQ(Histogram::bucket_index(
                static_cast<std::uint64_t>(one.percentile(100.0))),
            Histogram::bucket_index(1'000));
}

TEST(HistogramSnapshotTest, MergeEqualsRecordingTheUnion) {
  std::mt19937_64 rng(7);
  Histogram a, b, both;
  for (int i = 0; i < 2'000; ++i) {
    const std::uint64_t v = rng() % 1'000'000;
    if (i % 2 == 0) a.record(v); else b.record(v);
    both.record(v);
  }
  HistogramSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  const HistogramSnapshot oracle = both.snapshot();
  EXPECT_EQ(merged.count, oracle.count);
  EXPECT_EQ(merged.sum, oracle.sum);
  EXPECT_EQ(merged.min, oracle.min);
  EXPECT_EQ(merged.max, oracle.max);
  for (unsigned i = 0; i < Histogram::kBucketCount; ++i) {
    ASSERT_EQ(merged.buckets[i], oracle.buckets[i]) << "bucket " << i;
  }
}

TEST(HistogramTest, ConcurrentRecordingKeepsExactTotals) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.record(static_cast<std::uint64_t>(t) + 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_EQ(snap.min, 1u);
  EXPECT_EQ(snap.max, static_cast<std::uint64_t>(kThreads));
  std::uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    expected_sum += (static_cast<std::uint64_t>(t) + 1) * kPerThread;
  }
  EXPECT_EQ(snap.sum, expected_sum);
}

TEST(HistogramTest, SummaryDerivesMeanFromSumAndCount) {
  Histogram h;
  h.record(10);
  h.record(20);
  h.record(30);
  const HistogramSummary s = h.summary();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 60.0);
  EXPECT_DOUBLE_EQ(s.mean, 20.0);
  EXPECT_EQ(s.min, 10u);
  EXPECT_EQ(s.max, 30u);
}

TEST(RegistryTest, LookupsReturnStableReferences) {
  Registry r;
  Counter& c1 = r.counter("sweep.test");
  Counter& c2 = r.counter("sweep.test");
  EXPECT_EQ(&c1, &c2);
  Gauge& g1 = r.gauge("sweep.depth");
  EXPECT_EQ(&g1, &r.gauge("sweep.depth"));
  Histogram& h1 = r.histogram("sweep.lat");
  EXPECT_EQ(&h1, &r.histogram("sweep.lat"));
}

TEST(RegistryTest, SnapshotReflectsAllMetricsAndResetZeroes) {
  Registry r;
  r.counter("c").add(5);
  r.gauge("g").set(-3);
  r.histogram("h").record(100);
  const Registry::Snapshot snap = r.snapshot();
  EXPECT_EQ(snap.counters.at("c"), 5u);
  EXPECT_EQ(snap.gauges.at("g"), -3);
  EXPECT_EQ(snap.histograms.at("h").count, 1u);
  r.reset();
  const Registry::Snapshot zero = r.snapshot();
  EXPECT_EQ(zero.counters.at("c"), 0u);
  EXPECT_EQ(zero.gauges.at("g"), 0);
  EXPECT_EQ(zero.histograms.at("h").count, 0u);
}

TEST(RegistryTest, GlobalRegistryCarriesTheAbsorbedCounters) {
  // The dedup satellite: the formerly scattered counters all publish into
  // the process-wide registry under stable names. Exercising keccak here
  // would couple this test to crypto/, so just assert the names resolve and
  // are monotonic under add().
  Registry& g = Registry::global();
  Counter& keccak = g.counter("crypto.keccak.invocations");
  const std::uint64_t before = keccak.value();
  keccak.add(0);
  EXPECT_GE(keccak.value(), before);
}

}  // namespace
