// Cross-cutting property tests:
//   - Algorithm 1 equals the exhaustive per-block scan on random upgrade
//     schedules (the paper's correctness assumption, §4.3);
//   - the OverlayHost is a faithful copy-on-write view;
//   - the storage journal agrees with live state at head for random writes.
#include <gtest/gtest.h>

#include <random>

#include "chain/archive_node.h"
#include "chain/blockchain.h"
#include "core/logic_finder.h"
#include "core/proxy_detector.h"
#include "datagen/contract_factory.h"

namespace {

using namespace proxion;
using chain::ArchiveNode;
using chain::Blockchain;
using datagen::ContractFactory;
using evm::Address;
using evm::Bytes;
using evm::U256;

class Algorithm1Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Algorithm1Property, BinarySearchEqualsExhaustiveScan) {
  std::mt19937_64 rng(GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    Blockchain chain;
    const Address user = Address::from_label("p.user");
    const Address proxy =
        chain.deploy_runtime(user, ContractFactory::slot_proxy(U256{0}));

    // Random schedule: 0..6 distinct upgrades at random strictly-increasing
    // heights in a random-length chain.
    const std::uint64_t chain_len = 200 + rng() % 3000;
    const int upgrades = static_cast<int>(rng() % 7);
    std::vector<std::uint64_t> heights;
    for (int i = 0; i < upgrades; ++i) {
      heights.push_back(1 + rng() % (chain_len - 1));
    }
    std::sort(heights.begin(), heights.end());
    heights.erase(std::unique(heights.begin(), heights.end()), heights.end());
    for (std::size_t i = 0; i < heights.size(); ++i) {
      chain.mine_until(heights[i]);
      chain.set_storage(
          proxy, U256{0},
          Address::from_label("impl." + std::to_string(rng())).to_word());
    }
    chain.mine_until(chain_len);

    core::ProxyDetector detector(chain);
    const auto report = detector.analyze(proxy);
    ASSERT_EQ(report.verdict, core::ProxyVerdict::kProxy);

    ArchiveNode node(chain);
    core::LogicFinder finder(node);
    const auto fast = finder.find(proxy, report);
    const auto naive = finder.find_naive(proxy, U256{0});

    EXPECT_EQ(fast.logic_addresses, naive.logic_addresses)
        << "seed " << GetParam() << " trial " << trial;
    EXPECT_EQ(fast.upgrade_events, naive.upgrade_events);
    if (!heights.empty()) {
      EXPECT_LT(fast.api_calls, naive.api_calls);
    }
  }
}

TEST_P(Algorithm1Property, JournalHeadMatchesLiveState) {
  std::mt19937_64 rng(GetParam());
  Blockchain chain;
  const Address a = chain.deploy_runtime(Address::from_label("w"), {0x00});
  std::vector<U256> slots = {U256{0}, U256{1}, U256{7}, U256{42}};

  for (int i = 0; i < 120; ++i) {
    const U256& slot = slots[rng() % slots.size()];
    const U256 value{rng()};
    chain.set_storage(a, slot, value);
    if (rng() % 3 == 0) chain.mine_block();
  }
  for (const U256& slot : slots) {
    EXPECT_EQ(chain.storage_at(a, slot, chain.height()),
              chain.get_storage(a, slot));
  }
}

TEST_P(Algorithm1Property, JournalIsMonotoneConsistent) {
  // Reading the same slot at increasing heights must replay the write
  // sequence in order (no value may appear before it was written).
  std::mt19937_64 rng(GetParam());
  Blockchain chain;
  const Address a = chain.deploy_runtime(Address::from_label("w2"), {0x00});
  std::vector<std::pair<std::uint64_t, U256>> writes;
  for (int i = 0; i < 25; ++i) {
    chain.mine_until(chain.height() + 1 + rng() % 50);
    const U256 value{rng()};
    chain.set_storage(a, U256{3}, value);
    writes.emplace_back(chain.height(), value);
  }
  chain.mine_until(chain.height() + 10);

  for (const auto& [height, value] : writes) {
    EXPECT_EQ(chain.storage_at(a, U256{3}, height), value);
    if (height > 0) {
      const U256 before = chain.storage_at(a, U256{3}, height - 1);
      EXPECT_NE(before, value);  // rng collision chance negligible
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Algorithm1Property,
                         ::testing::Values(7u, 1234u, 0xabcdefu));

TEST(OverlayProperty, ReadsFallThroughWritesShadow) {
  std::mt19937_64 rng(99);
  evm::MemoryHost base;
  const Address a = Address::from_label("ov");
  for (int i = 0; i < 50; ++i) {
    base.set_storage(a, U256{static_cast<std::uint64_t>(i)}, U256{rng()});
  }
  base.set_balance(a, U256{1000});
  base.set_nonce(a, 5);
  base.set_code(a, Bytes{0x60, 0x01});

  evm::OverlayHost overlay(base);
  // Untouched reads equal base.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(overlay.get_storage(a, U256{static_cast<std::uint64_t>(i)}),
              base.get_storage(a, U256{static_cast<std::uint64_t>(i)}));
  }
  EXPECT_EQ(overlay.get_balance(a), U256{1000});
  EXPECT_EQ(overlay.get_nonce(a), 5u);
  EXPECT_EQ(overlay.get_code(a), (Bytes{0x60, 0x01}));

  // Writes shadow without leaking.
  overlay.set_storage(a, U256{3}, U256{0xdead});
  overlay.set_balance(a, U256{1});
  overlay.set_nonce(a, 99);
  overlay.set_code(a, Bytes{0x00});
  EXPECT_EQ(overlay.get_storage(a, U256{3}), U256{0xdead});
  EXPECT_EQ(overlay.get_balance(a), U256{1});
  EXPECT_EQ(overlay.get_nonce(a), 99u);
  EXPECT_EQ(overlay.get_code(a), Bytes{0x00});
  EXPECT_NE(base.get_storage(a, U256{3}), U256{0xdead});
  EXPECT_EQ(base.get_balance(a), U256{1000});
  EXPECT_EQ(base.get_nonce(a), 5u);
  EXPECT_EQ(base.get_code(a), (Bytes{0x60, 0x01}));
}

TEST(OverlayProperty, AccountExistenceCombinesBothLayers) {
  evm::MemoryHost base;
  const Address in_base = Address::from_label("base-only");
  const Address in_overlay = Address::from_label("overlay-only");
  const Address nowhere = Address::from_label("nowhere");
  base.set_balance(in_base, U256{1});

  evm::OverlayHost overlay(base);
  overlay.set_code(in_overlay, Bytes{0x00});
  EXPECT_TRUE(overlay.account_exists(in_base));
  EXPECT_TRUE(overlay.account_exists(in_overlay));
  EXPECT_FALSE(overlay.account_exists(nowhere));
  EXPECT_FALSE(base.account_exists(in_overlay));
}

TEST(DetectorProperty, ProbeNeverMutatesAnyHostState) {
  // Sweep a batch of archetypes; after analysis the chain's storage journal
  // and internal tx log must be untouched.
  Blockchain chain;
  const Address d = Address::from_label("dp");
  std::vector<Address> targets;
  const Address logic = chain.deploy_runtime(d, ContractFactory::token_contract(5));
  targets.push_back(chain.deploy_runtime(d, ContractFactory::minimal_proxy(logic)));
  targets.push_back(chain.deploy_runtime(d, ContractFactory::eip1967_proxy()));
  targets.push_back(chain.deploy_runtime(d, ContractFactory::diamond_proxy()));
  targets.push_back(chain.deploy_runtime(d, ContractFactory::audius_style_proxy()));
  const std::size_t txs_before = chain.internal_txs().size();

  core::ProxyDetector detector(chain);
  for (const Address& t : targets) {
    detector.analyze(t);
  }
  EXPECT_EQ(chain.internal_txs().size(), txs_before);
  EXPECT_EQ(chain.get_storage(targets[1], ContractFactory::eip1967_slot()),
            U256{});
}

}  // namespace
