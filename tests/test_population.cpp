// The synthetic population generator: determinism, the paper's availability
// ratios (Fig 2), archetype ground truth, and chain-state consistency.
#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "core/proxy_detector.h"
#include "datagen/population.h"

namespace {

using namespace proxion;
using namespace proxion::datagen;

class PopulationTest : public ::testing::Test {
 protected:
  static const Population& pop() {
    static const Population p = [] {
      PopulationSpec spec;
      spec.total_contracts = 1'500;  // small but statistically meaningful
      return PopulationGenerator().generate(spec);
    }();
    return p;
  }
};

TEST_F(PopulationTest, GeneratesRequestedScale) {
  EXPECT_GT(pop().contracts.size(), 1'200u);
  EXPECT_LT(pop().contracts.size(), 2'500u);
}

TEST_F(PopulationTest, Deterministic) {
  PopulationSpec spec;
  spec.total_contracts = 120;
  const Population a = PopulationGenerator().generate(spec);
  const Population b = PopulationGenerator().generate(spec);
  ASSERT_EQ(a.contracts.size(), b.contracts.size());
  for (std::size_t i = 0; i < a.contracts.size(); ++i) {
    EXPECT_EQ(a.contracts[i].address, b.contracts[i].address);
    EXPECT_EQ(a.contracts[i].archetype, b.contracts[i].archetype);
    EXPECT_EQ(a.contracts[i].has_source, b.contracts[i].has_source);
  }
}

TEST_F(PopulationTest, SeedChangesOutcome) {
  PopulationSpec spec;
  spec.total_contracts = 120;
  const Population a = PopulationGenerator().generate(spec);
  spec.seed += 1;
  const Population b = PopulationGenerator().generate(spec);
  // Addresses are nonce-derived and can coincide across seeds; the random
  // decisions (archetype, availability) must not.
  bool any_difference = a.contracts.size() != b.contracts.size();
  for (std::size_t i = 0;
       !any_difference && i < std::min(a.contracts.size(), b.contracts.size());
       ++i) {
    any_difference = a.contracts[i].archetype != b.contracts[i].archetype ||
                     a.contracts[i].has_source != b.contracts[i].has_source ||
                     a.contracts[i].has_tx != b.contracts[i].has_tx;
  }
  EXPECT_TRUE(any_difference);
}

TEST_F(PopulationTest, AllContractsHaveCodeOnChain) {
  auto& chain = *pop().chain;
  for (const DeployedContract& c : pop().contracts) {
    EXPECT_FALSE(chain.get_code(c.address).empty())
        << to_string(c.archetype);
  }
}

TEST_F(PopulationTest, AddressesAreUnique) {
  std::unordered_set<std::string> seen;
  for (const DeployedContract& c : pop().contracts) {
    EXPECT_TRUE(seen.insert(c.address.to_hex()).second);
  }
}

TEST_F(PopulationTest, AvailabilityRatiosMatchFigure2) {
  std::size_t with_source = 0, with_tx = 0, hidden = 0;
  for (const DeployedContract& c : pop().contracts) {
    if (c.has_source) ++with_source;
    if (c.has_tx) ++with_tx;
    if (!c.has_source && !c.has_tx) ++hidden;
  }
  const double n = static_cast<double>(pop().contracts.size());
  // Fig 2: <20% verified, ~53% with transactions, a large hidden mass.
  EXPECT_LT(with_source / n, 0.25);
  EXPECT_GT(with_source / n, 0.05);
  EXPECT_GT(with_tx / n, 0.35);
  EXPECT_LT(with_tx / n, 0.70);
  EXPECT_GT(hidden / n, 0.20);
}

TEST_F(PopulationTest, ProxyShareGrowsOverTheYears) {
  std::unordered_map<int, std::pair<int, int>> per_year;  // proxies, total
  for (const DeployedContract& c : pop().contracts) {
    auto& [proxies, total] = per_year[c.year];
    ++total;
    if (c.is_proxy_truth) ++proxies;
  }
  const auto share = [&](int year) {
    const auto [p, t] = per_year[year];
    return t == 0 ? 0.0 : static_cast<double>(p) / t;
  };
  EXPECT_LT(share(2016), 0.30);
  EXPECT_GT(share(2022), 0.80);  // "more than 93% of contracts deployed"
  EXPECT_GT(share(2023), 0.80);
}

TEST_F(PopulationTest, GroundTruthLogicDeployedForProxies) {
  auto& chain = *pop().chain;
  for (const DeployedContract& c : pop().contracts) {
    if (!c.is_proxy_truth || c.archetype == Archetype::kDiamondProxy) continue;
    EXPECT_FALSE(c.logic_truth.is_zero()) << to_string(c.archetype);
    EXPECT_FALSE(chain.get_code(c.logic_truth).empty());
  }
}

TEST_F(PopulationTest, MinimalCloneFamiliesShareBytecode) {
  std::unordered_map<std::string, int> code_counts;
  auto& chain = *pop().chain;
  for (const DeployedContract& c : pop().contracts) {
    if (c.archetype != Archetype::kMinimalProxy) continue;
    const auto code = chain.get_code(c.address);
    code_counts[proxion::crypto::to_hex(code)]++;
  }
  // The mega families produce heavily duplicated blobs (Fig 5 skew).
  int max_count = 0;
  for (const auto& [code, count] : code_counts) {
    max_count = std::max(max_count, count);
  }
  EXPECT_GE(max_count, 20);
}

TEST_F(PopulationTest, SpotCheckProxyDetectionOnGroundTruth) {
  auto& chain = *pop().chain;
  core::ProxyDetector detector(chain);
  int checked = 0;
  for (const DeployedContract& c : pop().contracts) {
    if (checked >= 60) break;
    if (c.archetype == Archetype::kDiamondProxy) continue;  // documented miss
    ++checked;
    const auto report = detector.analyze(c.address);
    EXPECT_EQ(report.is_proxy(), c.is_proxy_truth)
        << to_string(c.archetype) << " at " << c.address.to_hex();
  }
  EXPECT_GT(checked, 0);
}

TEST_F(PopulationTest, UpgradedProxiesRecordedInJournal) {
  auto& chain = *pop().chain;
  int upgraded = 0;
  for (const DeployedContract& c : pop().contracts) {
    if (c.upgrades_truth == 0) continue;
    ++upgraded;
    // Current logic visible in live storage via proxy detection semantics;
    // at minimum the truth logic's code exists.
    EXPECT_FALSE(chain.get_code(c.logic_truth).empty());
  }
  // With 1500 contracts and ~1% upgrade probability among slot proxies this
  // can legitimately be zero at tiny scales, but our mix makes it likely.
  SUCCEED();
}

TEST_F(PopulationTest, SweepInputsMatchRecords) {
  const auto inputs = pop().sweep_inputs();
  ASSERT_EQ(inputs.size(), pop().contracts.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(inputs[i].address, pop().contracts[i].address);
    EXPECT_EQ(inputs[i].year, pop().contracts[i].year);
    EXPECT_EQ(inputs[i].has_source, pop().contracts[i].has_source);
  }
}

TEST_F(PopulationTest, SourceRecordsPublishedForFlaggedContracts) {
  int with_source = 0;
  for (const DeployedContract& c : pop().contracts) {
    if (!c.has_source) continue;
    ++with_source;
    EXPECT_TRUE(pop().sources.has_source(c.address));
  }
  EXPECT_GT(with_source, 0);
}

TEST_F(PopulationTest, ArchetypeMixContainsAllKinds) {
  std::unordered_map<Archetype, int> counts;
  for (const DeployedContract& c : pop().contracts) {
    counts[c.archetype]++;
  }
  EXPECT_GT(counts[Archetype::kMinimalProxy], 0);
  EXPECT_GT(counts[Archetype::kToken], 0);
  EXPECT_GT(counts[Archetype::kWyvernCloneProxy], 0);
  EXPECT_GT(counts[Archetype::kCustomSlotProxy], 0);
  EXPECT_GT(counts[Archetype::kLibraryUser], 0);
}

}  // namespace
