// §2.3's collision grinder: correctness of the search, determinism, and the
// partial-match bound used to keep searches cheap.
#include <gtest/gtest.h>

#include "core/selector_grinder.h"
#include "crypto/eth.h"

namespace {

using namespace proxion::core;
using proxion::crypto::selector_u32;

TEST(SelectorGrinder, FindsPartialCollisionQuickly) {
  // 16 matching bits: expected ~65k attempts; bounded well above that.
  GrindConfig config;
  config.match_bits = 16;
  config.max_attempts = 3'000'000;
  const auto result = grind_selector(0xdf4a3106, config);
  ASSERT_TRUE(result.has_value());
  // The found prototype really hashes to the required prefix.
  const std::uint32_t found = selector_u32(result->prototype);
  EXPECT_EQ(found >> 16, 0xdf4au);
  EXPECT_TRUE(result->prototype.starts_with("impl_"));
  EXPECT_TRUE(result->prototype.ends_with("()"));
}

TEST(SelectorGrinder, TwentyBitCollisionMatchesTarget) {
  // 20 bits: expected ~1M hashes — a second or two; seed the target from a
  // known prototype. (A full 32-bit grind averages 2^32 hashes, the paper's
  // 600M-attempt / 1.5h experiment; bench_perf reports our hashes/second.)
  GrindConfig config;
  config.match_bits = 20;
  config.max_attempts = 30'000'000;
  const std::uint32_t target = selector_u32("transfer(address,uint256)");
  const auto result = grind_selector(target, config);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(selector_u32(result->prototype) >> 12, target >> 12);
  EXPECT_GT(result->attempts, 0u);
}

TEST(SelectorGrinder, Deterministic) {
  GrindConfig config;
  config.match_bits = 12;
  const auto a = grind_selector(0x12345678, config);
  const auto b = grind_selector(0x12345678, config);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->prototype, b->prototype);
  EXPECT_EQ(a->attempts, b->attempts);
}

TEST(SelectorGrinder, RespectsAttemptBudget) {
  GrindConfig config;
  config.match_bits = 32;
  config.max_attempts = 10;  // essentially guaranteed to miss
  EXPECT_EQ(grind_selector(0xdf4a3106, config), std::nullopt);
}

TEST(SelectorGrinder, PrefixAndArgumentsRespected) {
  GrindConfig config;
  config.match_bits = 8;
  config.prefix = "withdraw_";
  config.arguments = "(uint256)";
  const auto result = grind_selector(0xa9000000, config);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->prototype.starts_with("withdraw_"));
  EXPECT_TRUE(result->prototype.ends_with("(uint256)"));
  EXPECT_EQ(selector_u32(result->prototype) >> 24, 0xa9u);
}

TEST(SelectorGrinder, SuffixEnumerationIsInjective) {
  // Distinct attempts must test distinct prototypes: run a short search at
  // an impossible width and verify attempts == budget (no repeats skipped).
  GrindConfig config;
  config.match_bits = 32;
  config.max_attempts = 100;
  // (injectivity is implied by bijective base-62; this guards regressions
  // where suffix_for(0) == suffix_for(62) style bugs would silently halve
  // the search space)
  EXPECT_EQ(grind_selector(0x00000001, config), std::nullopt);
}

}  // namespace
