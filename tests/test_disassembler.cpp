// Linear-sweep disassembly: PUSH-data skipping, truncated pushes, JUMPDEST
// discovery, basic-block boundaries, and the PUSH4 candidate-selector sweep.
#include <gtest/gtest.h>

#include "crypto/keccak.h"
#include "datagen/assembler.h"
#include "datagen/contract_factory.h"
#include "evm/disassembler.h"

namespace {

using namespace proxion::evm;
using proxion::crypto::from_hex;
using proxion::datagen::Assembler;
using proxion::datagen::ContractFactory;

TEST(Disassembler, DecodesPushAndOperands) {
  const Bytes code = from_hex("608060405200");
  Disassembly dis(code);
  ASSERT_EQ(dis.instructions().size(), 4u);
  EXPECT_EQ(dis.instructions()[0].opcode(), Opcode::PUSH1);
  EXPECT_EQ(dis.instructions()[0].push_value(), U256{0x80});
  EXPECT_EQ(dis.instructions()[1].push_value(), U256{0x40});
  EXPECT_EQ(dis.instructions()[2].opcode(), Opcode::MSTORE);
  EXPECT_EQ(dis.instructions()[3].opcode(), Opcode::STOP);
}

TEST(Disassembler, PushDataIsNotDecodedAsInstructions) {
  // PUSH2 0x5b5b (two JUMPDEST bytes as data) then JUMPDEST.
  const Bytes code = from_hex("615b5b5b");
  Disassembly dis(code);
  ASSERT_EQ(dis.instructions().size(), 2u);
  EXPECT_EQ(dis.instructions()[0].opcode(), Opcode::PUSH2);
  EXPECT_EQ(dis.instructions()[1].opcode(), Opcode::JUMPDEST);
  // Only the real JUMPDEST at pc=3 is a valid target.
  EXPECT_FALSE(dis.is_jumpdest(1));
  EXPECT_FALSE(dis.is_jumpdest(2));
  EXPECT_TRUE(dis.is_jumpdest(3));
}

TEST(Disassembler, TruncatedPushAtEndOfCode) {
  // PUSH32 with only 2 payload bytes present.
  const Bytes code = from_hex("7fabcd");
  Disassembly dis(code);
  ASSERT_EQ(dis.instructions().size(), 1u);
  EXPECT_EQ(dis.instructions()[0].immediate.size(), 2u);
}

TEST(Disassembler, EmptyCode) {
  Disassembly dis(Bytes{});
  EXPECT_TRUE(dis.instructions().empty());
  EXPECT_TRUE(dis.blocks().empty());
}

TEST(Disassembler, ContainsFindsDelegatecall) {
  const Bytes with = from_hex("60005af4");
  const Bytes without = from_hex("60005af1");
  EXPECT_TRUE(Disassembly(with).contains(Opcode::DELEGATECALL));
  EXPECT_FALSE(Disassembly(without).contains(Opcode::DELEGATECALL));
}

TEST(Disassembler, DelegatecallByteInsidePushDataStillCounts) {
  // The prefilter is a *linear sweep*: 0xf4 inside push data is skipped, so
  // a contract hiding the byte in data is correctly NOT flagged.
  const Bytes code = from_hex("60f400");  // PUSH1 0xf4; STOP
  EXPECT_FALSE(Disassembly(code).contains(Opcode::DELEGATECALL));
}

TEST(Disassembler, Push4Values) {
  Assembler a;
  a.push_selector(0xdf4a3106);
  a.push(U256{0xaabb}, 2);  // PUSH2, ignored
  a.push_selector(0xdeadbeef);
  const Bytes code = a.assemble();
  const auto values = Disassembly(code).push4_values();
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0], 0xdf4a3106u);
  EXPECT_EQ(values[1], 0xdeadbeefu);
}

TEST(Disassembler, BlocksSplitAtJumpdestAndTerminators) {
  Assembler a;
  a.push(U256{1}, 1).push_label("target").op(Opcode::JUMPI);  // block 1
  a.op(Opcode::STOP);                                          // block 2
  a.jumpdest("target").op(Opcode::STOP);                       // block 3
  Disassembly dis(a.assemble());
  ASSERT_EQ(dis.blocks().size(), 3u);
  EXPECT_FALSE(dis.blocks()[0].starts_at_jumpdest);
  EXPECT_TRUE(dis.blocks()[2].starts_at_jumpdest);
  EXPECT_EQ(dis.blocks()[0].instruction_count, 3u);
}

TEST(Disassembler, InstructionAtMapsPcCorrectly) {
  const Bytes code = from_hex("6080604052");
  Disassembly dis(code);
  EXPECT_EQ(dis.instruction_at(0), std::optional<std::uint32_t>{0});
  EXPECT_EQ(dis.instruction_at(1), std::nullopt);  // inside push data
  EXPECT_EQ(dis.instruction_at(2), std::optional<std::uint32_t>{1});
  EXPECT_EQ(dis.instruction_at(4), std::optional<std::uint32_t>{2});
  EXPECT_EQ(dis.instruction_at(100), std::nullopt);
}

TEST(Disassembler, ToStringRendersMnemonicsAndImmediates) {
  const Bytes code = from_hex("6080f4");
  const std::string listing = Disassembly(code).to_string();
  EXPECT_NE(listing.find("PUSH1 0x80"), std::string::npos);
  EXPECT_NE(listing.find("DELEGATECALL"), std::string::npos);
}

TEST(Disassembler, UndefinedBytesAreMarked) {
  const Bytes code = from_hex("0c");  // unassigned opcode byte
  Disassembly dis(code);
  ASSERT_EQ(dis.instructions().size(), 1u);
  EXPECT_FALSE(dis.instructions()[0].info().defined);
}

TEST(Disassembler, MinimalProxyListing) {
  // The canonical EIP-1167 runtime disassembles to the expected shape:
  // CALLDATASIZE ... PUSH20 <addr> GAS DELEGATECALL ...
  const Address logic = Address::from_label("logic");
  const Bytes code = ContractFactory::minimal_proxy(logic);
  EXPECT_EQ(code.size(), 45u);
  Disassembly dis(code);
  EXPECT_EQ(dis.instructions()[0].opcode(), Opcode::CALLDATASIZE);
  EXPECT_TRUE(dis.contains(Opcode::DELEGATECALL));
  bool found_push20 = false;
  for (const auto& ins : dis.instructions()) {
    if (ins.opcode() == Opcode::PUSH20) {
      found_push20 = true;
      EXPECT_EQ(Address::from_word(ins.push_value()), logic);
    }
  }
  EXPECT_TRUE(found_push20);
}

TEST(Disassembler, OpcodeInfoTable) {
  EXPECT_EQ(opcode_info(Opcode::DELEGATECALL).mnemonic, "DELEGATECALL");
  EXPECT_EQ(opcode_info(Opcode::DELEGATECALL).stack_in, 6);
  EXPECT_EQ(opcode_info(Opcode::CALL).stack_in, 7);
  EXPECT_EQ(opcode_info(0x63).immediate_bytes, 4);  // PUSH4
  EXPECT_EQ(opcode_info(0x5f).immediate_bytes, 0);  // PUSH0
  EXPECT_EQ(opcode_info(0x8f).stack_in, 16);        // DUP16
  EXPECT_TRUE(is_push(0x5f));
  EXPECT_TRUE(is_push(0x7f));
  EXPECT_FALSE(is_push(0x80));
  EXPECT_EQ(push_size(0x63), 4);
  EXPECT_TRUE(is_call_family(0xf4));
  EXPECT_FALSE(is_call_family(0xf3));
  EXPECT_TRUE(is_terminator(0x00));
  EXPECT_TRUE(is_terminator(0xfd));
  EXPECT_FALSE(is_terminator(0x57));  // JUMPI falls through
}

}  // namespace
