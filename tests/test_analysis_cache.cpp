// The code-hash-keyed analysis cache: hit/miss accounting per artifact,
// cross-thread visibility (one compute, everyone shares the pointer), the
// striped once-map's in-flight dedup, and eviction-free determinism — the
// pipeline must produce bit-identical results with the cache on and off.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/analysis_cache.h"
#include "core/pipeline.h"
#include "core/selector_extractor.h"
#include "datagen/contract_factory.h"
#include "datagen/population.h"
#include "evm/types.h"

namespace {

using namespace proxion;
using core::AnalysisCache;
using core::StripedOnceMap;
using datagen::ContractFactory;
using evm::Bytes;

Bytes token_code() { return ContractFactory::token_contract(7); }

TEST(AnalysisCacheTest, DisassemblyHitMissAccounting) {
  AnalysisCache cache(8);
  const Bytes code = token_code();
  const crypto::Hash256 hash = evm::code_hash(code);

  const auto first = cache.disassembly(hash, code);
  auto s = cache.stats();
  EXPECT_EQ(s.disassembly_misses, 1u);
  EXPECT_EQ(s.disassembly_hits, 0u);
  EXPECT_EQ(s.entries, 1u);

  const auto second = cache.disassembly(hash, code);
  s = cache.stats();
  EXPECT_EQ(s.disassembly_misses, 1u);
  EXPECT_EQ(s.disassembly_hits, 1u);
  EXPECT_EQ(first.get(), second.get());  // the same shared artifact
}

TEST(AnalysisCacheTest, SelectorsAndProfileShareTheDisassembly) {
  AnalysisCache cache(8);
  const Bytes code = token_code();
  const crypto::Hash256 hash = evm::code_hash(code);

  const auto selectors = cache.selectors(hash, code);
  // Selector extraction computed the disassembly as a byproduct...
  auto s = cache.stats();
  EXPECT_EQ(s.selector_misses, 1u);
  EXPECT_EQ(s.disassembly_misses, 1u);

  // ...which the storage profile then reuses instead of re-sweeping.
  const auto profile = cache.storage_profile(hash, code);
  s = cache.stats();
  EXPECT_EQ(s.profile_misses, 1u);
  EXPECT_EQ(s.disassembly_misses, 1u);
  EXPECT_EQ(s.disassembly_hits, 1u);
  EXPECT_EQ(s.entries, 1u);

  // Artifacts match the uncached computations exactly.
  EXPECT_EQ(*selectors, core::extract_selectors(code));
  EXPECT_EQ(profile->accesses.size(), core::profile_storage(code).accesses.size());
}

TEST(AnalysisCacheTest, DistinctHashesGetDistinctEntries) {
  AnalysisCache cache(4);
  const Bytes a = ContractFactory::token_contract(1);
  const Bytes b = ContractFactory::token_contract(2);
  const auto dis_a = cache.disassembly(evm::code_hash(a), a);
  const auto dis_b = cache.disassembly(evm::code_hash(b), b);
  EXPECT_NE(dis_a.get(), dis_b.get());
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().disassembly_misses, 2u);
}

TEST(AnalysisCacheTest, SingleShardStillWorks) {
  AnalysisCache cache(1);
  const Bytes code = token_code();
  const crypto::Hash256 hash = evm::code_hash(code);
  EXPECT_FALSE(cache.selectors(hash, code)->empty());
  EXPECT_EQ(cache.shard_count(), 1u);
}

TEST(AnalysisCacheTest, CrossThreadVisibilityOneComputeManyReaders) {
  AnalysisCache cache(16);
  const Bytes code = token_code();
  const crypto::Hash256 hash = evm::code_hash(code);

  constexpr int kThreads = 8;
  std::vector<const void*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      seen[t] = cache.selectors(hash, code).get();
    });
  }
  for (auto& th : threads) th.join();

  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[t], seen[0]);  // everyone shares one artifact
  }
  const auto s = cache.stats();
  EXPECT_EQ(s.selector_misses, 1u);  // computed exactly once
  EXPECT_EQ(s.selector_hits, static_cast<std::uint64_t>(kThreads - 1));
}

TEST(StripedOnceMapTest, ComputesEachKeyExactlyOnce) {
  StripedOnceMap<std::string, int> map(4);
  std::atomic<int> computes{0};
  for (int round = 0; round < 5; ++round) {
    const int v = map.get_or_compute("k", [&] {
      computes.fetch_add(1);
      return 42;
    });
    EXPECT_EQ(v, 42);
  }
  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(map.hits(), 4u);
  EXPECT_EQ(map.misses(), 1u);
  EXPECT_EQ(map.size(), 1u);
}

TEST(StripedOnceMapTest, InFlightMarkerBlocksDuplicateWork) {
  // The Phase B race the seed had: two workers miss on the same pair key
  // and both run the expensive detectors. Here the second caller must wait
  // for the first compute instead of duplicating it.
  StripedOnceMap<std::string, int> map(4);
  std::atomic<int> computes{0};
  std::atomic<bool> inside{false};

  auto slow_compute = [&] {
    computes.fetch_add(1);
    inside.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    return 7;
  };

  std::thread first([&] { (void)map.get_or_compute("pair", slow_compute); });
  while (!inside.load()) std::this_thread::yield();
  // First thread is mid-compute; this call must wait and reuse its result.
  const int v = map.get_or_compute("pair", slow_compute);
  first.join();

  EXPECT_EQ(v, 7);
  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(map.waits(), 1u);
  EXPECT_EQ(map.hits(), 1u);
  EXPECT_EQ(map.misses(), 1u);
}

TEST(StripedOnceMapTest, FailedComputeIsRetriable) {
  StripedOnceMap<std::string, int> map(2);
  EXPECT_THROW(map.get_or_compute(
                   "k", [&]() -> int { throw std::runtime_error("nope"); }),
               std::runtime_error);
  // The marker was cleared; the next caller recomputes successfully.
  EXPECT_EQ(map.get_or_compute("k", [] { return 9; }), 9);
}

TEST(StripedOnceMapTest, ManyThreadsManyKeys) {
  StripedOnceMap<std::string, std::size_t> map(8);
  std::atomic<std::size_t> computes{0};
  constexpr int kThreads = 8;
  constexpr std::size_t kKeys = 64;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::size_t k = 0; k < kKeys; ++k) {
        const std::size_t v =
            map.get_or_compute("key" + std::to_string(k), [&] {
              computes.fetch_add(1);
              return k * 3;
            });
        EXPECT_EQ(v, k * 3);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(computes.load(), kKeys);  // once per key, never per thread
  EXPECT_EQ(map.size(), kKeys);
}

// ---- eviction-free determinism over a real population --------------------

TEST(AnalysisCacheTest, PipelineBitIdenticalWithCacheOnAndOff) {
  datagen::PopulationSpec spec;
  spec.total_contracts = 400;
  datagen::Population pop = datagen::PopulationGenerator().generate(spec);

  core::PipelineConfig cached;
  cached.use_analysis_cache = true;
  core::PipelineConfig uncached;
  uncached.use_analysis_cache = false;

  core::AnalysisPipeline p_on(*pop.chain, &pop.sources, cached);
  core::AnalysisPipeline p_off(*pop.chain, &pop.sources, uncached);
  const auto r_on = p_on.run(pop.sweep_inputs());
  const auto r_off = p_off.run(pop.sweep_inputs());

  ASSERT_EQ(r_on.size(), r_off.size());
  for (std::size_t i = 0; i < r_on.size(); ++i) {
    EXPECT_TRUE(r_on[i] == r_off[i]) << "contract " << i << " diverged";
  }

  // The cached run actually exercised the cache.
  ASSERT_NE(p_on.analysis_cache(), nullptr);
  EXPECT_GT(p_on.analysis_cache()->stats().hits(), 0u);
  EXPECT_EQ(p_off.analysis_cache(), nullptr);
}

TEST(AnalysisCacheTest, WarmRerunIsBitIdenticalAndServedFromCache) {
  datagen::PopulationSpec spec;
  spec.total_contracts = 300;
  datagen::Population pop = datagen::PopulationGenerator().generate(spec);

  core::AnalysisPipeline pipeline(*pop.chain, &pop.sources);
  const auto cold = pipeline.run(pop.sweep_inputs());
  const auto cold_misses = pipeline.analysis_cache()->stats().misses();
  const auto warm = pipeline.run(pop.sweep_inputs());
  const auto warm_misses =
      pipeline.analysis_cache()->stats().misses() - cold_misses;

  ASSERT_EQ(cold.size(), warm.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_TRUE(cold[i] == warm[i]) << "contract " << i << " diverged";
  }
  // Warm sweep recomputed nothing: every artifact lookup hit.
  EXPECT_EQ(warm_misses, 0u);
}

}  // namespace
