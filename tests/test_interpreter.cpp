// EVM interpreter semantics: arithmetic dispatch, memory, storage, control
// flow, environment opcodes, the call family (incl. DELEGATECALL context
// rules, which all of Proxion hinges on), CREATE/CREATE2, guest-fault
// containment, and gas/step fuses.
#include <gtest/gtest.h>

#include "crypto/eth.h"
#include "crypto/keccak.h"
#include "datagen/assembler.h"
#include "evm/host.h"
#include "evm/interpreter.h"

namespace {

using namespace proxion::evm;
using proxion::crypto::from_hex;
using proxion::datagen::Assembler;

class InterpreterTest : public ::testing::Test {
 protected:
  ExecResult run(const Bytes& code, Bytes calldata = {}, U256 value = {}) {
    host_.set_code(contract_, code);
    Interpreter interp(host_);
    CallParams params;
    params.code_address = contract_;
    params.storage_address = contract_;
    params.caller = caller_;
    params.origin = caller_;
    params.calldata = std::move(calldata);
    params.value = value;
    return interp.execute(params);
  }

  /// Assembles "push a; push b; <op>; mstore at 0; return 32 bytes" and
  /// returns the 32-byte result as U256. Operand `a` ends up on top.
  U256 binop(Opcode op, const U256& a, const U256& b) {
    Assembler asm_;
    asm_.push(b.is_zero() ? U256{0} : b, 32);
    asm_.push(a.is_zero() ? U256{0} : a, 32);
    asm_.op(op);
    asm_.push(U256{0}, 1).op(Opcode::MSTORE);
    asm_.push(U256{32}, 1).push(U256{0}, 1).op(Opcode::RETURN);
    const ExecResult r = run(asm_.assemble());
    EXPECT_EQ(r.halt, HaltReason::kReturn);
    EXPECT_EQ(r.return_data.size(), 32u);
    return U256::from_be_slice(r.return_data);
  }

  MemoryHost host_;
  Address contract_ = Address::from_label("contract");
  Address caller_ = Address::from_label("caller");
};

TEST_F(InterpreterTest, StopAndImplicitStop) {
  EXPECT_EQ(run(from_hex("00")).halt, HaltReason::kStop);
  EXPECT_EQ(run(from_hex("6001")).halt, HaltReason::kStop);  // run off end
}

TEST_F(InterpreterTest, ArithmeticOpcodes) {
  EXPECT_EQ(binop(Opcode::ADD, U256{2}, U256{3}), U256{5});
  EXPECT_EQ(binop(Opcode::SUB, U256{7}, U256{3}), U256{4});  // a - b, a on top
  EXPECT_EQ(binop(Opcode::MUL, U256{6}, U256{7}), U256{42});
  EXPECT_EQ(binop(Opcode::DIV, U256{42}, U256{5}), U256{8});
  EXPECT_EQ(binop(Opcode::DIV, U256{42}, U256{0}), U256{0});
  EXPECT_EQ(binop(Opcode::MOD, U256{42}, U256{5}), U256{2});
  EXPECT_EQ(binop(Opcode::EXP, U256{2}, U256{8}), U256{256});
  EXPECT_EQ(binop(Opcode::SDIV, U256{} - U256{8}, U256{2}), U256{} - U256{4});
  EXPECT_EQ(binop(Opcode::SIGNEXTEND, U256{0}, U256{0xff}), ~U256{});
}

TEST_F(InterpreterTest, ComparisonOpcodes) {
  EXPECT_EQ(binop(Opcode::LT, U256{1}, U256{2}), U256{1});
  EXPECT_EQ(binop(Opcode::LT, U256{2}, U256{1}), U256{0});
  EXPECT_EQ(binop(Opcode::GT, U256{2}, U256{1}), U256{1});
  EXPECT_EQ(binop(Opcode::EQ, U256{5}, U256{5}), U256{1});
  EXPECT_EQ(binop(Opcode::SLT, U256{} - U256{1}, U256{0}), U256{1});
  EXPECT_EQ(binop(Opcode::SGT, U256{} - U256{1}, U256{0}), U256{0});
}

TEST_F(InterpreterTest, BitwiseAndShifts) {
  EXPECT_EQ(binop(Opcode::AND, U256{0xf0f0}, U256{0xff00}), U256{0xf000});
  EXPECT_EQ(binop(Opcode::OR, U256{0xf0}, U256{0x0f}), U256{0xff});
  EXPECT_EQ(binop(Opcode::XOR, U256{0xff}, U256{0x0f}), U256{0xf0});
  // SHL/SHR take the shift amount on top.
  EXPECT_EQ(binop(Opcode::SHL, U256{4}, U256{1}), U256{16});
  EXPECT_EQ(binop(Opcode::SHR, U256{4}, U256{16}), U256{1});
  EXPECT_EQ(binop(Opcode::BYTE, U256{31}, U256{0xab}), U256{0xab});
}

TEST_F(InterpreterTest, MemoryStoreLoadRoundTrip) {
  Assembler a;
  a.push(U256{0x1234}, 2).push(U256{0x40}, 1).op(Opcode::MSTORE);
  a.push(U256{0x40}, 1).op(Opcode::MLOAD);
  a.push(U256{0}, 1).op(Opcode::MSTORE);
  a.push(U256{32}, 1).push(U256{0}, 1).op(Opcode::RETURN);
  const ExecResult r = run(a.assemble());
  EXPECT_EQ(U256::from_be_slice(r.return_data), U256{0x1234});
}

TEST_F(InterpreterTest, Mstore8WritesSingleByte) {
  Assembler a;
  a.push(U256{0xffee}, 2).push(U256{0}, 1).op(Opcode::MSTORE8);  // low byte only
  a.push(U256{32}, 1).push(U256{0}, 1).op(Opcode::RETURN);
  const ExecResult r = run(a.assemble());
  EXPECT_EQ(r.return_data[0], 0xee);
  EXPECT_EQ(r.return_data[1], 0x00);
}

TEST_F(InterpreterTest, StorageRoundTripAndHostVisibility) {
  Assembler a;
  a.push(U256{0xbeef}, 2).push(U256{5}, 1).op(Opcode::SSTORE);
  a.push(U256{5}, 1).op(Opcode::SLOAD);
  a.push(U256{0}, 1).op(Opcode::MSTORE);
  a.push(U256{32}, 1).push(U256{0}, 1).op(Opcode::RETURN);
  const ExecResult r = run(a.assemble());
  EXPECT_EQ(U256::from_be_slice(r.return_data), U256{0xbeef});
  EXPECT_EQ(host_.get_storage(contract_, U256{5}), U256{0xbeef});
}

TEST_F(InterpreterTest, JumpAndJumpi) {
  Assembler a;
  a.push(U256{1}, 1).push_label("skip").op(Opcode::JUMPI);
  a.push(U256{0xbad}, 2).push(U256{0}, 1).op(Opcode::MSTORE);
  a.jumpdest("skip");
  a.push(U256{32}, 1).push(U256{0}, 1).op(Opcode::RETURN);
  const ExecResult r = run(a.assemble());
  EXPECT_EQ(U256::from_be_slice(r.return_data), U256{});  // skipped the store
}

TEST_F(InterpreterTest, JumpToNonJumpdestFaults) {
  const Bytes code = from_hex("600456");  // JUMP to pc 4 (no JUMPDEST)
  EXPECT_EQ(run(code).halt, HaltReason::kBadJumpDestination);
}

TEST_F(InterpreterTest, JumpIntoPushDataFaults) {
  // PUSH2 0x5b5b puts JUMPDEST bytes at pcs 1-2 as *data*; jumping there
  // must fault (classic disassembler-confusion attack).
  const Bytes code = from_hex("615b5b600156");
  EXPECT_EQ(run(code).halt, HaltReason::kBadJumpDestination);
}

TEST_F(InterpreterTest, StackUnderflowContained) {
  EXPECT_EQ(run(from_hex("01")).halt, HaltReason::kStackUnderflow);  // ADD on empty
}

TEST_F(InterpreterTest, StackOverflowContained) {
  // PUSH1 0; JUMPDEST at 2... simpler: unroll via loop of DUPs.
  Assembler a;
  a.push(U256{1}, 1);
  a.jumpdest("loop");
  a.op(Opcode::DUP1);
  a.push_label("loop").op(Opcode::JUMP);
  EXPECT_EQ(run(a.assemble()).halt, HaltReason::kStackOverflow);
}

TEST_F(InterpreterTest, InvalidOpcodeContained) {
  EXPECT_EQ(run(from_hex("fe")).halt, HaltReason::kInvalidOpcode);
  EXPECT_EQ(run(from_hex("0c")).halt, HaltReason::kInvalidOpcode);  // undefined
}

TEST_F(InterpreterTest, InfiniteLoopHitsStepLimit) {
  Assembler a;
  a.jumpdest("loop");
  a.push_label("loop").op(Opcode::JUMP);
  host_.set_code(contract_, a.assemble());
  InterpreterConfig config;
  config.step_limit = 1000;
  config.charge_gas = false;
  Interpreter interp(host_, config);
  CallParams params;
  params.code_address = contract_;
  params.storage_address = contract_;
  const ExecResult r = interp.execute(params);
  EXPECT_EQ(r.halt, HaltReason::kStepLimit);
}

TEST_F(InterpreterTest, OutOfGasOnTightBudget) {
  Assembler a;
  a.jumpdest("loop");
  a.push_label("loop").op(Opcode::JUMP);
  host_.set_code(contract_, a.assemble());
  Interpreter interp(host_);
  CallParams params;
  params.code_address = contract_;
  params.storage_address = contract_;
  params.gas = 500;
  const ExecResult r = interp.execute(params);
  EXPECT_EQ(r.halt, HaltReason::kOutOfGas);
  EXPECT_LE(r.gas_used, 510u);
}

TEST_F(InterpreterTest, CalldataOpcodes) {
  Assembler a;
  a.push(U256{0}, 1).op(Opcode::CALLDATALOAD);
  a.push(U256{0}, 1).op(Opcode::MSTORE);
  a.op(Opcode::CALLDATASIZE);
  a.push(U256{0x20}, 1).op(Opcode::MSTORE);
  a.push(U256{0x40}, 1).push(U256{0}, 1).op(Opcode::RETURN);
  Bytes calldata = from_hex("a9059cbb000000000000000000000000000000000000000000000000000000000000002a");
  const ExecResult r = run(a.assemble(), calldata);
  // First word: selector left-aligned.
  EXPECT_EQ(r.return_data[0], 0xa9);
  EXPECT_EQ(r.return_data[3], 0xbb);
  // Second word: calldatasize = 36.
  EXPECT_EQ(U256::from_be_slice(BytesView(r.return_data).subspan(32)),
            U256{36});
}

TEST_F(InterpreterTest, CalldataloadBeyondEndZeroPads) {
  Assembler a;
  a.push(U256{100}, 1).op(Opcode::CALLDATALOAD);
  a.push(U256{0}, 1).op(Opcode::MSTORE);
  a.push(U256{32}, 1).push(U256{0}, 1).op(Opcode::RETURN);
  const ExecResult r = run(a.assemble(), from_hex("aabb"));
  EXPECT_EQ(U256::from_be_slice(r.return_data), U256{});
}

TEST_F(InterpreterTest, EnvironmentOpcodes) {
  Assembler a;
  a.op(Opcode::CALLER).push(U256{0}, 1).op(Opcode::MSTORE);
  a.op(Opcode::ADDRESS).push(U256{0x20}, 1).op(Opcode::MSTORE);
  a.op(Opcode::CALLVALUE).push(U256{0x40}, 1).op(Opcode::MSTORE);
  a.op(Opcode::CHAINID).push(U256{0x60}, 1).op(Opcode::MSTORE);
  a.push(U256{0x80}, 1).push(U256{0}, 1).op(Opcode::RETURN);
  const ExecResult r = run(a.assemble(), {}, U256{77});
  const BytesView out(r.return_data);
  EXPECT_EQ(U256::from_be_slice(out.subspan(0, 32)), caller_.to_word());
  EXPECT_EQ(U256::from_be_slice(out.subspan(32, 32)), contract_.to_word());
  EXPECT_EQ(U256::from_be_slice(out.subspan(64, 32)), U256{77});
  EXPECT_EQ(U256::from_be_slice(out.subspan(96, 32)), U256{1});  // mainnet
}

TEST_F(InterpreterTest, Keccak256Opcode) {
  Assembler a;
  // keccak256("") == keccak of empty memory range
  a.push(U256{0}, 1).push(U256{0}, 1).op(Opcode::KECCAK256);
  a.push(U256{0}, 1).op(Opcode::MSTORE);
  a.push(U256{32}, 1).push(U256{0}, 1).op(Opcode::RETURN);
  const ExecResult r = run(a.assemble());
  EXPECT_EQ(U256::from_be_slice(r.return_data),
            to_u256(proxion::crypto::keccak256("")));
}

TEST_F(InterpreterTest, RevertReturnsData) {
  Assembler a;
  a.push(U256{0xdead}, 2).push(U256{0}, 1).op(Opcode::MSTORE);
  a.push(U256{32}, 1).push(U256{0}, 1).op(Opcode::REVERT);
  const ExecResult r = run(a.assemble());
  EXPECT_EQ(r.halt, HaltReason::kRevert);
  EXPECT_FALSE(r.success());
  EXPECT_EQ(U256::from_be_slice(r.return_data), U256{0xdead});
}

TEST_F(InterpreterTest, LogsAreRecorded) {
  Assembler a;
  a.push(U256{0xabc}, 2).push(U256{0}, 1).op(Opcode::MSTORE);
  a.push(U256{7}, 1);                       // topic
  a.push(U256{32}, 1).push(U256{0}, 1);     // size, offset
  a.op(Opcode::LOG1);
  a.op(Opcode::STOP);
  const ExecResult r = run(a.assemble());
  ASSERT_EQ(r.logs.size(), 1u);
  EXPECT_EQ(r.logs[0].topics.size(), 1u);
  EXPECT_EQ(r.logs[0].topics[0], U256{7});
  EXPECT_EQ(U256::from_be_slice(r.logs[0].data), U256{0xabc});
}

// ---- call family -----------------------------------------------------------

class CallTest : public InterpreterTest {
 protected:
  Address callee_ = Address::from_label("callee");

  /// Callee that stores CALLER at slot 0, CALLVALUE at slot 1, then returns
  /// the 32-byte word 0x99.
  Bytes context_reporter() {
    Assembler a;
    a.op(Opcode::CALLER).push(U256{0}, 1).op(Opcode::SSTORE);
    a.op(Opcode::CALLVALUE).push(U256{1}, 1).op(Opcode::SSTORE);
    a.push(U256{0x99}, 1).push(U256{0}, 1).op(Opcode::MSTORE);
    a.push(U256{32}, 1).push(U256{0}, 1).op(Opcode::RETURN);
    return a.assemble();
  }

  /// Caller code performing `kind` to callee_ with 4 bytes of calldata, then
  /// returning the call's returndata.
  Bytes call_wrapper(Opcode kind, U256 value = {}) {
    Assembler a;
    a.push(U256{0xdeadbeef}, 4).push(U256{0xe0}, 1).op(Opcode::SHL);
    a.push(U256{0}, 1).op(Opcode::MSTORE);  // mem[0..4) = 0xdeadbeef
    a.push(U256{0}, 1);                     // retSize
    a.push(U256{0}, 1);                     // retOffset
    a.push(U256{4}, 1);                     // argsSize
    a.push(U256{0}, 1);                     // argsOffset
    if (kind == Opcode::CALL || kind == Opcode::CALLCODE) {
      a.push(value.is_zero() ? U256{0} : value);  // value
    }
    a.push_address(callee_);
    a.op(Opcode::GAS);
    a.op(kind);
    a.op(Opcode::POP);
    a.op(Opcode::RETURNDATASIZE).push(U256{0}, 1).push(U256{0}, 1)
        .op(Opcode::RETURNDATACOPY);
    a.op(Opcode::RETURNDATASIZE).push(U256{0}, 1).op(Opcode::RETURN);
    return a.assemble();
  }
};

TEST_F(CallTest, PlainCallSwitchesStorageContext) {
  host_.set_code(callee_, context_reporter());
  const ExecResult r = run(call_wrapper(Opcode::CALL));
  EXPECT_EQ(r.halt, HaltReason::kReturn);
  EXPECT_EQ(U256::from_be_slice(r.return_data), U256{0x99});
  // CALL: callee's storage written, caller seen = our contract.
  EXPECT_EQ(host_.get_storage(callee_, U256{0}), contract_.to_word());
  EXPECT_EQ(host_.get_storage(contract_, U256{0}), U256{});
}

TEST_F(CallTest, DelegatecallKeepsStorageCallerAndValue) {
  host_.set_code(callee_, context_reporter());
  const ExecResult r = run(call_wrapper(Opcode::DELEGATECALL), {}, U256{55});
  EXPECT_EQ(r.halt, HaltReason::kReturn);
  // DELEGATECALL: *our* storage written; caller = the original caller;
  // value = our frame's value. This is the proxy-pattern cornerstone (§2.2).
  EXPECT_EQ(host_.get_storage(contract_, U256{0}), caller_.to_word());
  EXPECT_EQ(host_.get_storage(contract_, U256{1}), U256{55});
  EXPECT_EQ(host_.get_storage(callee_, U256{0}), U256{});
}

TEST_F(CallTest, CallcodeKeepsStorageButChangesCaller) {
  host_.set_code(callee_, context_reporter());
  const ExecResult r = run(call_wrapper(Opcode::CALLCODE));
  EXPECT_EQ(r.halt, HaltReason::kReturn);
  EXPECT_EQ(host_.get_storage(contract_, U256{0}), contract_.to_word());
}

TEST_F(CallTest, StaticcallBlocksStateChanges) {
  host_.set_code(callee_, context_reporter());  // does SSTORE -> must fail
  const ExecResult r = run(call_wrapper(Opcode::STATICCALL));
  // The outer frame succeeds; the inner static frame fails, returndata empty.
  EXPECT_EQ(r.halt, HaltReason::kReturn);
  EXPECT_TRUE(r.return_data.empty());
  EXPECT_EQ(host_.get_storage(callee_, U256{0}), U256{});
}

TEST_F(CallTest, CallValueTransfersBalance) {
  host_.set_code(callee_, context_reporter());
  host_.set_balance(contract_, U256{100});
  const ExecResult r = run(call_wrapper(Opcode::CALL, U256{40}));
  EXPECT_EQ(r.halt, HaltReason::kReturn);
  EXPECT_EQ(host_.get_balance(contract_), U256{60});
  EXPECT_EQ(host_.get_balance(callee_), U256{40});
  EXPECT_EQ(host_.get_storage(callee_, U256{1}), U256{40});
}

TEST_F(CallTest, CallWithInsufficientBalanceFails) {
  host_.set_code(callee_, context_reporter());
  host_.set_balance(contract_, U256{10});
  const ExecResult r = run(call_wrapper(Opcode::CALL, U256{40}));
  EXPECT_EQ(r.halt, HaltReason::kReturn);
  EXPECT_TRUE(r.return_data.empty());  // inner call failed -> no returndata
  EXPECT_EQ(host_.get_balance(callee_), U256{});
}

TEST_F(CallTest, CallToEmptyAccountSucceedsTrivially) {
  const ExecResult r = run(call_wrapper(Opcode::CALL));
  EXPECT_EQ(r.halt, HaltReason::kReturn);
  EXPECT_TRUE(r.return_data.empty());
}

TEST_F(CallTest, CalleeRevertPropagatesReturndataButNotState) {
  Assembler rev;
  rev.push(U256{0x1badbad}, 4).push(U256{0}, 1).op(Opcode::MSTORE);
  rev.push(U256{32}, 1).push(U256{0}, 1).op(Opcode::REVERT);
  host_.set_code(callee_, rev.assemble());
  const ExecResult r = run(call_wrapper(Opcode::CALL));
  EXPECT_EQ(r.halt, HaltReason::kReturn);
  EXPECT_EQ(U256::from_be_slice(r.return_data), U256{0x1badbad});
}

TEST_F(CallTest, ObserverSeesDelegatecallWithForwardedCalldata) {
  struct Watcher final : TraceObserver {
    CallKind kind = CallKind::kCall;
    Bytes calldata;
    Address to;
    int calls = 0;
    void on_call(CallKind k, int depth, const Address&, const Address& target,
                 BytesView data) override {
      if (depth == 0) return;
      ++calls;
      kind = k;
      to = target;
      calldata.assign(data.begin(), data.end());
    }
  };
  host_.set_code(callee_, context_reporter());
  host_.set_code(contract_, call_wrapper(Opcode::DELEGATECALL));
  Watcher watcher;
  Interpreter interp(host_);
  interp.set_observer(&watcher);
  CallParams params;
  params.code_address = contract_;
  params.storage_address = contract_;
  params.caller = caller_;
  interp.execute(params);
  EXPECT_EQ(watcher.calls, 1);
  EXPECT_EQ(watcher.kind, CallKind::kDelegateCall);
  EXPECT_EQ(watcher.to, callee_);
  EXPECT_EQ(watcher.calldata, from_hex("deadbeef"));
}

// ---- CREATE family -----------------------------------------------------------

TEST_F(InterpreterTest, CreateDeploysRuntimeCode) {
  // init code: returns 2 bytes of runtime ("60ff" => PUSH1 0xff).
  // runtime placed via CODECOPY from offset 10.
  Assembler init;
  init.push(U256{2}, 1).push_label("rt").push(U256{0}, 1).op(Opcode::CODECOPY);
  init.push(U256{2}, 1).push(U256{0}, 1).op(Opcode::RETURN);
  init.label("rt").raw(from_hex("60ff"));
  const Bytes init_code = init.assemble();

  // deployer: CODECOPY the init code blob into memory, CREATE, store result.
  Assembler a;
  a.push(U256{init_code.size()}, 2).push_label("blob").push(U256{0}, 1)
      .op(Opcode::CODECOPY);
  a.push(U256{init_code.size()}, 2).push(U256{0}, 1).push(U256{0}, 1)
      .op(Opcode::CREATE);
  a.push(U256{0}, 1).op(Opcode::MSTORE);
  a.push(U256{32}, 1).push(U256{0}, 1).op(Opcode::RETURN);
  a.label("blob").raw(init_code);

  const ExecResult r = run(a.assemble());
  ASSERT_EQ(r.halt, HaltReason::kReturn);
  const Address created = Address::from_word(U256::from_be_slice(r.return_data));
  EXPECT_FALSE(created.is_zero());
  EXPECT_EQ(host_.get_code(created), from_hex("60ff"));

  // Address must follow the CREATE derivation from (contract, nonce 0).
  proxion::crypto::AddressBytes sender{};
  std::copy(contract_.bytes.begin(), contract_.bytes.end(), sender.begin());
  EXPECT_EQ(created.bytes, proxion::crypto::create_address(sender, 0));
}

TEST_F(InterpreterTest, Create2AddressIsSaltDeterministic) {
  Assembler init;
  init.push(U256{1}, 1).push_label("rt").push(U256{0}, 1).op(Opcode::CODECOPY);
  init.push(U256{1}, 1).push(U256{0}, 1).op(Opcode::RETURN);
  init.label("rt").raw(from_hex("00"));
  const Bytes init_code = init.assemble();

  Assembler a;
  a.push(U256{init_code.size()}, 2).push_label("blob").push(U256{0}, 1)
      .op(Opcode::CODECOPY);
  a.push(U256{0x5a17}, 2);  // salt
  a.push(U256{init_code.size()}, 2).push(U256{0}, 1).push(U256{0}, 1)
      .op(Opcode::CREATE2);
  a.push(U256{0}, 1).op(Opcode::MSTORE);
  a.push(U256{32}, 1).push(U256{0}, 1).op(Opcode::RETURN);
  a.label("blob").raw(init_code);

  const ExecResult r = run(a.assemble());
  ASSERT_EQ(r.halt, HaltReason::kReturn);
  const Address created = Address::from_word(U256::from_be_slice(r.return_data));

  proxion::crypto::AddressBytes sender{};
  std::copy(contract_.bytes.begin(), contract_.bytes.end(), sender.begin());
  EXPECT_EQ(created.bytes,
            proxion::crypto::create2_address(sender, U256{0x5a17}.to_be_bytes(),
                                             init_code));
}

TEST_F(InterpreterTest, RevertingInitCodePushesZero) {
  Assembler a;
  // init code = "fd" won't even get that far: empty init that REVERTs.
  a.push(U256{1}, 1).push_label("blob").push(U256{0}, 1).op(Opcode::CODECOPY);
  a.push(U256{1}, 1).push(U256{0}, 1).push(U256{0}, 1).op(Opcode::CREATE);
  a.push(U256{0}, 1).op(Opcode::MSTORE);
  a.push(U256{32}, 1).push(U256{0}, 1).op(Opcode::RETURN);
  a.label("blob").raw(from_hex("fd"));  // instant REVERT... actually INVALID-free
  const ExecResult r = run(a.assemble());
  ASSERT_EQ(r.halt, HaltReason::kReturn);
  EXPECT_EQ(U256::from_be_slice(r.return_data), U256{});
}

TEST_F(InterpreterTest, SelfdestructTransfersBalance) {
  Assembler a;
  a.push_address(caller_);
  a.op(Opcode::SELFDESTRUCT);
  host_.set_balance(contract_, U256{123});
  const ExecResult r = run(a.assemble());
  EXPECT_EQ(r.halt, HaltReason::kSelfDestruct);
  EXPECT_TRUE(r.success());
  EXPECT_EQ(host_.get_balance(caller_), U256{123});
  EXPECT_EQ(host_.get_balance(contract_), U256{});
}

TEST_F(InterpreterTest, OverlayHostIsolatesWrites) {
  MemoryHost base;
  base.set_storage(contract_, U256{0}, U256{42});
  OverlayHost overlay(base);
  EXPECT_EQ(overlay.get_storage(contract_, U256{0}), U256{42});
  overlay.set_storage(contract_, U256{0}, U256{99});
  EXPECT_EQ(overlay.get_storage(contract_, U256{0}), U256{99});
  EXPECT_EQ(base.get_storage(contract_, U256{0}), U256{42});  // untouched
  ASSERT_NE(overlay.written_slots(contract_), nullptr);
  EXPECT_EQ(overlay.written_slots(contract_)->at(U256{0}), U256{99});
}

}  // namespace
