// Function-collision (§5.1) and storage-collision (§5.2) detection over the
// paper's own examples: the honeypot pair (Listing 1), the Audius pair
// (Listing 2), the Wyvern inheritance family (§7.2), plus negative cases.
#include <gtest/gtest.h>

#include "chain/blockchain.h"
#include "core/function_collision.h"
#include "core/storage_collision.h"
#include "crypto/eth.h"
#include "datagen/contract_factory.h"
#include "sourcemeta/source.h"

namespace {

using namespace proxion;
using namespace proxion::core;
using chain::Blockchain;
using datagen::BodyKind;
using datagen::ContractFactory;
using evm::Bytes;
using evm::U256;

class CollisionTest : public ::testing::Test {
 protected:
  Address deploy(Bytes code) { return chain_.deploy_runtime(user_, code); }

  Blockchain chain_;
  Address user_ = Address::from_label("collision.user");
};

// ---- function collisions ---------------------------------------------------

TEST_F(CollisionTest, HoneypotPairCollidesInBytecodeMode) {
  const std::uint32_t lure = crypto::selector_u32("free_ether_withdrawal()");
  const Address logic = deploy(ContractFactory::honeypot_logic(lure));
  const Address proxy =
      deploy(ContractFactory::honeypot_proxy(U256{1}, lure));

  FunctionCollisionDetector detector;  // no source repository at all
  const auto result = detector.detect(proxy, chain_.get_code(proxy), logic,
                                      chain_.get_code(logic));
  EXPECT_EQ(result.mode, CollisionMode::kBytecodeBytecode);
  ASSERT_TRUE(result.has_collision());
  EXPECT_EQ(result.colliding_selectors.size(), 1u);
  EXPECT_EQ(result.colliding_selectors[0], lure);  // 0xdf4a3106 (§2.3)
}

TEST_F(CollisionTest, DisjointSelectorsDoNotCollide) {
  const Address proxy = deploy(ContractFactory::slot_proxy(
      U256{0}, {{.prototype = "admin()",
                 .body = BodyKind::kReturnStorageAddress,
                 .slot = U256{1}}}));
  const Address logic = deploy(ContractFactory::token_contract(1));
  FunctionCollisionDetector detector;
  const auto result = detector.detect(proxy, chain_.get_code(proxy), logic,
                                      chain_.get_code(logic));
  EXPECT_FALSE(result.has_collision());
  EXPECT_EQ(result.proxy_selectors.size(), 1u);
  EXPECT_EQ(result.logic_selectors.size(), 4u);
}

TEST_F(CollisionTest, SourceModeUsedWhenBothVerified) {
  const std::uint32_t lure = crypto::selector_u32("free_ether_withdrawal()");
  const Address logic = deploy(ContractFactory::honeypot_logic(lure));
  const Address proxy = deploy(ContractFactory::honeypot_proxy(U256{1}, lure));

  sourcemeta::SourceRepository sources;
  sourcemeta::SourceRecord proxy_src;
  proxy_src.functions = {{.prototype = "impl_LUsXCWD2AKCc()"},
                         {.prototype = "owner()"}};
  sources.publish(proxy, proxy_src);
  sourcemeta::SourceRecord logic_src;
  logic_src.functions = {{.prototype = "free_ether_withdrawal()"}};
  sources.publish(logic, logic_src);

  FunctionCollisionDetector detector(&sources);
  const auto result = detector.detect(proxy, chain_.get_code(proxy), logic,
                                      chain_.get_code(logic));
  EXPECT_EQ(result.mode, CollisionMode::kSourceSource);
  // Listing 1: impl_LUsXCWD2AKCc() and free_ether_withdrawal() share
  // selector 0xdf4a3106.
  ASSERT_TRUE(result.has_collision());
  EXPECT_EQ(result.colliding_selectors[0], 0xdf4a3106u);
}

TEST_F(CollisionTest, MixedModeWhenOnlyOneSideHasSource) {
  const std::uint32_t lure = crypto::selector_u32("free_ether_withdrawal()");
  const Address logic = deploy(ContractFactory::honeypot_logic(lure));
  const Address proxy = deploy(ContractFactory::honeypot_proxy(U256{1}, lure));

  sourcemeta::SourceRepository sources;
  sourcemeta::SourceRecord logic_src;
  logic_src.functions = {{.prototype = "free_ether_withdrawal()"}};
  sources.publish(logic, logic_src);

  FunctionCollisionDetector detector(&sources);
  const auto result = detector.detect(proxy, chain_.get_code(proxy), logic,
                                      chain_.get_code(logic));
  EXPECT_EQ(result.mode, CollisionMode::kMixed);
  EXPECT_TRUE(result.has_collision());
}

TEST_F(CollisionTest, WyvernInheritanceFamilyCollidesOnThreeSelectors) {
  // §7.2: proxyType()/implementation()/upgradeabilityOwner() appear on both
  // sides of the OwnableDelegateProxy family.
  const std::vector<datagen::FunctionSpec> shared = {
      {.prototype = "proxyType()", .body = BodyKind::kReturnConstant,
       .aux = U256{2}},
      {.prototype = "implementation()",
       .body = BodyKind::kReturnStorageAddress, .slot = U256{2}},
      {.prototype = "upgradeabilityOwner()",
       .body = BodyKind::kReturnStorageAddress, .slot = U256{0}},
  };
  const Address proxy = deploy(ContractFactory::slot_proxy(U256{2}, shared));
  auto logic_funcs = shared;
  logic_funcs.push_back({.prototype = "user()",
                         .body = BodyKind::kReturnStorageAddress,
                         .slot = U256{3}});
  const Address logic = deploy(ContractFactory::plain_contract(logic_funcs));

  FunctionCollisionDetector detector;
  const auto result = detector.detect(proxy, chain_.get_code(proxy), logic,
                                      chain_.get_code(logic));
  EXPECT_EQ(result.colliding_selectors.size(), 3u);
}

// ---- storage collisions ----------------------------------------------------

TEST_F(CollisionTest, AudiusPairDetectedAndExploitVerified) {
  const Address logic = deploy(ContractFactory::audius_style_logic());
  const Address proxy = deploy(ContractFactory::audius_style_proxy());
  chain_.set_storage(proxy, U256{1}, logic.to_word());
  chain_.set_storage(proxy, U256{0},
                     Address::from_label("legit.owner").to_word());

  StorageCollisionDetector detector(chain_);
  const auto result = detector.detect(proxy, chain_.get_code(proxy), logic,
                                      chain_.get_code(logic));
  ASSERT_TRUE(result.has_collision());
  const auto& f = result.findings[0];
  EXPECT_EQ(f.slot, U256{0});
  EXPECT_EQ(f.proxy_width, 20);  // owner address
  EXPECT_EQ(f.logic_width, 1);   // initialized/initializing flags
  EXPECT_TRUE(f.sensitive);
  EXPECT_TRUE(f.exploitable);
  EXPECT_TRUE(f.verified);
  EXPECT_EQ(f.exploit_selector, crypto::selector_u32("initialize()"));
  // Verification must not touch the live chain.
  EXPECT_EQ(chain_.get_storage(proxy, U256{0}),
            Address::from_label("legit.owner").to_word());
}

TEST_F(CollisionTest, MatchingLayoutsProduceNoCollision) {
  // Proxy and logic agree: slot 0 is an address for both.
  const Address proxy = deploy(ContractFactory::slot_proxy(
      U256{1}, {{.prototype = "owner()",
                 .body = BodyKind::kReturnStorageAddress,
                 .slot = U256{0}}}));
  const Address logic = deploy(ContractFactory::plain_contract(
      {{.prototype = "getOwner()", .body = BodyKind::kReturnStorageAddress,
        .slot = U256{0}}}));
  StorageCollisionDetector detector(chain_);
  const auto result = detector.detect(proxy, chain_.get_code(proxy), logic,
                                      chain_.get_code(logic));
  EXPECT_FALSE(result.has_collision());
}

TEST_F(CollisionTest, DisjointSlotsProduceNoCollision) {
  const Address proxy = deploy(ContractFactory::slot_proxy(
      U256{1}, {{.prototype = "owner()",
                 .body = BodyKind::kReturnStorageAddress,
                 .slot = U256{0}}}));
  const Address logic = deploy(ContractFactory::plain_contract(
      {{.prototype = "counter()", .body = BodyKind::kReturnStorageWord,
        .slot = U256{5}}}));
  StorageCollisionDetector detector(chain_);
  EXPECT_FALSE(detector
                   .detect(proxy, chain_.get_code(proxy), logic,
                           chain_.get_code(logic))
                   .has_collision());
}

TEST_F(CollisionTest, WidthMismatchWithoutSensitivityIsNotExploitable) {
  // Proxy reads slot 5 as uint256, logic reads it as bool — a type mismatch
  // but no access-control involvement and no writes: flagged, not
  // exploitable.
  const Address proxy = deploy(ContractFactory::slot_proxy(
      U256{1}, {{.prototype = "stat()", .body = BodyKind::kReturnStorageWord,
                 .slot = U256{5}}}));
  const Address logic = deploy(ContractFactory::plain_contract(
      {{.prototype = "flag()", .body = BodyKind::kReturnStorageBool,
        .slot = U256{5}}}));
  StorageCollisionDetector detector(chain_);
  const auto result = detector.detect(proxy, chain_.get_code(proxy), logic,
                                      chain_.get_code(logic));
  ASSERT_TRUE(result.has_collision());
  EXPECT_FALSE(result.findings[0].sensitive);
  EXPECT_FALSE(result.findings[0].exploitable);
  EXPECT_FALSE(result.findings[0].verified);
}

TEST_F(CollisionTest, GuardedUpgradePathIsNotVerifiedExploitable) {
  // The logic's only write to the colliding slot sits behind an owner
  // guard: concrete verification must fail for a non-owner attacker.
  const Address proxy = deploy(ContractFactory::slot_proxy(
      U256{1}, {{.prototype = "flag()", .body = BodyKind::kReturnStorageBool,
                 .slot = U256{0}}}));
  const Address logic = deploy(ContractFactory::plain_contract({
      {.prototype = "owner()", .body = BodyKind::kReturnStorageAddress,
       .slot = U256{0}},
      {.prototype = "setOwner(address)",
       .body = BodyKind::kGuardedStoreArgAddress, .slot = U256{0},
       .aux = U256{0}},
  }));
  chain_.set_storage(proxy, U256{1}, logic.to_word());
  chain_.set_storage(proxy, U256{0},
                     Address::from_label("real.owner").to_word());

  StorageCollisionDetector detector(chain_);
  const auto result = detector.detect(proxy, chain_.get_code(proxy), logic,
                                      chain_.get_code(logic));
  ASSERT_TRUE(result.has_collision());
  EXPECT_TRUE(result.findings[0].sensitive);
  // Guarded on the logic side and unwritable by the attacker...
  EXPECT_FALSE(result.findings[0].verified);
}

TEST_F(CollisionTest, VerificationDisabledByConfig) {
  const Address logic = deploy(ContractFactory::audius_style_logic());
  const Address proxy = deploy(ContractFactory::audius_style_proxy());
  chain_.set_storage(proxy, U256{1}, logic.to_word());
  StorageCollisionConfig config;
  config.attempt_verification = false;
  StorageCollisionDetector detector(chain_, config);
  const auto result = detector.detect(proxy, chain_.get_code(proxy), logic,
                                      chain_.get_code(logic));
  ASSERT_TRUE(result.has_collision());
  EXPECT_TRUE(result.findings[0].exploitable);
  EXPECT_FALSE(result.findings[0].verified);  // never attempted
}

TEST_F(CollisionTest, PackingCompatibleRangesDoNotCollide) {
  // Proxy: address at slot-0 bytes [0,20). Logic: a packed bool at byte 20
  // of the same slot — exactly how Solidity packs `address owner; bool
  // paused;`. Disjoint ranges: NOT a collision.
  const Address proxy = deploy(ContractFactory::slot_proxy(
      U256{1}, {{.prototype = "owner()",
                 .body = BodyKind::kReturnStorageAddress,
                 .slot = U256{0}}}));
  const Address logic = deploy(ContractFactory::plain_contract(
      {{.prototype = "paused()", .body = BodyKind::kReturnStorageBoolAtOffset,
        .slot = U256{0}, .aux = U256{20}}}));
  StorageCollisionDetector detector(chain_);
  EXPECT_FALSE(detector
                   .detect(proxy, chain_.get_code(proxy), logic,
                           chain_.get_code(logic))
                   .has_collision());
}

TEST_F(CollisionTest, PackedFlagInsideAddressRangeCollides) {
  // Logic reads byte 1 of slot 0 — inside the proxy's 20-byte owner. The
  // true Listing-2 shape (`initializing` at offset 1).
  const Address proxy = deploy(ContractFactory::slot_proxy(
      U256{1}, {{.prototype = "owner()",
                 .body = BodyKind::kReturnStorageAddress,
                 .slot = U256{0}}}));
  const Address logic = deploy(ContractFactory::plain_contract(
      {{.prototype = "initializing()",
        .body = BodyKind::kReturnStorageBoolAtOffset, .slot = U256{0},
        .aux = U256{1}}}));
  StorageCollisionDetector detector(chain_);
  const auto result = detector.detect(proxy, chain_.get_code(proxy), logic,
                                      chain_.get_code(logic));
  ASSERT_TRUE(result.has_collision());
  EXPECT_EQ(result.findings[0].proxy_offset, 0);
  EXPECT_EQ(result.findings[0].proxy_width, 20);
  EXPECT_EQ(result.findings[0].logic_offset, 1);
  EXPECT_EQ(result.findings[0].logic_width, 1);
}

TEST_F(CollisionTest, UnguardedCallerWriteExploitIsRepeatable) {
  // A logic function that unconditionally stores CALLER into the sensitive
  // slot: the exploit replays forever (§2.3's "executed multiple times").
  const Address proxy = deploy(ContractFactory::slot_proxy(
      U256{1}, {{.prototype = "owner()",
                 .body = BodyKind::kReturnStorageAddress,
                 .slot = U256{0}}}));
  const Address logic = deploy(ContractFactory::plain_contract(
      {{.prototype = "claim()", .body = BodyKind::kStoreCaller,
        .slot = U256{0}},
       {.prototype = "claimed()", .body = BodyKind::kReturnStorageBool,
        .slot = U256{0}}}));
  chain_.set_storage(proxy, U256{1}, logic.to_word());

  StorageCollisionDetector detector(chain_);
  const auto result = detector.detect(proxy, chain_.get_code(proxy), logic,
                                      chain_.get_code(logic));
  ASSERT_TRUE(result.has_collision());
  ASSERT_TRUE(result.findings[0].verified);
  EXPECT_TRUE(result.findings[0].repeatable);
}

TEST_F(CollisionTest, AudiusRepeatabilityDependsOnOverwrittenFlagByte) {
  // After the first exploit, slot 0 holds the attacker's address; whether
  // initialize() re-runs depends on whether the flag byte it checks (byte
  // 0) ended up zero — exactly the aliasing accident behind the real
  // incident. The expectation is computed, not assumed.
  const Address logic = deploy(ContractFactory::audius_style_logic());
  const Address proxy = deploy(ContractFactory::audius_style_proxy());
  chain_.set_storage(proxy, U256{1}, logic.to_word());

  StorageCollisionDetector detector(chain_);
  const auto result = detector.detect(proxy, chain_.get_code(proxy), logic,
                                      chain_.get_code(logic));
  ASSERT_TRUE(result.has_collision());
  ASSERT_TRUE(result.findings[0].verified);
  const Address attacker = Address::from_label("proxion.attacker");
  const bool flag_byte_zero = attacker.bytes[19] == 0;  // low byte of slot 0
  EXPECT_EQ(result.findings[0].repeatable, flag_byte_zero);
}

TEST_F(CollisionTest, PackedRmwWriteInsideOwnerCollides) {
  // The faithful Listing-2 shape: the logic sets `initializing` (byte 1 of
  // slot 0) with the packed read-modify-write idiom, inside the proxy's
  // 20-byte owner.
  const Address proxy = deploy(ContractFactory::slot_proxy(
      U256{1}, {{.prototype = "owner()",
                 .body = BodyKind::kReturnStorageAddress,
                 .slot = U256{0}}}));
  const Address logic = deploy(ContractFactory::plain_contract(
      {{.prototype = "beginInit()", .body = BodyKind::kStoreBoolPackedAt,
        .slot = U256{0}, .aux = U256{1}}}));
  chain_.set_storage(proxy, U256{1}, logic.to_word());

  StorageCollisionDetector detector(chain_);
  const auto result = detector.detect(proxy, chain_.get_code(proxy), logic,
                                      chain_.get_code(logic));
  ASSERT_TRUE(result.has_collision());
  EXPECT_EQ(result.findings[0].logic_offset, 1);
  EXPECT_EQ(result.findings[0].logic_width, 1);
  EXPECT_EQ(result.findings[0].proxy_width, 20);
}

TEST_F(CollisionTest, PackedRmwWriteBesideOwnerIsCompatible) {
  // Same idiom at byte 20: legal packing next to the address, no collision.
  const Address proxy = deploy(ContractFactory::slot_proxy(
      U256{1}, {{.prototype = "owner()",
                 .body = BodyKind::kReturnStorageAddress,
                 .slot = U256{0}}}));
  const Address logic = deploy(ContractFactory::plain_contract(
      {{.prototype = "setPaused()", .body = BodyKind::kStoreBoolPackedAt,
        .slot = U256{0}, .aux = U256{20}}}));
  chain_.set_storage(proxy, U256{1}, logic.to_word());

  StorageCollisionDetector detector(chain_);
  EXPECT_FALSE(detector
                   .detect(proxy, chain_.get_code(proxy), logic,
                           chain_.get_code(logic))
                   .has_collision());
}

TEST_F(CollisionTest, EmptyLogicCodeNoCollision) {
  const Address proxy = deploy(ContractFactory::audius_style_proxy());
  StorageCollisionDetector detector(chain_);
  const auto result = detector.detect(
      proxy, chain_.get_code(proxy), Address::from_label("ghost"), Bytes{});
  EXPECT_FALSE(result.has_collision());
}

}  // namespace
