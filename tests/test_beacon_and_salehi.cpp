// The beacon-proxy archetype (logic address behind a STATICCALL, neither in
// code nor in the proxy's own slot) and the Salehi et al. replay baseline.
#include <gtest/gtest.h>

#include "baselines/salehi.h"
#include "chain/blockchain.h"
#include "core/pipeline.h"
#include "core/proxy_detector.h"
#include "crypto/eth.h"
#include "datagen/contract_factory.h"
#include "datagen/population.h"

namespace {

using namespace proxion;
using chain::Blockchain;
using evm::Address;
using datagen::BodyKind;
using datagen::ContractFactory;
using evm::Bytes;
using evm::U256;

Bytes selector_calldata(std::string_view prototype) {
  const auto sel = crypto::selector_of(prototype);
  Bytes out(36, 0);
  std::copy(sel.begin(), sel.end(), out.begin());
  return out;
}

class BeaconTest : public ::testing::Test {
 protected:
  void SetUp() override {
    logic_ = chain_.deploy_runtime(user_, ContractFactory::token_contract(1));
    beacon_ = chain_.deploy_runtime(user_, ContractFactory::beacon());
    chain_.set_storage(beacon_, U256{0}, logic_.to_word());
    proxy_ = chain_.deploy_runtime(user_, ContractFactory::beacon_proxy());
    chain_.set_storage(proxy_,
                       evm::to_u256(crypto::eip1967_beacon_slot()),
                       beacon_.to_word());
  }

  Blockchain chain_;
  Address user_ = Address::from_label("beacon.user");
  Address logic_, beacon_, proxy_;
};

TEST_F(BeaconTest, CallsForwardThroughBeaconIndirection) {
  const auto r = chain_.call(user_, proxy_, selector_calldata("totalSupply()"));
  ASSERT_TRUE(r.success());
  EXPECT_EQ(evm::U256::from_be_slice(r.return_data), U256{1'000'001});
}

TEST_F(BeaconTest, DetectedAsProxyWithComputedLogicSource) {
  core::ProxyDetector detector(chain_);
  const auto report = detector.analyze(proxy_);
  EXPECT_EQ(report.verdict, core::ProxyVerdict::kProxy);
  EXPECT_EQ(report.logic_address, logic_);
  // The delegate target came back from a STATICCALL, not from the proxy's
  // own storage and not from its code bytes.
  EXPECT_EQ(report.logic_source, core::LogicSource::kComputed);
  EXPECT_EQ(report.standard, core::ProxyStandard::kOther);
}

TEST_F(BeaconTest, BeaconUpgradeRetargetsEveryProxy) {
  const Address proxy2 =
      chain_.deploy_runtime(user_, ContractFactory::beacon_proxy());
  chain_.set_storage(proxy2, evm::to_u256(crypto::eip1967_beacon_slot()),
                     beacon_.to_word());
  const Address logic2 =
      chain_.deploy_runtime(user_, ContractFactory::token_contract(2));
  chain_.set_storage(beacon_, U256{0}, logic2.to_word());

  core::ProxyDetector detector(chain_);
  EXPECT_EQ(detector.analyze(proxy_).logic_address, logic2);
  EXPECT_EQ(detector.analyze(proxy2).logic_address, logic2);
}

class SalehiTest : public ::testing::Test {
 protected:
  Blockchain chain_;
  Address user_ = Address::from_label("salehi.user");
};

TEST_F(SalehiTest, DetectsProxyWithReplayableHistory) {
  const Address logic =
      chain_.deploy_runtime(user_, ContractFactory::token_contract(1));
  const Address proxy =
      chain_.deploy_runtime(user_, ContractFactory::minimal_proxy(logic));
  chain_.call(user_, proxy, selector_calldata("totalSupply()"));

  baselines::SalehiAnalyzer salehi(chain_);
  const auto r = salehi.analyze(proxy);
  EXPECT_TRUE(r.has_history);
  EXPECT_TRUE(r.is_proxy);
  EXPECT_GE(r.replayed, 1u);
}

TEST_F(SalehiTest, BlindToContractsWithoutTransactions) {
  const Address logic =
      chain_.deploy_runtime(user_, ContractFactory::token_contract(1));
  const Address proxy =
      chain_.deploy_runtime(user_, ContractFactory::minimal_proxy(logic));

  baselines::SalehiAnalyzer salehi(chain_);
  const auto r = salehi.analyze(proxy);
  EXPECT_FALSE(r.has_history);
  EXPECT_FALSE(r.is_proxy);  // the paper's documented limitation

  // Proxion needs no history.
  core::ProxyDetector detector(chain_);
  EXPECT_TRUE(detector.analyze(proxy).is_proxy());
}

TEST_F(SalehiTest, DispatchedSelectorsAloneDoNotProveProxying) {
  // The only recorded tx hit a real dispatcher function, which does not
  // delegate: replay finds nothing even though the fallback would forward.
  const Address logic =
      chain_.deploy_runtime(user_, ContractFactory::token_contract(1));
  const Address proxy = chain_.deploy_runtime(
      user_, ContractFactory::slot_proxy(
                 U256{1}, {{.prototype = "owner()",
                            .body = BodyKind::kReturnStorageAddress,
                            .slot = U256{0}}}));
  chain_.set_storage(proxy, U256{1}, logic.to_word());
  chain_.call(user_, proxy, selector_calldata("owner()"));

  baselines::SalehiAnalyzer salehi(chain_);
  const auto r = salehi.analyze(proxy);
  EXPECT_TRUE(r.has_history);
  EXPECT_FALSE(r.is_proxy);  // fidelity limited by what history exists
}

TEST_F(SalehiTest, NonProxyWithHistoryIsNegative) {
  const Address token =
      chain_.deploy_runtime(user_, ContractFactory::token_contract(3));
  chain_.call(user_, token, selector_calldata("totalSupply()"));
  baselines::SalehiAnalyzer salehi(chain_);
  const auto r = salehi.analyze(token);
  EXPECT_TRUE(r.has_history);
  EXPECT_FALSE(r.is_proxy);
}

TEST(PipelineDiamondOption, RecoversTransactedDiamonds) {
  datagen::PopulationSpec spec;
  spec.total_contracts = 1'500;
  datagen::Population pop = datagen::PopulationGenerator().generate(spec);

  core::PipelineConfig config;
  config.probe_diamonds = true;
  core::AnalysisPipeline pipeline(*pop.chain, &pop.sources, config);
  const auto reports = pipeline.run(pop.sweep_inputs());
  const auto stats = pipeline.summarize(reports);

  std::uint64_t diamonds_with_tx = 0;
  for (std::size_t i = 0; i < pop.contracts.size(); ++i) {
    if (pop.contracts[i].archetype == datagen::Archetype::kDiamondProxy &&
        pop.contracts[i].has_tx) {
      ++diamonds_with_tx;
      EXPECT_TRUE(reports[i].diamond.is_diamond)
          << pop.contracts[i].address.to_hex();
    }
  }
  EXPECT_EQ(stats.diamonds_recovered, diamonds_with_tx);
}

}  // namespace
