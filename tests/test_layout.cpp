// Storage-layout inference (src/static/layout): static slots with packed
// sub-word members, keccak-derived mapping/array slot families, guard and
// provenance facts, the reliability contract, AnalysisCache memoization,
// and the source-free family-collision mode's equivalence with the
// declared-layout mode.
#include <gtest/gtest.h>

#include <memory>

#include "chain/blockchain.h"
#include "core/analysis_cache.h"
#include "core/storage_collision.h"
#include "core/storage_profile.h"
#include "crypto/eth.h"
#include "datagen/assembler.h"
#include "datagen/contract_factory.h"
#include "evm/disassembler.h"
#include "sourcemeta/source.h"
#include "static/layout.h"

namespace {

using namespace proxion;
using chain::Blockchain;
using core::StorageCollisionConfig;
using core::StorageCollisionDetector;
using datagen::Assembler;
using datagen::BodyKind;
using datagen::ContractFactory;
using evm::Address;
using evm::Bytes;
using evm::Opcode;
using evm::U256;
using static_analysis::AbstractValue;
using static_analysis::SlotFamily;
using static_analysis::StorageLayout;
using static_analysis::WriteOrigin;

StorageLayout infer(const Bytes& code) {
  return static_analysis::infer_layout(evm::Disassembly(code));
}

const SlotFamily* mapping_family(const StorageLayout& layout,
                                 std::uint64_t base) {
  return layout.family(U256{base}, /*depth=*/1, /*path=*/1);
}

// ---------------------------------------------------------------------------
// Static slots and packed members

TEST(LayoutInference, TokenContractStaticSlots) {
  const StorageLayout layout = infer(ContractFactory::token_contract(7));
  ASSERT_TRUE(layout.cfg_complete);
  EXPECT_EQ(layout.unresolved_accesses, 0u);
  EXPECT_TRUE(layout.reliable());
  // owner() reads slot 0 as an address; balanceOf/transfer hit slot 2 whole.
  EXPECT_TRUE(layout.admits_slot(U256{0}));
  EXPECT_TRUE(layout.admits_slot(U256{2}));
  bool found_address_view = false;
  for (const auto& m : layout.members) {
    if (m.slot == U256{0} && m.offset == 0 && m.width == 20) {
      found_address_view = true;
    }
  }
  EXPECT_TRUE(found_address_view) << layout.to_string();
}

TEST(LayoutInference, PackedConfigRecoversSubWordMembers) {
  const StorageLayout layout = infer(ContractFactory::packed_config_contract());
  ASSERT_TRUE(layout.reliable()) << layout.to_string();
  // paused() reads (sload(0) >> 160) & 0xff: byte 20, width 1.
  bool found_bool = false;
  bool found_address = false;
  for (const auto& m : layout.members) {
    if (m.slot != U256{0}) continue;
    if (m.offset == 20 && m.width == 1) found_bool = true;
    if (m.offset == 0 && m.width == 20) found_address = true;
  }
  EXPECT_TRUE(found_bool) << layout.to_string();
  EXPECT_TRUE(found_address) << layout.to_string();
  // values(uint256) walks the dynamic array rooted at slot 1.
  EXPECT_NE(layout.family(U256{1}, 1, /*path=*/0), nullptr)
      << layout.to_string();
}

TEST(LayoutInference, GuardFactsOnPackedWrite) {
  const StorageLayout layout = infer(ContractFactory::packed_config_contract());
  // pause() writes byte 20 of slot 0 with no caller guard; setOwner() writes
  // the address range behind a CALLER-equality check.
  bool packed_write_unguarded = false;
  bool address_caller_compared = false;
  for (const auto& m : layout.members) {
    if (m.slot != U256{0}) continue;
    if (m.offset == 20 && m.width == 1 && m.written && m.unguarded_write) {
      packed_write_unguarded = true;
    }
    if (m.width == 20 && m.caller_compared) address_caller_compared = true;
  }
  EXPECT_TRUE(packed_write_unguarded) << layout.to_string();
  EXPECT_TRUE(address_caller_compared) << layout.to_string();
}

// ---------------------------------------------------------------------------
// Keccak slot families

TEST(LayoutInference, MappingTokenRecoversFamilies) {
  const StorageLayout layout =
      infer(ContractFactory::mapping_token_contract(3));
  ASSERT_TRUE(layout.reliable()) << layout.to_string();
  // balances: mapping at slot 2, calldata-derived key, read and written.
  const SlotFamily* balances = mapping_family(layout, 2);
  ASSERT_NE(balances, nullptr) << layout.to_string();
  EXPECT_EQ(balances->key_origin, AbstractValue::KeyOrigin::kCalldata);
  EXPECT_TRUE(balances->read);
  EXPECT_TRUE(balances->written);
  EXPECT_TRUE(balances->unguarded_write);
  // approvals: mapping at slot 3, caller-derived key (origin stays unknown —
  // the lattice only distinguishes const/calldata keys).
  const SlotFamily* approvals = mapping_family(layout, 3);
  ASSERT_NE(approvals, nullptr) << layout.to_string();
  EXPECT_TRUE(approvals->written);
}

TEST(LayoutInference, DiamondSelectorMappingIsAFamily) {
  const StorageLayout layout = infer(ContractFactory::diamond_proxy());
  const SlotFamily* facets =
      layout.family(ContractFactory::diamond_base_slot(), 1, /*path=*/1);
  ASSERT_NE(facets, nullptr) << layout.to_string();
  EXPECT_TRUE(facets->read);
  EXPECT_FALSE(facets->written);
}

TEST(LayoutInference, FamilyElementSlotsAreAdmittedNowhereStatically) {
  // Family membership is not static-slot membership: keccak image slots must
  // not appear as members (they are unbounded), only as the family.
  const StorageLayout layout =
      infer(ContractFactory::mapping_token_contract(1));
  for (const auto& m : layout.members) {
    EXPECT_LT(m.slot, U256{1} << U256{32}) << layout.to_string();
  }
}

// ---------------------------------------------------------------------------
// Reliability posture

TEST(LayoutInference, ComputedJumpContractIsUnreliable) {
  // The calldata-derived computed jump defeats CFG recovery; the layout must
  // say so instead of making claims it cannot back.
  const StorageLayout layout =
      infer(ContractFactory::computed_jump_contract(U256{0}));
  EXPECT_FALSE(layout.reliable());
}

TEST(LayoutInference, UnresolvedSlotDisablesReliability) {
  // sstore(calldataload(4), 1): the slot is attacker-chosen — no layout can
  // cover it, so the access must count as unresolved.
  Assembler a;
  a.push(U256{1}, 1);
  a.push(U256{4}, 1).op(Opcode::CALLDATALOAD);
  a.op(Opcode::SSTORE).op(Opcode::STOP);
  const StorageLayout layout = infer(a.assemble());
  EXPECT_GT(layout.unresolved_accesses, 0u);
  EXPECT_FALSE(layout.reliable());
}

TEST(LayoutInference, EmptyCodeIsReliablyEmpty) {
  const StorageLayout layout = infer(Bytes{});
  EXPECT_TRUE(layout.members.empty());
  EXPECT_TRUE(layout.families.empty());
  EXPECT_TRUE(layout.reliable());
}

// ---------------------------------------------------------------------------
// Satellite 1 regression: a packed address read typed by a CALLER compare
// must carry the SHR-derived byte offset, not claim bytes [0, 20).

TEST(StorageProfileRegression, ShiftedCallerCompareKeepsPackedOffset) {
  // if (address(uint160(sload(0) >> 64)) == msg.sender) { sstore(1, 1) }
  Assembler a;
  a.push(U256{0}, 1).op(Opcode::SLOAD);
  a.push(U256{64}, 1).op(Opcode::SHR);
  a.op(Opcode::CALLER).op(Opcode::EQ);
  a.push_label("ok").op(Opcode::JUMPI);
  a.push(U256{0}, 1).push(U256{0}, 1).op(Opcode::REVERT);
  a.jumpdest("ok");
  a.push(U256{1}, 1).push(U256{1}, 1).op(Opcode::SSTORE).op(Opcode::STOP);
  const Bytes code = a.assemble();

  const core::StorageProfile profile =
      core::profile_storage(evm::Disassembly(code));
  bool found = false;
  for (const auto& acc : profile.accesses) {
    if (acc.slot == U256{0} && !acc.is_write && acc.caller_compared) {
      EXPECT_EQ(acc.offset, 8u);   // 64 bits = 8 bytes up
      EXPECT_EQ(acc.width, 20u);
      found = true;
    }
  }
  EXPECT_TRUE(found);

  // The inferred layout carries the same refined view.
  const StorageLayout layout = infer(code);
  bool member_found = false;
  for (const auto& m : layout.members) {
    if (m.slot == U256{0} && m.offset == 8 && m.width == 20 &&
        m.caller_compared) {
      member_found = true;
    }
  }
  EXPECT_TRUE(member_found) << layout.to_string();
}

TEST(StorageProfileRegression, FullWordReadOverlapsEveryPackedMember) {
  // An unmasked 32-byte read must overlap both a low-packed bool and a
  // high-packed address — the misleading-offset bug reported overlap with
  // only one of them.
  core::StorageAccess whole{.slot = U256{0}, .width = 32, .offset = 0};
  core::StorageAccess low_bool{.slot = U256{0}, .width = 1, .offset = 0};
  core::StorageAccess high_addr{.slot = U256{0}, .width = 20, .offset = 12};
  EXPECT_TRUE(whole.overlaps(low_bool));
  EXPECT_TRUE(whole.overlaps(high_addr));
  EXPECT_FALSE(low_bool.overlaps(high_addr));
}

// ---------------------------------------------------------------------------
// Memoization (AnalysisCache)

TEST(LayoutCache, LayoutIsMemoizedPerCodeHash) {
  core::AnalysisCache cache;
  const Bytes code = ContractFactory::mapping_token_contract(5);
  const crypto::Hash256 hash = crypto::keccak256(code);

  const auto first = cache.layout(hash, code);
  const auto second = cache.layout(hash, code);
  EXPECT_EQ(first.get(), second.get());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.layout_misses, 1u);
  EXPECT_EQ(stats.layout_hits, 1u);
}

TEST(LayoutCache, LayoutDoesNotInflateStaticTriageCounters) {
  core::AnalysisCache cache;
  const Bytes code = ContractFactory::token_contract(1);
  const crypto::Hash256 hash = crypto::keccak256(code);
  (void)cache.layout(hash, code);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.static_hits, 0u);
  EXPECT_EQ(stats.static_misses, 0u);
}

// ---------------------------------------------------------------------------
// Source-free family collision mode

sourcemeta::SourceRecord mapping_token_record() {
  sourcemeta::SourceRecord rec;
  rec.contract_name = "MappingToken";
  rec.functions = {{.prototype = "totalSupply()"},
                   {.prototype = "balanceOf(address)"},
                   {.prototype = "transfer(address,uint256)"},
                   {.prototype = "approve(uint256)"},
                   {.prototype = "owner()"}};
  rec.storage = {{.name = "owner", .type = "address"},
                 {.name = "reserved", .type = "uint256"},
                 {.name = "balances", .type = "mapping(address=>uint256)"},
                 {.name = "approvals", .type = "mapping(address=>uint256)"}};
  sourcemeta::layout_storage(rec.storage);
  return rec;
}

TEST(FamilyCollision, DeclaredAndInferredFamiliesShareIdentity) {
  const auto declared =
      StorageCollisionDetector::declared_families(mapping_token_record());
  const StorageLayout layout =
      infer(ContractFactory::mapping_token_contract(2));
  const auto inferred = StorageCollisionDetector::inferred_families(layout);

  // Every declared mapping identity is recovered from bytecode alone.
  for (const auto& d : declared) {
    const bool matched = std::any_of(
        inferred.begin(), inferred.end(),
        [&](const core::FamilyView& i) { return d.same_identity(i); });
    EXPECT_TRUE(matched) << "declared base slot not inferred: "
                         << layout.to_string();
  }
}

TEST(FamilyCollision, SourceFreeModeMatchesSourceAttachedVerdict) {
  Blockchain chain;
  const Address deployer = Address::from_label("layout.deployer");
  const Address proxy_addr =
      chain.deploy_runtime(deployer, ContractFactory::mapping_token_contract(1));
  const Address logic_addr =
      chain.deploy_runtime(deployer, ContractFactory::mapping_token_contract(9));
  const Bytes proxy_code = chain.get_code(proxy_addr);
  const Bytes logic_code = chain.get_code(logic_addr);
  const crypto::Hash256 proxy_hash = crypto::keccak256(proxy_code);
  const crypto::Hash256 logic_hash = crypto::keccak256(logic_code);

  StorageCollisionConfig config;
  config.compare_families = true;

  // Source-attached: both sides have declared layouts.
  sourcemeta::SourceRepository sources;
  sources.publish(proxy_addr, mapping_token_record());
  sources.publish(logic_addr, mapping_token_record());
  core::AnalysisCache cache_attached;
  StorageCollisionDetector attached(chain, config, &cache_attached, &sources);
  const auto attached_result =
      attached.detect(proxy_addr, proxy_code, &proxy_hash, logic_addr,
                      logic_code, &logic_hash);
  EXPECT_TRUE(attached_result.family_checked);
  EXPECT_FALSE(attached_result.family_source_free);

  // Source-free: same pair, sourcemeta detached.
  core::AnalysisCache cache_free;
  StorageCollisionDetector source_free(chain, config, &cache_free, nullptr);
  const auto free_result =
      source_free.detect(proxy_addr, proxy_code, &proxy_hash, logic_addr,
                         logic_code, &logic_hash);
  EXPECT_TRUE(free_result.family_checked);
  EXPECT_TRUE(free_result.family_source_free);

  // Core contract of the source-free mode: bit-identical verdicts.
  EXPECT_EQ(attached_result.has_family_collision(),
            free_result.has_family_collision());
  EXPECT_EQ(attached_result.has_collision(), free_result.has_collision());
}

TEST(FamilyCollision, NoFindingWhenFamiliesAgree) {
  Blockchain chain;
  const Address deployer = Address::from_label("layout.deployer2");
  const Address a_addr =
      chain.deploy_runtime(deployer, ContractFactory::mapping_token_contract(4));
  const Address b_addr =
      chain.deploy_runtime(deployer, ContractFactory::mapping_token_contract(8));
  const Bytes a_code = chain.get_code(a_addr);
  const Bytes b_code = chain.get_code(b_addr);

  StorageCollisionConfig config;
  config.compare_families = true;
  core::AnalysisCache cache;
  StorageCollisionDetector detector(chain, config, &cache, nullptr);
  const crypto::Hash256 a_hash = crypto::keccak256(a_code);
  const crypto::Hash256 b_hash = crypto::keccak256(b_code);
  const auto result =
      detector.detect(a_addr, a_code, &a_hash, b_addr, b_code, &b_hash);
  EXPECT_TRUE(result.family_checked);
  EXPECT_FALSE(result.has_family_collision());
}

}  // namespace
