// The datagen assembler and contract factory: label resolution, initcode
// wrapping, and behavioural checks that every factory archetype actually
// runs (dispatches, delegates, reverts) the way its spec claims.
#include <gtest/gtest.h>

#include "crypto/eth.h"
#include "datagen/assembler.h"
#include "datagen/contract_factory.h"
#include "evm/disassembler.h"
#include "evm/host.h"
#include "evm/interpreter.h"

namespace {

using namespace proxion::evm;
using namespace proxion::datagen;
using proxion::crypto::from_hex;
using proxion::crypto::selector_u32;

Bytes with_selector(std::uint32_t selector, const U256& arg = {}) {
  Bytes calldata(36, 0);
  calldata[0] = static_cast<std::uint8_t>(selector >> 24);
  calldata[1] = static_cast<std::uint8_t>(selector >> 16);
  calldata[2] = static_cast<std::uint8_t>(selector >> 8);
  calldata[3] = static_cast<std::uint8_t>(selector);
  const auto word = arg.to_be_bytes();
  std::copy(word.begin(), word.end(), calldata.begin() + 4);
  return calldata;
}

class FactoryTest : public ::testing::Test {
 protected:
  ExecResult call(const Address& target, Bytes calldata) {
    Interpreter interp(host_);
    CallParams params;
    params.code_address = target;
    params.storage_address = target;
    params.caller = user_;
    params.origin = user_;
    params.calldata = std::move(calldata);
    return interp.execute(params);
  }

  Address deploy(Bytes code) {
    const Address a = Address::from_label(
        "factory.target." + std::to_string(counter_++));
    host_.set_code(a, std::move(code));
    return a;
  }

  MemoryHost host_;
  Address user_ = Address::from_label("user");
  int counter_ = 0;
};

TEST(Assembler, LabelResolution) {
  Assembler a;
  a.push_label("end").op(Opcode::JUMP);
  a.push(U256{0xbad}, 2);
  a.jumpdest("end").op(Opcode::STOP);
  const Bytes code = a.assemble();
  // PUSH2 <offset of end>; JUMP; PUSH2 0x0bad; end: JUMPDEST STOP
  EXPECT_EQ(code[0], 0x61);
  EXPECT_EQ((code[1] << 8) | code[2], 7);
  EXPECT_EQ(code[7], 0x5b);
}

TEST(Assembler, UndefinedLabelThrows) {
  Assembler a;
  a.push_label("nowhere").op(Opcode::JUMP);
  EXPECT_THROW(a.assemble(), std::runtime_error);
}

TEST(Assembler, DuplicateLabelThrows) {
  Assembler a;
  a.label("x");
  EXPECT_THROW(a.label("x"), std::runtime_error);
}

TEST(Assembler, PushWidthValidation) {
  Assembler a;
  EXPECT_THROW(a.push(U256{0x1234}, 1), std::invalid_argument);  // too narrow
  EXPECT_THROW(a.push(U256{1}, 0), std::invalid_argument);
  EXPECT_THROW(a.push(U256{1}, 33), std::invalid_argument);
  a.push(U256{0x1234}, 2);
  EXPECT_EQ(a.size(), 3u);
}

TEST(Assembler, MinimalPushWidth) {
  Assembler a;
  a.push(U256{0});          // PUSH1 0x00
  a.push(U256{0x1ff});      // PUSH2
  const Bytes code = a.assemble();
  EXPECT_EQ(code[0], 0x60);
  EXPECT_EQ(code[2], 0x61);
}

TEST(Assembler, DupSwapHelpers) {
  Assembler a;
  a.dup(5).swap(3);
  const Bytes code = a.assemble();
  EXPECT_EQ(code[0], 0x84);
  EXPECT_EQ(code[1], 0x92);
  EXPECT_THROW(a.dup(0), std::invalid_argument);
  EXPECT_THROW(a.swap(17), std::invalid_argument);
}

TEST_F(FactoryTest, WrapInitcodeDeploysRuntimeAndRunsConstructorStores) {
  const Bytes runtime = from_hex("6001600055600160005260206000f3");
  const Bytes init = Assembler::wrap_initcode(
      runtime, {{U256{7}, U256{0xabc}}});
  Interpreter interp(host_);
  const Address target = Address::from_label("deploy.target");
  const ExecResult r = interp.execute_create(user_, target, init, {}, 0,
                                             10'000'000);
  ASSERT_EQ(r.halt, HaltReason::kReturn);
  EXPECT_EQ(host_.get_code(target), runtime);
  EXPECT_EQ(host_.get_storage(target, U256{7}), U256{0xabc});
}

TEST_F(FactoryTest, DispatcherRoutesBySelector) {
  const Bytes code = ContractFactory::plain_contract({
      {.prototype = "alpha()", .body = BodyKind::kReturnConstant,
       .aux = U256{111}},
      {.prototype = "beta()", .body = BodyKind::kReturnConstant,
       .aux = U256{222}},
  });
  const Address c = deploy(code);
  EXPECT_EQ(U256::from_be_slice(
                call(c, with_selector(selector_u32("alpha()"))).return_data),
            U256{111});
  EXPECT_EQ(U256::from_be_slice(
                call(c, with_selector(selector_u32("beta()"))).return_data),
            U256{222});
  // Unknown selector falls into the revert fallback.
  EXPECT_EQ(call(c, with_selector(0x01020304)).halt, HaltReason::kRevert);
  // Short calldata (<4 bytes) also reverts.
  EXPECT_EQ(call(c, from_hex("aa")).halt, HaltReason::kRevert);
}

TEST_F(FactoryTest, StorageBodies) {
  const Bytes code = ContractFactory::plain_contract({
      {.prototype = "set(uint256)", .body = BodyKind::kStoreArgWord,
       .slot = U256{3}},
      {.prototype = "get()", .body = BodyKind::kReturnStorageWord,
       .slot = U256{3}},
      {.prototype = "setOwner(address)", .body = BodyKind::kStoreArgAddress,
       .slot = U256{0}},
      {.prototype = "owner()", .body = BodyKind::kReturnStorageAddress,
       .slot = U256{0}},
  });
  const Address c = deploy(code);
  EXPECT_EQ(call(c, with_selector(selector_u32("set(uint256)"), U256{0x77}))
                .halt,
            HaltReason::kStop);
  EXPECT_EQ(host_.get_storage(c, U256{3}), U256{0x77});
  EXPECT_EQ(U256::from_be_slice(
                call(c, with_selector(selector_u32("get()"))).return_data),
            U256{0x77});

  const U256 dirty_address =
      (U256{0xff} << U256{200}) | user_.to_word();  // upper garbage
  call(c, with_selector(selector_u32("setOwner(address)"), dirty_address));
  // kStoreArgAddress masks to 160 bits before storing.
  EXPECT_EQ(host_.get_storage(c, U256{0}), user_.to_word());
  EXPECT_EQ(U256::from_be_slice(
                call(c, with_selector(selector_u32("owner()"))).return_data),
            user_.to_word());
}

TEST_F(FactoryTest, GuardedStoreEnforcesOwner) {
  const Bytes code = ContractFactory::plain_contract({
      {.prototype = "upgradeTo(address)",
       .body = BodyKind::kGuardedStoreArgAddress, .slot = U256{1},
       .aux = U256{0}},
  });
  const Address c = deploy(code);
  const Address new_impl = Address::from_label("new-impl");

  // Not the owner: revert, nothing written.
  EXPECT_EQ(call(c, with_selector(selector_u32("upgradeTo(address)"),
                                  new_impl.to_word()))
                .halt,
            HaltReason::kRevert);
  EXPECT_EQ(host_.get_storage(c, U256{1}), U256{});

  // Become the owner: the write goes through.
  host_.set_storage(c, U256{0}, user_.to_word());
  EXPECT_EQ(call(c, with_selector(selector_u32("upgradeTo(address)"),
                                  new_impl.to_word()))
                .halt,
            HaltReason::kStop);
  EXPECT_EQ(host_.get_storage(c, U256{1}), new_impl.to_word());
}

TEST_F(FactoryTest, MinimalProxyForwardsAndReturns) {
  const Bytes logic_code = ContractFactory::plain_contract({
      {.prototype = "ping()", .body = BodyKind::kReturnConstant,
       .aux = U256{0x5150}},
  });
  const Address logic = deploy(logic_code);
  const Address proxy = deploy(ContractFactory::minimal_proxy(logic));

  const ExecResult r = call(proxy, with_selector(selector_u32("ping()")));
  EXPECT_EQ(r.halt, HaltReason::kReturn);
  EXPECT_EQ(U256::from_be_slice(r.return_data), U256{0x5150});
}

TEST_F(FactoryTest, MinimalProxyBubblesRevert) {
  const Bytes logic_code = ContractFactory::plain_contract({});  // all revert
  const Address logic = deploy(logic_code);
  const Address proxy = deploy(ContractFactory::minimal_proxy(logic));
  EXPECT_EQ(call(proxy, with_selector(0xaabbccdd)).halt, HaltReason::kRevert);
}

TEST_F(FactoryTest, SlotProxyDelegatesThroughStorage) {
  const Bytes logic_code = ContractFactory::plain_contract({
      {.prototype = "whoami()", .body = BodyKind::kStoreCaller,
       .slot = U256{9}},
  });
  const Address logic = deploy(logic_code);
  const Address proxy = deploy(ContractFactory::slot_proxy(U256{0}));
  host_.set_storage(proxy, U256{0}, logic.to_word());

  const ExecResult r = call(proxy, with_selector(selector_u32("whoami()")));
  EXPECT_EQ(r.halt, HaltReason::kReturn);
  // Delegatecall context: the write lands in the PROXY's storage and the
  // caller observed is the original user.
  EXPECT_EQ(host_.get_storage(proxy, U256{9}), user_.to_word());
  EXPECT_EQ(host_.get_storage(logic, U256{9}), U256{});
}

TEST_F(FactoryTest, Eip1967ProxyUsesStandardSlot) {
  const Bytes logic_code = ContractFactory::plain_contract({
      {.prototype = "ping()", .body = BodyKind::kReturnConstant,
       .aux = U256{1}},
  });
  const Address logic = deploy(logic_code);
  const Address proxy = deploy(ContractFactory::eip1967_proxy());
  host_.set_storage(proxy, ContractFactory::eip1967_slot(), logic.to_word());
  const ExecResult r = call(proxy, with_selector(selector_u32("ping()")));
  EXPECT_EQ(U256::from_be_slice(r.return_data), U256{1});
  EXPECT_EQ(ContractFactory::eip1967_slot(),
            to_u256(proxion::crypto::eip1967_implementation_slot()));
}

TEST_F(FactoryTest, TransparentProxyRoutesAdminAndUsers) {
  const Bytes logic_code = ContractFactory::plain_contract({
      {.prototype = "ping()", .body = BodyKind::kReturnConstant,
       .aux = U256{0xcafe}},
  });
  const Address logic = deploy(logic_code);
  const Address admin = Address::from_label("the-admin");
  const Address proxy = deploy(ContractFactory::transparent_proxy());
  host_.set_storage(proxy, ContractFactory::eip1967_slot(), logic.to_word());
  host_.set_storage(proxy, to_u256(proxion::crypto::eip1967_admin_slot()),
                    admin.to_word());

  // A regular user always falls through to the delegating fallback.
  EXPECT_EQ(U256::from_be_slice(
                call(proxy, with_selector(selector_u32("ping()"))).return_data),
            U256{0xcafe});

  // The admin reaches the admin dispatcher instead: upgradeTo works...
  const Address new_impl = Address::from_label("new-impl");
  Interpreter interp(host_);
  CallParams params;
  params.code_address = proxy;
  params.storage_address = proxy;
  params.caller = admin;
  params.origin = admin;
  params.calldata =
      with_selector(selector_u32("upgradeTo(address)"), new_impl.to_word());
  EXPECT_EQ(interp.execute(params).halt, HaltReason::kStop);
  EXPECT_EQ(host_.get_storage(proxy, ContractFactory::eip1967_slot()),
            new_impl.to_word());

  // ... and the admin can NEVER hit the fallback (collision-proof, §3.1 fn2).
  params.calldata = with_selector(selector_u32("ping()"));
  EXPECT_EQ(interp.execute(params).halt, HaltReason::kRevert);
}

TEST_F(FactoryTest, DiamondProxyOnlyServesRegisteredSelectors) {
  const Bytes logic_code = ContractFactory::plain_contract({
      {.prototype = "facetFn()", .body = BodyKind::kReturnConstant,
       .aux = U256{0xfa}},
  });
  const Address logic = deploy(logic_code);
  const Address diamond = deploy(ContractFactory::diamond_proxy());

  // Register facetFn() in the diamond's selector mapping.
  const std::uint32_t sel = selector_u32("facetFn()");
  std::array<std::uint8_t, 64> preimage{};
  const auto sel_word = U256{sel}.to_be_bytes();
  std::copy(sel_word.begin(), sel_word.end(), preimage.begin());
  const auto base = ContractFactory::diamond_base_slot().to_be_bytes();
  std::copy(base.begin(), base.end(), preimage.begin() + 32);
  const U256 slot = to_u256(proxion::crypto::keccak256(preimage));
  host_.set_storage(diamond, slot, logic.to_word());

  // Registered selector delegates; unregistered reverts.
  EXPECT_EQ(U256::from_be_slice(call(diamond, with_selector(sel)).return_data),
            U256{0xfa});
  EXPECT_EQ(call(diamond, with_selector(0x31337aaa)).halt,
            HaltReason::kRevert);
}

TEST_F(FactoryTest, LibraryUserDelegatesOutsideFallback) {
  const Address lib = deploy(ContractFactory::math_library());
  const Address user_contract = deploy(ContractFactory::library_user(lib));

  // The delegatecall happens only via the *named* function...
  const ExecResult r =
      call(user_contract, with_selector(selector_u32("compute(uint256)")));
  EXPECT_EQ(r.halt, HaltReason::kStop);
  // ... while unknown selectors revert (no delegating fallback).
  EXPECT_EQ(call(user_contract, with_selector(0xdeadc0de)).halt,
            HaltReason::kRevert);
}

TEST_F(FactoryTest, HoneypotCollisionHijacksLureSelector) {
  const std::uint32_t lure = selector_u32("free_ether_withdrawal()");
  const Address logic = deploy(ContractFactory::honeypot_logic(lure));
  const Address proxy = deploy(ContractFactory::honeypot_proxy(U256{1}, lure));
  host_.set_storage(proxy, U256{1}, logic.to_word());

  // Calling the lure through the proxy executes the PROXY's colliding
  // function (which marks the caller as "robbed"), not the logic's payout.
  const ExecResult r = call(proxy, with_selector(lure));
  EXPECT_EQ(r.halt, HaltReason::kStop);
  EXPECT_EQ(host_.get_storage(proxy, U256{99}), user_.to_word());
}

TEST_F(FactoryTest, AudiusPairReinitializesThroughCollision) {
  const Address logic = deploy(ContractFactory::audius_style_logic());
  const Address proxy = deploy(ContractFactory::audius_style_proxy());
  host_.set_storage(proxy, U256{1}, logic.to_word());
  // Fresh proxy: slot 0 (owner) is zero, so initialize()'s bool check sees
  // "not initialized" and the attacker becomes the owner.
  const ExecResult r =
      call(proxy, with_selector(selector_u32("initialize()")));
  // The delegatecall succeeds and the proxy fallback RETURNs its (empty)
  // return data.
  EXPECT_EQ(r.halt, HaltReason::kReturn);
  EXPECT_EQ(host_.get_storage(proxy, U256{0}), user_.to_word());
}

TEST_F(FactoryTest, GarbagePush4BodyExecutes) {
  const Address c = deploy(ContractFactory::garbage_push4_contract());
  const ExecResult r = call(c, with_selector(selector_u32("magic()")));
  EXPECT_EQ(r.halt, HaltReason::kReturn);
  EXPECT_EQ(r.return_data.size(), 0x40u);
  EXPECT_EQ(r.return_data[28], 0xde);  // 0xdeadbeef right-aligned in word 0
}

TEST_F(FactoryTest, TokenContractSaltChangesBytecode) {
  EXPECT_NE(ContractFactory::token_contract(1),
            ContractFactory::token_contract(2));
  EXPECT_EQ(ContractFactory::token_contract(7),
            ContractFactory::token_contract(7));
}

}  // namespace
