// The span tracer and its exports: deterministic Chrome trace_event JSON
// under an injected clock, NDJSON well-formedness, ring-wrap accounting, and
// the pipeline integration — phase spans, per-contract spans, sub-analysis
// spans, and proper nesting by time containment.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/report.h"
#include "datagen/population.h"
#include "obs/trace.h"

namespace {

using namespace proxion;
using core::AnalysisPipeline;
using core::LandscapeStats;
using core::PipelineConfig;
using datagen::Population;
using datagen::PopulationGenerator;
using datagen::PopulationSpec;
using obs::Span;
using obs::SpanRecord;
using obs::Tracer;

/// Deterministic clock: every call advances time by 1us.
obs::TraceClock fake_clock() {
  auto t = std::make_shared<std::atomic<std::uint64_t>>(0);
  return [t] { return t->fetch_add(1'000, std::memory_order_relaxed); };
}

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream out;
  out << f.rdbuf();
  return out.str();
}

bool contains_span(const std::vector<SpanRecord>& spans, const char* name) {
  for (const SpanRecord& s : spans) {
    if (std::string_view(s.name) == name) return true;
  }
  return false;
}

/// Interval containment: does `outer` fully cover `inner`?
bool covers(const SpanRecord& outer, const SpanRecord& inner) {
  return outer.start_ns <= inner.start_ns &&
         inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns;
}

TEST(TracerTest, RecordsSpansWithInjectedClock) {
  Tracer tracer(fake_clock());
  {
    Span outer(&tracer, "outer");
    Span inner(&tracer, "inner");
    inner.arg("k", 7);
  }
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  // Sorted parents-first: outer starts at t=0, inner at t=1us.
  EXPECT_STREQ(spans[0].name, "outer");
  EXPECT_STREQ(spans[1].name, "inner");
  EXPECT_TRUE(covers(spans[0], spans[1]));
  EXPECT_EQ(spans[1].arg, 7);
  EXPECT_EQ(tracer.recorded(), 2u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TracerTest, NullTracerSpanIsANoOp) {
  Span s(nullptr, "nothing");
  s.arg("k", 1);
  // Destructor must not touch anything; reaching here is the test.
}

TEST(TracerTest, RingWrapOverwritesOldestAndCountsDrops) {
  Tracer tracer(fake_clock(), /*ring_capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    Span s(&tracer, "s");
  }
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 4u);
  // The retained window is the most recent spans (the last 4 of 10).
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GT(spans[i].start_ns, spans[0].start_ns);
  }
}

TEST(TracerTest, ClearEmptiesRingsButKeepsThreadRegistration) {
  Tracer tracer(fake_clock());
  { Span s(&tracer, "a"); }
  tracer.clear();
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_TRUE(tracer.spans().empty());
  { Span s(&tracer, "b"); }
  EXPECT_EQ(tracer.spans().size(), 1u);
}

TEST(TracerTest, ChromeJsonIsSchemaShapedAndDeterministic) {
  auto make = [] {
    Tracer tracer(fake_clock());
    {
      Span outer(&tracer, "phase:demo");
      Span inner(&tracer, "work");
      inner.arg("index", 3);
    }
    return tracer.chrome_trace_json();
  };
  const std::string json = make();
  // Object form with a traceEvents array of complete events.
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"phase:demo\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"index\":3}"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_EQ(json.substr(json.size() - 4), "\n]}\n");
  // Byte-identical across fresh tracer + fresh fake clock.
  EXPECT_EQ(json, make());
}

TEST(TracerTest, NdjsonIsOneWellFormedObjectPerLine) {
  Tracer tracer(fake_clock());
  {
    Span a(&tracer, "a");
    Span b(&tracer, "b");
    b.arg("ok", 1);
  }
  std::istringstream lines(tracer.ndjson());
  std::string line;
  int n = 0;
  while (std::getline(lines, line)) {
    ++n;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"name\":\""), std::string::npos);
    EXPECT_NE(line.find("\"ts_ns\":"), std::string::npos);
    EXPECT_NE(line.find("\"dur_ns\":"), std::string::npos);
  }
  EXPECT_EQ(n, 2);
}

class PipelineTraceTest : public ::testing::Test {
 protected:
  static Population make_population(std::uint32_t n) {
    PopulationSpec spec;
    spec.total_contracts = n;
    return PopulationGenerator().generate(spec);
  }

  /// Single-threaded pipeline with a fake clock and trace export — fully
  /// deterministic spans and files.
  static PipelineConfig traced_config(const std::string& trace_path,
                                      const std::string& events_path) {
    PipelineConfig config;
    config.threads = 1;
    config.telemetry.trace_path = trace_path;
    config.telemetry.events_path = events_path;
    config.telemetry.clock = fake_clock();
    return config;
  }
};

TEST_F(PipelineTraceTest, SweepEmitsAllPhaseAndSubAnalysisSpans) {
  Population pop = make_population(150);
  const std::string trace_path = ::testing::TempDir() + "proxion_trace.json";
  const std::string events_path = ::testing::TempDir() + "proxion_events.ndjson";
  AnalysisPipeline pipeline(*pop.chain, &pop.sources,
                            traced_config(trace_path, events_path));
  const auto reports = pipeline.run(pop.sweep_inputs());
  ASSERT_NE(pipeline.tracer(), nullptr);
  const auto spans = pipeline.tracer()->spans();

  // All three phases, the per-contract spans, and every sub-analysis kind
  // this population exercises.
  EXPECT_TRUE(contains_span(spans, "phase:fetch"));
  EXPECT_TRUE(contains_span(spans, "phase:proxy"));
  EXPECT_TRUE(contains_span(spans, "phase:pairs"));
  EXPECT_TRUE(contains_span(spans, "contract"));
  EXPECT_TRUE(contains_span(spans, "proxy-detect"));
  EXPECT_TRUE(contains_span(spans, "logic-search"));
  EXPECT_TRUE(contains_span(spans, "collision-check"));
  EXPECT_TRUE(contains_span(spans, "rpc:get_code"));
  // Storage reads are batched through the coalescer, so the RPC span the
  // tracing decorator emits is the batch variant.
  EXPECT_TRUE(contains_span(spans, "rpc:get_storage_at_many"));

  // The exports exist and carry the phase spans.
  const std::string json = slurp(trace_path);
  EXPECT_NE(json.find("\"name\":\"phase:pairs\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"proxy-detect\""), std::string::npos);
  const std::string ndjson = slurp(events_path);
  EXPECT_NE(ndjson.find("\"name\":\"contract\""), std::string::npos);

  // Telemetry summaries surface through the landscape stats + report text.
  const LandscapeStats stats = pipeline.summarize(reports);
  EXPECT_GT(stats.trace_spans_recorded, 0u);
  EXPECT_GT(stats.contract_latency_ns.count, 0u);
  EXPECT_GT(stats.rpc_latency_ns.count, 0u);
  EXPECT_GT(stats.emulation_steps.count, 0u);
  const std::string text = core::render_landscape_text(stats);
  EXPECT_NE(text.find("latency (telemetry):"), std::string::npos);
  EXPECT_NE(text.find("p99="), std::string::npos);
}

TEST_F(PipelineTraceTest, SpansNestByTimeContainment) {
  Population pop = make_population(120);
  const std::string trace_path = ::testing::TempDir() + "proxion_nest.json";
  AnalysisPipeline pipeline(*pop.chain, &pop.sources,
                            traced_config(trace_path, ""));
  pipeline.run(pop.sweep_inputs());
  const auto spans = pipeline.tracer()->spans();

  std::vector<SpanRecord> phases, contracts;
  for (const SpanRecord& s : spans) {
    const std::string_view name(s.name);
    if (name.substr(0, 6) == "phase:") phases.push_back(s);
    if (name == "contract") contracts.push_back(s);
  }
  ASSERT_EQ(phases.size(), 3u);
  ASSERT_FALSE(contracts.empty());

  auto covered_by_any = [](const std::vector<SpanRecord>& outers,
                           const SpanRecord& inner) {
    for (const SpanRecord& o : outers) {
      if (covers(o, inner)) return true;
    }
    return false;
  };
  // Every contract span sits inside a phase span; every sub-analysis span
  // sits inside a contract span (proxy-detect ⊂ contract ⊂ phase).
  for (const SpanRecord& c : contracts) {
    EXPECT_TRUE(covered_by_any(phases, c));
  }
  for (const SpanRecord& s : spans) {
    const std::string_view name(s.name);
    if (name == "proxy-detect" || name == "logic-search" ||
        name == "collision-check") {
      EXPECT_TRUE(covered_by_any(contracts, s)) << name;
    }
  }
}

TEST_F(PipelineTraceTest, TraceFilesAreByteIdenticalAcrossRuns) {
  const std::string p1 = ::testing::TempDir() + "proxion_det1.json";
  const std::string p2 = ::testing::TempDir() + "proxion_det2.json";
  auto run_once = [&](const std::string& path) {
    Population pop = make_population(100);
    AnalysisPipeline pipeline(*pop.chain, &pop.sources,
                              traced_config(path, path + ".ndjson"));
    pipeline.run(pop.sweep_inputs());
  };
  run_once(p1);
  run_once(p2);
  const std::string j1 = slurp(p1), j2 = slurp(p2);
  ASSERT_FALSE(j1.empty());
  EXPECT_EQ(j1, j2);
  EXPECT_EQ(slurp(p1 + ".ndjson"), slurp(p2 + ".ndjson"));
}

TEST_F(PipelineTraceTest, SamplingThinsContractSpansButKeepsPhases) {
  Population pop = make_population(120);
  PipelineConfig config = traced_config(
      ::testing::TempDir() + "proxion_sampled.json", "");
  config.telemetry.sample_every_n = 10;
  AnalysisPipeline pipeline(*pop.chain, &pop.sources, config);
  const auto reports = pipeline.run(pop.sweep_inputs());
  const auto spans = pipeline.tracer()->spans();

  std::size_t phase_count = 0, contract_count = 0;
  for (const SpanRecord& s : spans) {
    const std::string_view name(s.name);
    if (name.substr(0, 6) == "phase:") ++phase_count;
    if (name == "contract") ++contract_count;
  }
  EXPECT_EQ(phase_count, 3u);
  EXPECT_GT(contract_count, 0u);
  // At 1-in-10 sampling the trace holds far fewer contract spans than the
  // population (Phase A + Phase B each contribute at most ceil(n/10)).
  EXPECT_LE(contract_count, 2 * (reports.size() / 10 + 1));

  // Sampling thins the trace only — histograms still see every contract.
  const LandscapeStats stats = pipeline.summarize(reports);
  EXPECT_EQ(stats.contract_latency_ns.count, reports.size());
}

TEST_F(PipelineTraceTest, DisabledTelemetryReportsNothing) {
  Population pop = make_population(100);
  PipelineConfig config;
  config.threads = 1;
  config.telemetry.enabled = false;
  config.telemetry.trace_path = ::testing::TempDir() + "proxion_off.json";
  AnalysisPipeline pipeline(*pop.chain, &pop.sources, config);
  const auto reports = pipeline.run(pop.sweep_inputs());
  EXPECT_EQ(pipeline.tracer(), nullptr);  // master switch wins over paths
  const LandscapeStats stats = pipeline.summarize(reports);
  EXPECT_EQ(stats.contract_latency_ns.count, 0u);
  EXPECT_EQ(stats.trace_spans_recorded, 0u);
  const std::string text = core::render_landscape_text(stats);
  EXPECT_EQ(text.find("latency (telemetry):"), std::string::npos);
}

TEST_F(PipelineTraceTest, DefaultConfigStillReportsLatencyPercentiles) {
  // The acceptance criterion: a default-config sweep (no trace paths, no
  // injected clock) reports per-contract and per-RPC percentiles.
  Population pop = make_population(150);
  AnalysisPipeline pipeline(*pop.chain, &pop.sources);
  const auto reports = pipeline.run(pop.sweep_inputs());
  const LandscapeStats stats = pipeline.summarize(reports);
  EXPECT_EQ(stats.contract_latency_ns.count, reports.size());
  EXPECT_GT(stats.rpc_latency_ns.count, 0u);
  EXPECT_LE(stats.contract_latency_ns.p50, stats.contract_latency_ns.p99);
  const std::string text = core::render_landscape_text(stats);
  EXPECT_NE(text.find("per contract:"), std::string::npos);
  EXPECT_NE(text.find("per rpc:"), std::string::npos);
}

}  // namespace
