// Unit tests for the fault-injecting model filesystem: the two-layer
// durability model (inode content vs directory entries), torn appends after
// reboot, ENOSPC budgets, fsyncgate dirty-page drop, power-cut halting, and
// the determinism the chaos matrix depends on.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <string>
#include <vector>

#include "util/vfs_fault.h"

namespace {

using namespace proxion;
using util::FaultInjectingVfs;
using util::FaultVfsConfig;
using util::PowerCutException;
using util::Vfs;
using util::VfsFile;

std::vector<std::uint8_t> bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

void must_write(VfsFile& f, const std::string& s) {
  ASSERT_TRUE(f.write(bytes(s)));
}

TEST(FaultVfs, WriteSyncReadBack) {
  FaultInjectingVfs vfs;
  auto f = vfs.open("dir/a", Vfs::OpenMode::kTruncate);
  ASSERT_NE(f, nullptr);
  must_write(*f, "hello");
  ASSERT_TRUE(f->sync());
  const auto back = vfs.read_file("dir/a");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, bytes("hello"));
}

TEST(FaultVfs, FileContentAndDirectoryEntryAreSeparatelyDurable) {
  FaultInjectingVfs vfs;
  auto f = vfs.open("dir/a", Vfs::OpenMode::kTruncate);
  ASSERT_NE(f, nullptr);
  must_write(*f, "payload");
  ASSERT_TRUE(f->sync());
  // Content is synced but the directory entry is not: a crash right now
  // loses the FILE, not just its bytes — the classic create-without-
  // dir-fsync hole.
  EXPECT_TRUE(vfs.exists("dir/a"));
  EXPECT_FALSE(vfs.durable_exists("dir/a"));
  vfs.reboot();
  EXPECT_FALSE(vfs.exists("dir/a"));

  // Same sequence with the dir fsync: the file survives with its content.
  auto g = vfs.open("dir/b", Vfs::OpenMode::kTruncate);
  ASSERT_NE(g, nullptr);
  must_write(*g, "payload");
  ASSERT_TRUE(g->sync());
  ASSERT_TRUE(vfs.sync_dir("dir/b"));
  EXPECT_TRUE(vfs.durable_exists("dir/b"));
  vfs.reboot();
  ASSERT_TRUE(vfs.exists("dir/b"));
  EXPECT_EQ(*vfs.read_file("dir/b"), bytes("payload"));
}

TEST(FaultVfs, RebootKeepsSyncedContentPlusDeterministicTornTail) {
  FaultInjectingVfs vfs(FaultVfsConfig{.seed = 7});
  auto f = vfs.open("dir/a", Vfs::OpenMode::kTruncate);
  ASSERT_NE(f, nullptr);
  must_write(*f, "durable");
  ASSERT_TRUE(f->sync());
  ASSERT_TRUE(vfs.sync_dir("dir/a"));
  must_write(*f, "dirtydirtydirty");  // never synced
  vfs.reboot();
  const auto back = vfs.read_file("dir/a");
  ASSERT_TRUE(back.has_value());
  const std::vector<std::uint8_t> full = bytes("durabledirtydirtydirty");
  // The synced prefix always survives; some deterministic prefix of the
  // dirty tail may too (a torn append), never more.
  ASSERT_GE(back->size(), bytes("durable").size());
  ASSERT_LE(back->size(), full.size());
  EXPECT_TRUE(std::equal(back->begin(), back->end(), full.begin()));
}

TEST(FaultVfs, RenameIsDurableOnlyAfterDirSync) {
  FaultInjectingVfs vfs;
  // Existing durable file "m".
  {
    auto f = vfs.open("d/m", Vfs::OpenMode::kTruncate);
    ASSERT_NE(f, nullptr);
    must_write(*f, "old");
    ASSERT_TRUE(f->sync());
    ASSERT_TRUE(vfs.sync_dir("d/m"));
  }
  // Write-temp-then-rename WITHOUT the dir fsync: a reboot resurrects the
  // old content.
  {
    auto t = vfs.open("d/m.tmp", Vfs::OpenMode::kTruncate);
    ASSERT_NE(t, nullptr);
    must_write(*t, "new");
    ASSERT_TRUE(t->sync());
  }
  ASSERT_TRUE(vfs.rename("d/m.tmp", "d/m"));
  EXPECT_EQ(*vfs.read_file("d/m"), bytes("new"));
  vfs.reboot();
  EXPECT_EQ(*vfs.read_file("d/m"), bytes("old"));

  // Same protocol WITH the dir fsync: the rename sticks.
  {
    auto t = vfs.open("d/m.tmp", Vfs::OpenMode::kTruncate);
    ASSERT_NE(t, nullptr);
    must_write(*t, "new2");
    ASSERT_TRUE(t->sync());
  }
  ASSERT_TRUE(vfs.rename("d/m.tmp", "d/m"));
  ASSERT_TRUE(vfs.sync_dir("d/m"));
  vfs.reboot();
  EXPECT_EQ(*vfs.read_file("d/m"), bytes("new2"));
  EXPECT_FALSE(vfs.exists("d/m.tmp"));
}

TEST(FaultVfs, EnospcBudgetIsStickyAndReportsErrno) {
  FaultVfsConfig cfg;
  cfg.enospc_after_bytes = 10;
  FaultInjectingVfs vfs(cfg);
  auto f = vfs.open("a", Vfs::OpenMode::kTruncate);
  ASSERT_NE(f, nullptr);
  ASSERT_TRUE(f->write(bytes("12345678")));  // 8 of 10 bytes used
  const util::VfsStatus st = f->write(bytes("abcdef"));
  EXPECT_FALSE(st.ok);
  EXPECT_EQ(st.err, ENOSPC);
  // The prefix that fit was applied (a torn write), nothing more ever is.
  EXPECT_EQ(*vfs.peek("a"), bytes("12345678ab"));
  EXPECT_FALSE(f->write(bytes("x")).ok);
}

TEST(FaultVfs, FsyncgateDropsDirtyPagesAndLaterSyncLies) {
  FaultVfsConfig cfg;
  cfg.fail_fsync_at = 1;  // second sync on the filesystem fails
  FaultInjectingVfs vfs(cfg);
  auto f = vfs.open("a", Vfs::OpenMode::kTruncate);
  ASSERT_NE(f, nullptr);
  must_write(*f, "safe");
  ASSERT_TRUE(f->sync());  // sync #0: ok
  must_write(*f, "doomed");
  const util::VfsStatus st = f->sync();  // sync #1: fails, drops dirty pages
  EXPECT_FALSE(st.ok);
  EXPECT_EQ(st.err, EIO);
  // The trap this models: a RETRIED fsync reports success — but the dirty
  // data is already gone. Callers must fail-stop, never retry.
  EXPECT_TRUE(f->sync());
  EXPECT_EQ(*vfs.peek("a"), bytes("safe"));
  EXPECT_EQ(vfs.fsync_calls("a"), 3u);
}

TEST(FaultVfs, PowerCutHaltsTheWorldUntilReboot) {
  FaultVfsConfig cfg;
  cfg.power_cut_at = 3;  // open(create)=0, write=1, sync=2, write=3 -> cut
  FaultInjectingVfs vfs(cfg);
  auto f = vfs.open("a", Vfs::OpenMode::kTruncate);
  ASSERT_NE(f, nullptr);
  must_write(*f, "committed");
  ASSERT_TRUE(f->sync());
  EXPECT_THROW((void)f->write(bytes("never")), PowerCutException);
  // The machine is off: EVERY operation throws, even reads.
  EXPECT_THROW((void)vfs.read_file("a"), PowerCutException);
  EXPECT_THROW((void)vfs.open("b", Vfs::OpenMode::kTruncate),
               PowerCutException);
  vfs.heal();  // clears power_cut_at for the next life
  vfs.reboot();
  // Entry was never dir-synced, so the file is gone entirely — and the
  // handle from the previous life is stale, not usable.
  EXPECT_FALSE(vfs.exists("a"));
  EXPECT_FALSE(f->write(bytes("stale")).ok);
}

TEST(FaultVfs, DeterministicAcrossIdenticalRuns) {
  auto run = [](std::uint64_t seed) {
    FaultVfsConfig cfg;
    cfg.seed = seed;
    cfg.write_eio_rate = 0.3;
    cfg.short_write_rate = 0.3;
    FaultInjectingVfs vfs(cfg);
    auto f = vfs.open("a", Vfs::OpenMode::kTruncate);
    std::vector<bool> outcomes;
    for (int i = 0; i < 64; ++i) {
      outcomes.push_back(bool(f->write(bytes("0123456789"))));
    }
    auto content = vfs.peek("a");
    return std::pair(outcomes, *content);
  };
  const auto a = run(42);
  const auto b = run(42);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  // A different seed draws a different fault pattern (with 64 ops at 60%
  // fault rate, identical outcomes would be astronomically unlikely).
  const auto c = run(43);
  EXPECT_NE(a.first, c.first);
}

TEST(FaultVfs, FlipByteCorruptsDurableContent) {
  FaultInjectingVfs vfs;
  auto f = vfs.open("a", Vfs::OpenMode::kTruncate);
  must_write(*f, "abc");
  ASSERT_TRUE(f->sync());
  ASSERT_TRUE(vfs.sync_dir("a"));
  EXPECT_TRUE(vfs.flip_byte("a", 1));
  EXPECT_FALSE(vfs.flip_byte("a", 99));
  EXPECT_FALSE(vfs.flip_byte("missing", 0));
  const auto back = *vfs.read_file("a");
  EXPECT_EQ(back[0], 'a');
  EXPECT_EQ(back[1], static_cast<std::uint8_t>('b' ^ 0xFF));
  // The corruption is at rest: it survives a reboot.
  vfs.reboot();
  EXPECT_EQ((*vfs.read_file("a"))[1], static_cast<std::uint8_t>('b' ^ 0xFF));
}

TEST(FaultVfs, MutatingOpCountGivesPowerCutBoundaries) {
  // Fault-free reference run counts the boundaries; a power cut at every
  // index < mutating_ops() is then a distinct crash point. Verify the
  // counter covers exactly the mutating surface.
  FaultInjectingVfs vfs;
  auto f = vfs.open("d/a", Vfs::OpenMode::kTruncate);  // op 0
  must_write(*f, "x");                                 // op 1
  ASSERT_TRUE(f->sync());                              // op 2
  ASSERT_TRUE(vfs.sync_dir("d/a"));                    // op 3
  ASSERT_TRUE(vfs.rename("d/a", "d/b"));               // op 4
  ASSERT_TRUE(vfs.remove("d/b"));                      // op 5
  ASSERT_TRUE(f->truncate(0));                         // op 6
  (void)vfs.read_file("d/b");                          // reads don't count
  EXPECT_EQ(vfs.mutating_ops(), 7u);
}

}  // namespace
