// The chaos matrix: a durable sweep over the fault-injecting model
// filesystem, power-cut at EVERY mutating-op boundary, then heal + reboot +
// resume — asserting the resumed sweep is bit-identical to a fault-free run
// and that committed work is never recomputed. Plus the three targeted
// disasters: ENOSPC mid-sweep (graceful in-memory degradation), fsync
// failure (fsyncgate fail-stop: the failed file is never synced again), and
// at-rest bit rot in a committed shard (self-heal recomputes exactly the
// damaged hash group).
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/report.h"
#include "datagen/population.h"
#include "obs/metrics.h"
#include "store/durable_sweep.h"
#include "store/journal.h"
#include "store/records.h"
#include "util/vfs_fault.h"

namespace {

using namespace proxion;
using util::FaultInjectingVfs;
using util::FaultVfsConfig;
using util::PowerCutException;

constexpr char kJournal[] = "chaos/sweep.journal";

datagen::Population make_population(std::uint32_t n = 240) {
  datagen::PopulationSpec spec;
  spec.total_contracts = n;
  return datagen::PopulationGenerator().generate(spec);
}

/// The deterministic analysis aggregates (same set test_durable_sweep
/// checks): everything except wall-clock and cache accounting.
void expect_same_verdicts(const core::LandscapeStats& a,
                          const core::LandscapeStats& b) {
  EXPECT_EQ(a.total_contracts, b.total_contracts);
  EXPECT_EQ(a.proxies, b.proxies);
  EXPECT_EQ(a.emulation_errors, b.emulation_errors);
  EXPECT_EQ(a.hidden_proxies, b.hidden_proxies);
  EXPECT_EQ(a.unique_proxy_codehashes, b.unique_proxy_codehashes);
  EXPECT_EQ(a.function_collisions, b.function_collisions);
  EXPECT_EQ(a.storage_collisions, b.storage_collisions);
  EXPECT_EQ(a.exploitable_storage_collisions, b.exploitable_storage_collisions);
  EXPECT_EQ(a.diamonds_recovered, b.diamonds_recovered);
  EXPECT_EQ(a.by_standard, b.by_standard);
  EXPECT_EQ(a.proxies_by_year, b.proxies_by_year);
  EXPECT_EQ(a.function_collisions_by_year, b.function_collisions_by_year);
  EXPECT_EQ(a.storage_collisions_by_year, b.storage_collisions_by_year);
  EXPECT_EQ(a.pairs_by_source, b.pairs_by_source);
  EXPECT_EQ(a.upgrade_histogram, b.upgrade_histogram);
  EXPECT_EQ(a.total_upgrade_events, b.total_upgrade_events);
  EXPECT_EQ(a.quarantined, b.quarantined);
  EXPECT_EQ(a.analyzed_contracts, b.analyzed_contracts);
  EXPECT_EQ(a.errors_by_kind, b.errors_by_kind);
}

store::DurableSweepConfig sweep_config(util::Vfs& vfs,
                                       obs::Registry* reg = nullptr) {
  store::DurableSweepConfig sc;
  sc.journal_path = kJournal;
  sc.shard_size = 60;
  sc.vfs = &vfs;
  sc.registry = reg;
  return sc;
}

store::DurableSweepResult run_sweep(datagen::Population& pop,
                                    const std::vector<core::SweepInput>& inputs,
                                    util::Vfs& vfs,
                                    obs::Registry* reg = nullptr) {
  core::AnalysisPipeline pipeline(*pop.chain, &pop.sources, {});
  store::DurableSweep sweep(pipeline, *pop.chain, &pop.sources,
                            sweep_config(vfs, reg));
  return sweep.run(inputs);
}

store::DurableSweepResult resume_sweep(
    datagen::Population& pop, const std::vector<core::SweepInput>& inputs,
    util::Vfs& vfs, obs::Registry* reg = nullptr) {
  core::AnalysisPipeline pipeline(*pop.chain, &pop.sources, {});
  store::DurableSweep sweep(pipeline, *pop.chain, &pop.sources,
                            sweep_config(vfs, reg));
  return sweep.resume(inputs);
}

TEST(ChaosCrash, PowerCutAtEveryBoundaryResumesBitIdentical) {
  datagen::Population pop = make_population();
  const auto inputs = pop.sweep_inputs();

  // Fault-free reference through the model filesystem: the verdict oracle
  // AND the boundary count (the op sequence is deterministic, so every
  // index in [0, boundaries) is a distinct crash point).
  FaultInjectingVfs ref_vfs;
  const store::DurableSweepResult ref = run_sweep(pop, inputs, ref_vfs);
  ASSERT_TRUE(ref.error.empty()) << ref.error;
  ASSERT_TRUE(ref.complete);
  ASSERT_GE(ref.shards_run, 4u) << "population/shard_size must give >=4 "
                                   "shards for a meaningful matrix";
  const std::uint64_t boundaries = ref_vfs.mutating_ops();
  ASSERT_GT(boundaries, 20u);

  std::uint64_t cuts_with_commits = 0;
  for (std::uint64_t b = 0; b < boundaries; ++b) {
    SCOPED_TRACE("power cut at mutating-op boundary " + std::to_string(b));
    FaultVfsConfig cfg;
    cfg.power_cut_at = static_cast<std::int64_t>(b);
    FaultInjectingVfs vfs(cfg);

    bool cut = false;
    try {
      (void)run_sweep(pop, inputs, vfs);
    } catch (const PowerCutException&) {
      cut = true;
    }
    ASSERT_TRUE(cut);  // the reference guarantees op b exists

    vfs.heal();
    vfs.reboot();

    // Whatever the manifest committed before the cut must replay with zero
    // recomputation; resume finishes the rest bit-identically.
    const auto manifest =
        store::load_manifest(store::manifest_path_for(kJournal), vfs);
    const std::uint64_t committed =
        manifest ? manifest->contracts_committed : 0;
    if (committed > 0) ++cuts_with_commits;

    const store::DurableSweepResult res = resume_sweep(pop, inputs, vfs);
    ASSERT_TRUE(res.error.empty()) << res.error;
    ASSERT_TRUE(res.complete);
    EXPECT_FALSE(res.degraded);
    EXPECT_GE(res.replayed, committed);
    EXPECT_EQ(res.replayed + res.recomputed, inputs.size());
    expect_same_verdicts(res.stats, ref.stats);

    // The journal reads back whole after the resume, and the manifest
    // records full coverage.
    const auto replay = store::read_journal(kJournal, vfs);
    ASSERT_TRUE(replay.has_value());
    EXPECT_FALSE(replay->tail_dropped);
    ASSERT_FALSE(replay->frames.empty());
    EXPECT_EQ(replay->frames.back().type, store::RecordType::kSweepEnd);
    const auto final_manifest =
        store::load_manifest(store::manifest_path_for(kJournal), vfs);
    ASSERT_TRUE(final_manifest.has_value());
    EXPECT_TRUE(final_manifest->complete);
    EXPECT_EQ(final_manifest->contracts_committed, inputs.size());
  }
  // The matrix must include cuts AFTER durable commits, or the
  // zero-recompute claim was never exercised.
  EXPECT_GT(cuts_with_commits, boundaries / 2);
}

TEST(ChaosCrash, EnospcMidSweepCompletesDegradedThenResumesClean) {
  datagen::Population pop = make_population();
  const auto inputs = pop.sweep_inputs();

  FaultInjectingVfs ref_vfs;
  const store::DurableSweepResult ref = run_sweep(pop, inputs, ref_vfs);
  ASSERT_TRUE(ref.error.empty()) << ref.error;
  const std::uint64_t journal_size = ref_vfs.peek(kJournal)->size();

  // Disk fills mid-sweep: after roughly half the journal's bytes.
  FaultVfsConfig cfg;
  cfg.enospc_after_bytes = static_cast<std::int64_t>(journal_size / 2);
  FaultInjectingVfs vfs(cfg);
  obs::Registry reg;
  const store::DurableSweepResult res = run_sweep(pop, inputs, vfs, &reg);

  // Verdicts complete and correct; checkpointing stopped at the last good
  // commit; the failure is reported with its taxonomy kind and gauge.
  ASSERT_TRUE(res.error.empty()) << res.error;
  EXPECT_TRUE(res.complete);
  EXPECT_TRUE(res.degraded);
  ASSERT_TRUE(res.disk_error.has_value());
  EXPECT_EQ(res.disk_error->kind, core::ErrorKind::kDiskIo);
  EXPECT_FALSE(res.disk_error->detail.empty());
  EXPECT_EQ(res.stats.sweep_degraded, 1u);
  EXPECT_EQ(reg.gauge("sweep.degraded").value(), 1);
  expect_same_verdicts(res.stats, ref.stats);

  // At least one shard made it to disk before the disk filled.
  const auto manifest =
      store::load_manifest(store::manifest_path_for(kJournal), vfs);
  ASSERT_TRUE(manifest.has_value());
  EXPECT_FALSE(manifest->complete);
  ASSERT_GT(manifest->contracts_committed, 0u);
  ASSERT_LT(manifest->contracts_committed, inputs.size());

  // Operator frees disk space; resume finishes the checkpoint without
  // recomputing the committed prefix.
  vfs.heal();
  obs::Registry reg2;
  const store::DurableSweepResult healed = resume_sweep(pop, inputs, vfs, &reg2);
  ASSERT_TRUE(healed.error.empty()) << healed.error;
  EXPECT_TRUE(healed.complete);
  EXPECT_FALSE(healed.degraded);
  EXPECT_EQ(reg2.gauge("sweep.degraded").value(), 0);
  EXPECT_GE(healed.replayed, manifest->contracts_committed);
  EXPECT_EQ(healed.replayed + healed.recomputed, inputs.size());
  expect_same_verdicts(healed.stats, ref.stats);
}

TEST(ChaosCrash, FsyncFailureFailsStopAndNeverSyncsThatFileAgain) {
  datagen::Population pop = make_population();
  const auto inputs = pop.sweep_inputs();

  FaultInjectingVfs ref_vfs;
  const store::DurableSweepResult ref = run_sweep(pop, inputs, ref_vfs);
  ASSERT_TRUE(ref.error.empty()) << ref.error;
  // Fault-free journal sync schedule: create + one per shard + finish.
  const std::uint64_t ref_journal_syncs = ref_vfs.fsync_calls(kJournal);
  ASSERT_GE(ref_journal_syncs, 6u);

  // Global sync #3 is the journal sync of the SECOND shard commit (create
  // =0, shard-0 journal=1, shard-0 manifest tmp=2): it fails and the model
  // drops the dirty pages — the fsyncgate scenario where a retry would
  // "succeed" over lost data.
  FaultVfsConfig cfg;
  cfg.fail_fsync_at = 3;
  FaultInjectingVfs vfs(cfg);
  obs::Registry reg;
  const store::DurableSweepResult res = run_sweep(pop, inputs, vfs, &reg);

  ASSERT_TRUE(res.error.empty()) << res.error;
  EXPECT_TRUE(res.complete);
  EXPECT_TRUE(res.degraded);
  ASSERT_TRUE(res.disk_error.has_value());
  EXPECT_EQ(res.disk_error->kind, core::ErrorKind::kDiskIo);
  EXPECT_NE(res.disk_error->detail.find("fsync"), std::string::npos);
  expect_same_verdicts(res.stats, ref.stats);

  // THE fsyncgate assertion: after the failed sync the writer dropped the
  // file — exactly 3 fsync attempts ever touched the journal (create,
  // shard 0, the shard-1 failure), far short of the fault-free schedule.
  EXPECT_EQ(vfs.fsync_calls(kJournal), 3u);
  EXPECT_LT(vfs.fsync_calls(kJournal), ref_journal_syncs);

  // Only shard 0 is on record as committed.
  const auto manifest =
      store::load_manifest(store::manifest_path_for(kJournal), vfs);
  ASSERT_TRUE(manifest.has_value());
  EXPECT_EQ(manifest->shards_committed, 1u);
}

TEST(ChaosCrash, BitRotInCommittedShardSelfHealsExactlyThatGroup) {
  datagen::Population pop = make_population();
  const auto inputs = pop.sweep_inputs();

  FaultInjectingVfs vfs;
  const store::DurableSweepResult base = run_sweep(pop, inputs, vfs);
  ASSERT_TRUE(base.error.empty()) << base.error;
  ASSERT_TRUE(base.complete);

  // Walk the journal's frames on disk to find a kContract record from a
  // SMALL hash group (so the heal's blast radius has a tight bound), then
  // flip one payload byte — at-rest bit rot inside a committed shard.
  const std::vector<std::uint8_t> bytes = *vfs.peek(kJournal);
  auto u32_at = [&](std::size_t p) {
    return static_cast<std::uint32_t>(bytes[p]) |
           static_cast<std::uint32_t>(bytes[p + 1]) << 8 |
           static_cast<std::uint32_t>(bytes[p + 2]) << 16 |
           static_cast<std::uint32_t>(bytes[p + 3]) << 24;
  };
  struct Frame {
    std::size_t payload_off;
    std::size_t len;
    store::RecordType type;
  };
  std::vector<Frame> frames;
  std::vector<store::ContractRecord> records;
  for (std::size_t pos = store::kJournalHeaderSize;
       pos + store::kFrameOverhead <= bytes.size();) {
    const std::uint32_t len = u32_at(pos);
    Frame f{pos + 5, len, static_cast<store::RecordType>(bytes[pos + 4])};
    frames.push_back(f);
    if (f.type == store::RecordType::kContract) {
      auto rec = store::decode_contract_record(
          {bytes.data() + f.payload_off, f.len});
      ASSERT_TRUE(rec.has_value());
      records.push_back(std::move(*rec));
    }
    pos += store::kFrameOverhead + len;
  }
  auto group_size = [&](const crypto::Hash256& h) {
    std::size_t n = 0;
    for (const auto& r : records) n += r.code_hash == h ? 1 : 0;
    return n;
  };
  std::optional<Frame> victim_frame;
  std::size_t victim_group = 0;
  std::size_t rec_idx = 0;
  for (const Frame& f : frames) {
    if (f.type != store::RecordType::kContract) continue;
    const std::size_t g = group_size(records[rec_idx].code_hash);
    ++rec_idx;
    if (g <= 8 && f.len > 0) {
      victim_frame = f;
      victim_group = g;
      break;
    }
  }
  ASSERT_TRUE(victim_frame.has_value());
  ASSERT_TRUE(
      vfs.flip_byte(kJournal, victim_frame->payload_off + victim_frame->len / 2));

  // Resume: the salvage replay loses exactly the destroyed record, its hash
  // group comes up short, and the whole group — nothing else — recomputes.
  obs::Registry reg;
  const store::DurableSweepResult healed = resume_sweep(pop, inputs, vfs, &reg);
  ASSERT_TRUE(healed.error.empty()) << healed.error;
  EXPECT_TRUE(healed.complete);
  EXPECT_FALSE(healed.degraded);
  EXPECT_EQ(healed.recomputed, victim_group);
  EXPECT_EQ(healed.replayed, inputs.size() - victim_group);
  EXPECT_EQ(healed.stats.selfheal_shards, 1u);
  EXPECT_EQ(reg.gauge("sweep.selfheal_shards").value(), 1);
  expect_same_verdicts(healed.stats, base.stats);

  // The corrupt gap stays in the file (append-only journal), but a salvage
  // scan reads the healed sweep end-to-end.
  const auto replay =
      store::read_journal(kJournal, vfs, store::ReplayOptions{.salvage = true});
  ASSERT_TRUE(replay.has_value());
  EXPECT_EQ(replay->corrupt_gaps, 1u);
  EXPECT_FALSE(replay->tail_dropped);
  EXPECT_EQ(replay->frames.back().type, store::RecordType::kSweepEnd);
}

}  // namespace
