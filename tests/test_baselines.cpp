// The baseline models (Etherscan / USCHunt / CRUSH) and their documented
// blind spots, which §6.2/§6.3 measure Proxion against.
#include <gtest/gtest.h>

#include "baselines/crush.h"
#include "baselines/etherscan.h"
#include "baselines/uschunt.h"
#include "chain/blockchain.h"
#include "core/proxy_detector.h"
#include "crypto/eth.h"
#include "datagen/contract_factory.h"

namespace {

using namespace proxion;
using namespace proxion::baselines;
using chain::Blockchain;
using datagen::BodyKind;
using datagen::ContractFactory;
using evm::Bytes;
using evm::U256;

Bytes selector_calldata(std::string_view prototype) {
  const auto sel = crypto::selector_of(prototype);
  Bytes out(36, 0);
  std::copy(sel.begin(), sel.end(), out.begin());
  return out;
}

// ---- Etherscan ----------------------------------------------------------

TEST(EtherscanBaseline, FlagsAnyDelegatecallAsProxy) {
  const auto proxy_code =
      ContractFactory::minimal_proxy(evm::Address::from_label("l"));
  EXPECT_TRUE(etherscan_detect(proxy_code).is_proxy);
  EXPECT_FALSE(etherscan_detect(ContractFactory::token_contract(1)).is_proxy);
}

TEST(EtherscanBaseline, LibraryUserIsAFalsePositive) {
  // The documented FP: any DELEGATECALL counts, even library calls.
  const auto code =
      ContractFactory::library_user(evm::Address::from_label("lib"));
  EXPECT_TRUE(etherscan_detect(code).is_proxy);
}

// ---- USCHunt ------------------------------------------------------------

class UschuntTest : public ::testing::Test {
 protected:
  sourcemeta::SourceRecord proxy_record(bool visible_delegation = true,
                                        std::string compiler = "0.8.17") {
    sourcemeta::SourceRecord rec;
    rec.contract_name = "Proxy";
    rec.compiler_version = std::move(compiler);
    rec.fallback_delegates = visible_delegation;
    rec.functions = {{.prototype = "owner()"}};
    rec.storage = {{.name = "owner", .type = "address"}};
    sourcemeta::layout_storage(rec.storage);
    return rec;
  }

  sourcemeta::SourceRepository sources_;
  Address proxy_ = Address::from_label("u.proxy");
  Address logic_ = Address::from_label("u.logic");
};

TEST_F(UschuntTest, NoSourceMeansNoAnalysis) {
  UschuntAnalyzer analyzer(sources_);
  EXPECT_EQ(analyzer.detect_proxy(proxy_).status, UschuntStatus::kNoSource);
}

TEST_F(UschuntTest, UnknownCompilerHalts) {
  sources_.publish(proxy_, proxy_record(true, "unknown"));
  UschuntAnalyzer analyzer(sources_);
  EXPECT_EQ(analyzer.detect_proxy(proxy_).status,
            UschuntStatus::kCompileError);
}

TEST_F(UschuntTest, DetectsProxyWhenSourceShowsDelegation) {
  sources_.publish(proxy_, proxy_record(true));
  UschuntAnalyzer analyzer(sources_);
  const auto r = analyzer.detect_proxy(proxy_);
  EXPECT_EQ(r.status, UschuntStatus::kAnalyzed);
  EXPECT_TRUE(r.is_proxy);
}

TEST_F(UschuntTest, MissesObscuredProxies) {
  // The §6.3 FN source: Slither's heuristics fail on non-standard source.
  sources_.publish(proxy_, proxy_record(false));
  UschuntAnalyzer analyzer(sources_);
  EXPECT_FALSE(analyzer.detect_proxy(proxy_).is_proxy);
}

TEST_F(UschuntTest, FunctionCollisionViaDeclaredPrototypes) {
  auto proxy_rec = proxy_record();
  proxy_rec.functions = {{.prototype = "implementation()"}};
  sources_.publish(proxy_, proxy_rec);

  sourcemeta::SourceRecord logic_rec;
  logic_rec.functions = {{.prototype = "implementation()"},
                         {.prototype = "doWork()"}};
  sources_.publish(logic_, logic_rec);

  UschuntAnalyzer analyzer(sources_);
  const auto r = analyzer.analyze_pair(proxy_, logic_);
  EXPECT_EQ(r.status, UschuntStatus::kAnalyzed);
  EXPECT_TRUE(r.function_collision);
}

TEST_F(UschuntTest, PaddingVariableIsAStorageFalsePositive) {
  // Proxy declares a deliberate gap at slot 0; the logic has a real
  // variable there. USCHunt's name comparison flags it although the gap is
  // not exploitable — the paper's documented FP (§6.3).
  auto proxy_rec = proxy_record();
  proxy_rec.storage = {{.name = "__gap0", .type = "uint256",
                        .is_padding = true}};
  sourcemeta::layout_storage(proxy_rec.storage);
  sources_.publish(proxy_, proxy_rec);

  sourcemeta::SourceRecord logic_rec;
  logic_rec.storage = {{.name = "counter", .type = "uint256"}};
  sourcemeta::layout_storage(logic_rec.storage);
  sources_.publish(logic_, logic_rec);

  UschuntAnalyzer analyzer(sources_);
  EXPECT_TRUE(analyzer.analyze_pair(proxy_, logic_).storage_collision);
}

TEST_F(UschuntTest, SameNamesSameSlotsNoCollision) {
  auto proxy_rec = proxy_record();
  sources_.publish(proxy_, proxy_rec);
  sourcemeta::SourceRecord logic_rec;
  logic_rec.storage = {{.name = "owner", .type = "address"}};
  sourcemeta::layout_storage(logic_rec.storage);
  sources_.publish(logic_, logic_rec);

  UschuntAnalyzer analyzer(sources_);
  EXPECT_FALSE(analyzer.analyze_pair(proxy_, logic_).storage_collision);
}

// ---- CRUSH ----------------------------------------------------------------

class CrushTest : public ::testing::Test {
 protected:
  Blockchain chain_;
  Address user_ = Address::from_label("crush.user");
};

TEST_F(CrushTest, FindsPairsFromTransactionHistory) {
  const Address logic = chain_.deploy_runtime(
      user_, ContractFactory::plain_contract(
                 {{.prototype = "f()", .body = BodyKind::kStop}}));
  const Address proxy =
      chain_.deploy_runtime(user_, ContractFactory::minimal_proxy(logic));
  chain_.call(user_, proxy, selector_calldata("f()"));

  CrushAnalyzer crush(chain_);
  const auto pairs = crush.find_proxy_pairs();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].proxy, proxy);
  EXPECT_EQ(pairs[0].logic, logic);
  EXPECT_TRUE(pairs[0].via_fallback);
}

TEST_F(CrushTest, MissesProxiesWithoutTransactions) {
  // The headline blind spot: a freshly deployed proxy that never
  // transacted is invisible to transaction mining.
  const Address logic =
      chain_.deploy_runtime(user_, ContractFactory::token_contract(1));
  chain_.deploy_runtime(user_, ContractFactory::minimal_proxy(logic));

  CrushAnalyzer crush(chain_);
  EXPECT_TRUE(crush.find_proxy_pairs().empty());
}

TEST_F(CrushTest, LibraryCallerCountsAsProxyFalsePositive) {
  const Address lib =
      chain_.deploy_runtime(user_, ContractFactory::math_library());
  const Address lib_user =
      chain_.deploy_runtime(user_, ContractFactory::library_user(lib));
  chain_.call(user_, lib_user, selector_calldata("compute(uint256)"));

  CrushAnalyzer crush(chain_);
  const auto pairs = crush.find_proxy_pairs();
  ASSERT_EQ(pairs.size(), 1u);  // flagged, although §2.2 says not a proxy
  EXPECT_EQ(pairs[0].proxy, lib_user);

  // Proxion's emulation-based detector disagrees, correctly.
  core::ProxyDetector detector(chain_);
  EXPECT_EQ(detector.analyze(lib_user).verdict,
            core::ProxyVerdict::kNotProxy);
}

TEST_F(CrushTest, DeduplicatesRepeatedEdges) {
  const Address logic = chain_.deploy_runtime(
      user_, ContractFactory::plain_contract(
                 {{.prototype = "f()", .body = BodyKind::kStop}}));
  const Address proxy =
      chain_.deploy_runtime(user_, ContractFactory::minimal_proxy(logic));
  chain_.call(user_, proxy, selector_calldata("f()"));
  chain_.call(user_, proxy, selector_calldata("f()"));
  chain_.call(user_, proxy, selector_calldata("f()"));

  CrushAnalyzer crush(chain_);
  EXPECT_EQ(crush.find_proxy_pairs().size(), 1u);
}

TEST_F(CrushTest, StorageCollisionViaSharedEngine) {
  const Address logic =
      chain_.deploy_runtime(user_, ContractFactory::audius_style_logic());
  const Address proxy =
      chain_.deploy_runtime(user_, ContractFactory::audius_style_proxy());
  chain_.set_storage(proxy, U256{1}, logic.to_word());
  chain_.call(user_, proxy, selector_calldata("initialized()"));

  CrushAnalyzer crush(chain_);
  const auto pairs = crush.find_proxy_pairs();
  ASSERT_EQ(pairs.size(), 1u);
  const auto result = crush.analyze_pair(pairs[0].proxy, pairs[0].logic);
  EXPECT_TRUE(result.storage_collision);
  EXPECT_TRUE(result.exploitable);
}

}  // namespace
