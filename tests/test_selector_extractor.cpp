// §5.1's dispatcher-pattern selector extraction: real dispatcher selectors
// are recovered, PUSH4 garbage is rejected, and the naive strawman's false
// positives are demonstrated.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/selector_extractor.h"
#include "crypto/eth.h"
#include "datagen/assembler.h"
#include "datagen/contract_factory.h"

namespace {

using namespace proxion;
using namespace proxion::core;
using datagen::BodyKind;
using datagen::ContractFactory;
using datagen::FunctionSpec;
using evm::Bytes;
using evm::U256;

bool contains(const std::vector<std::uint32_t>& v, std::uint32_t s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

TEST(SelectorExtractor, RecoversAllDispatcherSelectors) {
  const Bytes code = ContractFactory::token_contract(1);
  const auto selectors = extract_selectors(code);
  EXPECT_EQ(selectors.size(), 4u);
  EXPECT_TRUE(contains(selectors, crypto::selector_u32("totalSupply()")));
  EXPECT_TRUE(contains(selectors, crypto::selector_u32("balanceOf(address)")));
  EXPECT_TRUE(
      contains(selectors, crypto::selector_u32("transfer(address,uint256)")));
  EXPECT_TRUE(contains(selectors, crypto::selector_u32("owner()")));
}

TEST(SelectorExtractor, RejectsGarbagePush4InBodies) {
  const Bytes code = ContractFactory::garbage_push4_contract();
  const auto selectors = extract_selectors(code);
  // The real dispatcher selectors are found...
  EXPECT_TRUE(contains(selectors, crypto::selector_u32("magic()")));
  EXPECT_TRUE(contains(selectors, crypto::selector_u32("store(uint256)")));
  // ... but the 0xdeadbeef / 0xcafebabe constants inside magic()'s body
  // (followed by MSTORE, not a compare-jump) are rejected.
  EXPECT_FALSE(contains(selectors, 0xdeadbeefu));
  EXPECT_FALSE(contains(selectors, 0xcafebabeu));
}

TEST(SelectorExtractor, NaiveStrawmanHasFalsePositives) {
  const Bytes code = ContractFactory::garbage_push4_contract();
  const auto naive = extract_selectors_naive(code);
  // The §3.1 strawman picks up the garbage constants too.
  EXPECT_TRUE(contains(naive, 0xdeadbeefu));
  EXPECT_TRUE(contains(naive, 0xcafebabeu));
  EXPECT_GT(naive.size(), extract_selectors(code).size());
}

TEST(SelectorExtractor, EmptyAndFunctionlessCode) {
  EXPECT_TRUE(extract_selectors(Bytes{}).empty());
  // A minimal proxy has no dispatcher at all.
  const Bytes proxy =
      ContractFactory::minimal_proxy(evm::Address::from_label("x"));
  EXPECT_TRUE(extract_selectors(proxy).empty());
}

TEST(SelectorExtractor, OutputIsSortedAndUnique) {
  const Bytes code = ContractFactory::token_contract(9);
  const auto selectors = extract_selectors(code);
  EXPECT_TRUE(std::is_sorted(selectors.begin(), selectors.end()));
  EXPECT_EQ(std::adjacent_find(selectors.begin(), selectors.end()),
            selectors.end());
}

TEST(SelectorExtractor, HandlesRawSelectorOverride) {
  // The honeypot's forced selector (no prototype) must still be extracted.
  const Bytes code = ContractFactory::honeypot_proxy(U256{1}, 0xdf4a3106);
  const auto selectors = extract_selectors(code);
  EXPECT_TRUE(contains(selectors, 0xdf4a3106u));
}

TEST(SelectorExtractor, GtLtPivotDispatchRecognized) {
  // Large solc dispatchers binary-search with GT/LT pivots; the pivot
  // selectors are real selectors and must be extracted.
  datagen::Assembler a;
  a.push(U256{0}, 1)
      .op(evm::Opcode::CALLDATALOAD)
      .push(U256{0xe0}, 1)
      .op(evm::Opcode::SHR);
  a.op(evm::Opcode::DUP1)
      .push_selector(0x80000000)
      .op(evm::Opcode::GT)
      .push_label("hi")
      .op(evm::Opcode::JUMPI);
  a.op(evm::Opcode::STOP);
  a.jumpdest("hi").op(evm::Opcode::STOP);
  const auto selectors = extract_selectors(a.assemble());
  EXPECT_TRUE(contains(selectors, 0x80000000u));
}

TEST(SelectorExtractor, Push4WithoutJumpiIsRejected) {
  datagen::Assembler a;
  a.push_selector(0x12345678).op(evm::Opcode::EQ);  // compare but no jump
  a.op(evm::Opcode::STOP);
  // EQ underflows at runtime, but statically: no JUMPI, no selector.
  EXPECT_TRUE(extract_selectors(a.assemble()).empty());
}

TEST(SelectorExtractor, MatchesSourceDeclaredSelectors) {
  // Bytecode-mode extraction agrees exactly with the source-mode list for a
  // factory contract — the property Table 2's 99.5% accuracy rests on.
  const std::vector<FunctionSpec> funcs = {
      {.prototype = "a()", .body = BodyKind::kStop},
      {.prototype = "b(uint256)", .body = BodyKind::kStoreArgWord,
       .slot = U256{1}},
      {.prototype = "c(address,uint256)", .body = BodyKind::kReturnConstant,
       .aux = U256{1}},
  };
  const auto extracted =
      extract_selectors(ContractFactory::plain_contract(funcs));
  std::vector<std::uint32_t> declared;
  for (const auto& f : funcs) declared.push_back(f.selector());
  std::sort(declared.begin(), declared.end());
  EXPECT_EQ(extracted, declared);
}

}  // namespace
