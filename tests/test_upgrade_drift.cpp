// Upgrade-induced storage drift (§2.3): layout changes between consecutive
// logic versions of one proxy.
#include <gtest/gtest.h>

#include "chain/archive_node.h"
#include "chain/blockchain.h"
#include "core/logic_finder.h"
#include "core/proxy_detector.h"
#include "core/upgrade_drift.h"
#include "datagen/contract_factory.h"

namespace {

using namespace proxion;
using namespace proxion::core;
using chain::Blockchain;
using datagen::BodyKind;
using datagen::ContractFactory;
using evm::Bytes;
using evm::U256;

class DriftTest : public ::testing::Test {
 protected:
  /// Deploys a slot-9 proxy and walks it through the given logic versions.
  LogicHistory upgrade_through(const std::vector<Bytes>& versions) {
    proxy_ = chain_.deploy_runtime(user_, ContractFactory::slot_proxy(U256{9}));
    std::uint64_t block = 100;
    for (const Bytes& code : versions) {
      chain_.mine_until(block);
      const Address impl = chain_.deploy_runtime(user_, code);
      chain_.set_storage(proxy_, U256{9}, impl.to_word());
      block += 1'000;
    }
    chain_.mine_until(block);

    ProxyDetector detector(chain_);
    chain::ArchiveNode node(chain_);
    LogicFinder finder(node);
    return finder.find(proxy_, detector.analyze(proxy_));
  }

  Blockchain chain_;
  Address user_ = Address::from_label("drift.user");
  Address proxy_;
};

TEST_F(DriftTest, TypeChangeAcrossUpgradeDetected) {
  // v1 stores a caller address at slot 0; v2 reads slot 0 as a bool flag.
  const Bytes v1 = ContractFactory::plain_contract(
      {{.prototype = "claim()", .body = BodyKind::kStoreCaller,
        .slot = U256{0}}});
  const Bytes v2 = ContractFactory::plain_contract(
      {{.prototype = "enabled()", .body = BodyKind::kReturnStorageBool,
        .slot = U256{0}}});
  const LogicHistory history = upgrade_through({v1, v2});
  ASSERT_EQ(history.logic_addresses.size(), 2u);

  UpgradeDriftDetector detector(chain_);
  const auto result = detector.analyze(proxy_, history);
  ASSERT_TRUE(result.has_drift());
  const DriftFinding& f = result.findings[0];
  EXPECT_EQ(f.slot, U256{0});
  EXPECT_EQ(f.old_width, 20);
  EXPECT_EQ(f.new_width, 1);
  EXPECT_TRUE(f.old_version_wrote);  // live data reinterpreted
  EXPECT_EQ(f.from_version, 0u);
  EXPECT_EQ(f.to_version, 1u);
}

TEST_F(DriftTest, CompatibleUpgradeIsClean) {
  // Both versions treat slot 0 as an address; v2 adds a new slot.
  const Bytes v1 = ContractFactory::plain_contract(
      {{.prototype = "owner()", .body = BodyKind::kReturnStorageAddress,
        .slot = U256{0}}});
  const Bytes v2 = ContractFactory::plain_contract(
      {{.prototype = "owner()", .body = BodyKind::kReturnStorageAddress,
        .slot = U256{0}},
       {.prototype = "count()", .body = BodyKind::kReturnStorageWord,
        .slot = U256{1}}});
  const LogicHistory history = upgrade_through({v1, v2});
  UpgradeDriftDetector detector(chain_);
  EXPECT_FALSE(detector.analyze(proxy_, history).has_drift());
}

TEST_F(DriftTest, AbandonedSlotIsNotDrift) {
  // v2 stops using v1's slot entirely: stale data, but no reinterpretation.
  const Bytes v1 = ContractFactory::plain_contract(
      {{.prototype = "claim()", .body = BodyKind::kStoreCaller,
        .slot = U256{0}}});
  const Bytes v2 = ContractFactory::plain_contract(
      {{.prototype = "count()", .body = BodyKind::kReturnStorageWord,
        .slot = U256{5}}});
  const LogicHistory history = upgrade_through({v1, v2});
  UpgradeDriftDetector detector(chain_);
  EXPECT_FALSE(detector.analyze(proxy_, history).has_drift());
}

TEST_F(DriftTest, PackedReorderingDetected) {
  // v1: bool at byte 0 of slot 2. v2: address at bytes [0,20) of slot 2 —
  // the classic "inserted a variable above the flags" mistake.
  const Bytes v1 = ContractFactory::plain_contract(
      {{.prototype = "paused()", .body = BodyKind::kReturnStorageBool,
        .slot = U256{2}},
       {.prototype = "setPaused(uint256)", .body = BodyKind::kStoreArgWord,
        .slot = U256{2}}});
  const Bytes v2 = ContractFactory::plain_contract(
      {{.prototype = "treasury()", .body = BodyKind::kReturnStorageAddress,
        .slot = U256{2}}});
  const LogicHistory history = upgrade_through({v1, v2});
  UpgradeDriftDetector detector(chain_);
  const auto result = detector.analyze(proxy_, history);
  ASSERT_TRUE(result.has_drift());
}

TEST_F(DriftTest, SingleVersionHasNoDrift) {
  const Bytes v1 = ContractFactory::token_contract(1);
  const LogicHistory history = upgrade_through({v1});
  UpgradeDriftDetector detector(chain_);
  EXPECT_FALSE(detector.analyze(proxy_, history).has_drift());
}

TEST_F(DriftTest, ThreeVersionChainReportsEachTransition) {
  const Bytes v1 = ContractFactory::plain_contract(
      {{.prototype = "claim()", .body = BodyKind::kStoreCaller,
        .slot = U256{0}}});
  const Bytes v2 = ContractFactory::plain_contract(
      {{.prototype = "enabled()", .body = BodyKind::kReturnStorageBool,
        .slot = U256{0}}});
  const Bytes v3 = ContractFactory::plain_contract(
      {{.prototype = "total()", .body = BodyKind::kReturnStorageWord,
        .slot = U256{0}}});
  const LogicHistory history = upgrade_through({v1, v2, v3});
  UpgradeDriftDetector detector(chain_);
  const auto result = detector.analyze(proxy_, history);
  // v1->v2 (20 vs 1) and v2->v3 (1 vs 32) both drift.
  ASSERT_EQ(result.findings.size(), 2u);
  EXPECT_EQ(result.findings[0].to_version, 1u);
  EXPECT_EQ(result.findings[1].to_version, 2u);
}

}  // namespace
