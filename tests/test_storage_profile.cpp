// The CRUSH-style storage profiler (§5.2): slot recovery, width inference
// from masks / CALLER comparisons / bool tests, caller-guard attribution,
// write-value provenance, and mapping-slot exclusion.
#include <gtest/gtest.h>

#include "core/storage_profile.h"
#include "datagen/contract_factory.h"

namespace {

using namespace proxion::core;
using proxion::datagen::BodyKind;
using proxion::datagen::ContractFactory;
using proxion::evm::U256;

const StorageAccess* find_access(const StorageProfile& p, const U256& slot,
                                 bool is_write) {
  for (const auto& a : p.accesses) {
    if (a.slot == slot && a.is_write == is_write) return &a;
  }
  return nullptr;
}

TEST(StorageProfile, AddressReadWidthFromMask) {
  const auto profile = profile_storage(ContractFactory::plain_contract(
      {{.prototype = "owner()", .body = BodyKind::kReturnStorageAddress,
        .slot = U256{0}}}));
  const auto* read = find_access(profile, U256{0}, false);
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->width, 20);  // masked with 2^160-1
}

TEST(StorageProfile, BoolReadWidthFromByteMask) {
  const auto profile = profile_storage(ContractFactory::plain_contract(
      {{.prototype = "flag()", .body = BodyKind::kReturnStorageBool,
        .slot = U256{0}}}));
  const auto* read = find_access(profile, U256{0}, false);
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->width, 1);
}

TEST(StorageProfile, UnmaskedReadIsFullWidth) {
  const auto profile = profile_storage(ContractFactory::plain_contract(
      {{.prototype = "value()", .body = BodyKind::kReturnStorageWord,
        .slot = U256{3}}}));
  const auto* read = find_access(profile, U256{3}, false);
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->width, 32);
}

TEST(StorageProfile, CallerWriteIsAddressWidthAndCallerOrigin) {
  const auto profile = profile_storage(ContractFactory::plain_contract(
      {{.prototype = "claim()", .body = BodyKind::kStoreCaller,
        .slot = U256{7}}}));
  const auto* write = find_access(profile, U256{7}, true);
  ASSERT_NE(write, nullptr);
  EXPECT_EQ(write->width, 20);
  EXPECT_EQ(write->value_origin, ValueOrigin::kCaller);
  EXPECT_FALSE(write->guarded_by_caller);
}

TEST(StorageProfile, MaskedArgWriteIsAddressWidth) {
  const auto profile = profile_storage(ContractFactory::plain_contract(
      {{.prototype = "set(address)", .body = BodyKind::kStoreArgAddress,
        .slot = U256{2}}}));
  const auto* write = find_access(profile, U256{2}, true);
  ASSERT_NE(write, nullptr);
  EXPECT_EQ(write->width, 20);
  EXPECT_EQ(write->value_origin, ValueOrigin::kCalldata);
}

TEST(StorageProfile, GuardedWriteDetected) {
  const auto profile = profile_storage(ContractFactory::plain_contract(
      {{.prototype = "upgradeTo(address)",
        .body = BodyKind::kGuardedStoreArgAddress, .slot = U256{1},
        .aux = U256{0}}}));
  // The owner slot read is caller-compared (sensitive)...
  const auto* owner_read = find_access(profile, U256{0}, false);
  ASSERT_NE(owner_read, nullptr);
  EXPECT_TRUE(owner_read->caller_compared);
  EXPECT_EQ(owner_read->width, 20);
  // ... and the write into the implementation slot is guarded.
  const auto* impl_write = find_access(profile, U256{1}, true);
  ASSERT_NE(impl_write, nullptr);
  EXPECT_TRUE(impl_write->guarded_by_caller);
  EXPECT_TRUE(profile.is_sensitive(U256{0}));
  EXPECT_FALSE(profile.has_unguarded_write(U256{1}));
}

TEST(StorageProfile, AudiusLogicShowsTheBugSignature) {
  const auto profile =
      profile_storage(ContractFactory::audius_style_logic());
  // Listing 2's signature: a 1-byte read of slot 0 plus an *unguarded*
  // 20-byte caller write of the same slot.
  EXPECT_EQ(profile.width_of(U256{0}), std::uint8_t{1});
  EXPECT_TRUE(profile.has_unguarded_write(U256{0}));
  EXPECT_TRUE(profile.is_sensitive(U256{0}));
  const auto* write = find_access(profile, U256{0}, true);
  ASSERT_NE(write, nullptr);
  EXPECT_EQ(write->value_origin, ValueOrigin::kCaller);
}

TEST(StorageProfile, AudiusProxyReadsSlotZeroAsAddress) {
  const auto profile =
      profile_storage(ContractFactory::audius_style_proxy());
  EXPECT_EQ(profile.width_of(U256{0}), std::uint8_t{20});
}

TEST(StorageProfile, MappingAccessesAreExcluded) {
  const auto profile =
      profile_storage(ContractFactory::diamond_proxy());
  // The facet lookup SLOADs a keccak-derived slot: excluded but counted.
  EXPECT_GE(profile.hashed_slot_accesses, 1u);
  for (const auto& a : profile.accesses) {
    EXPECT_NE(a.slot, U256{});  // no bogus concrete slot-0 record from it
  }
}

TEST(StorageProfile, ProxyFallbackReadsImplSlotAsAddress) {
  const auto profile = profile_storage(
      ContractFactory::slot_proxy(U256{0}));
  const auto* read = find_access(profile, U256{0}, false);
  ASSERT_NE(read, nullptr);
  EXPECT_FALSE(read->is_write);
  EXPECT_EQ(read->width, 20);  // sload masked to address width
}

TEST(StorageProfile, Eip1967SlotIsConcreteHugeConstant) {
  const auto profile = profile_storage(ContractFactory::eip1967_proxy());
  EXPECT_TRUE(profile.width_of(ContractFactory::eip1967_slot()).has_value());
}

TEST(StorageProfile, SlotsAndWidthOfHelpers) {
  const auto profile = profile_storage(ContractFactory::plain_contract({
      {.prototype = "a()", .body = BodyKind::kReturnStorageBool,
       .slot = U256{0}},
      {.prototype = "b()", .body = BodyKind::kReturnStorageWord,
       .slot = U256{1}},
  }));
  const auto slots = profile.slots();
  EXPECT_EQ(slots.size(), 2u);
  EXPECT_EQ(profile.width_of(U256{0}), std::uint8_t{1});
  EXPECT_EQ(profile.width_of(U256{1}), std::uint8_t{32});
  EXPECT_EQ(profile.width_of(U256{999}), std::nullopt);
}

TEST(StorageProfile, PackedReadAtOffsetRecovered) {
  // (sload(0) >> 8) & 0xff: the Listing-2 `initializing` flag at byte 1.
  const auto profile = profile_storage(ContractFactory::plain_contract(
      {{.prototype = "initializing()",
        .body = BodyKind::kReturnStorageBoolAtOffset, .slot = U256{0},
        .aux = U256{1}}}));
  const auto* read = find_access(profile, U256{0}, false);
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->offset, 1);
  EXPECT_EQ(read->width, 1);
}

TEST(StorageProfile, OffsetZeroPackedReadIsPlainBool) {
  const auto profile = profile_storage(ContractFactory::plain_contract(
      {{.prototype = "flag()", .body = BodyKind::kReturnStorageBoolAtOffset,
        .slot = U256{0}, .aux = U256{0}}}));
  const auto* read = find_access(profile, U256{0}, false);
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->offset, 0);
  EXPECT_EQ(read->width, 1);
}

TEST(StorageProfile, RangesOfReportsDistinctViews) {
  const auto profile = profile_storage(ContractFactory::plain_contract({
      {.prototype = "a()", .body = BodyKind::kReturnStorageBool,
       .slot = U256{0}},
      {.prototype = "b()", .body = BodyKind::kReturnStorageBoolAtOffset,
       .slot = U256{0}, .aux = U256{1}},
      {.prototype = "c()", .body = BodyKind::kReturnStorageAddress,
       .slot = U256{0}},
  }));
  const auto ranges = profile.ranges_of(U256{0});
  EXPECT_EQ(ranges.size(), 3u);  // [0,1), [1,1), [0,20)
}

TEST(StorageProfile, AccessOverlapSemantics) {
  StorageAccess addr;   // bytes [0, 20)
  addr.slot = U256{0};
  addr.offset = 0;
  addr.width = 20;
  StorageAccess flag_inside;   // byte [1, 2)
  flag_inside.slot = U256{0};
  flag_inside.offset = 1;
  flag_inside.width = 1;
  StorageAccess flag_outside;  // byte [20, 21): packs NEXT to the address
  flag_outside.slot = U256{0};
  flag_outside.offset = 20;
  flag_outside.width = 1;
  StorageAccess other_slot = flag_inside;
  other_slot.slot = U256{7};

  EXPECT_TRUE(addr.overlaps(flag_inside));
  EXPECT_TRUE(flag_inside.overlaps(addr));
  EXPECT_FALSE(addr.overlaps(flag_outside));
  EXPECT_FALSE(addr.overlaps(other_slot));
  EXPECT_FALSE(addr.same_range(flag_inside));
  EXPECT_TRUE(addr.same_range(addr));
}

TEST(StorageProfile, PackedWriteIdiomRecovered) {
  // sstore(slot, (sload & ~(0xff<<8)) | (1<<8)): a bool write at byte 1.
  const auto profile = profile_storage(ContractFactory::plain_contract(
      {{.prototype = "setInitializing()",
        .body = BodyKind::kStoreBoolPackedAt, .slot = U256{0},
        .aux = U256{1}}}));
  const auto* write = find_access(profile, U256{0}, true);
  ASSERT_NE(write, nullptr);
  EXPECT_EQ(write->offset, 1);
  EXPECT_EQ(write->width, 1);
  EXPECT_EQ(write->value_origin, ValueOrigin::kConstant);
  // The RMW's carrier read is refined to the same range, not 32 bytes.
  const auto* read = find_access(profile, U256{0}, false);
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->offset, 1);
  EXPECT_EQ(read->width, 1);
}

TEST(StorageProfile, PackedWriteAtOffsetZero) {
  const auto profile = profile_storage(ContractFactory::plain_contract(
      {{.prototype = "setFlag()", .body = BodyKind::kStoreBoolPackedAt,
        .slot = U256{3}, .aux = U256{0}}}));
  const auto* write = find_access(profile, U256{3}, true);
  ASSERT_NE(write, nullptr);
  EXPECT_EQ(write->offset, 0);
  EXPECT_EQ(write->width, 1);
}

TEST(StorageProfile, PackedWriteCompatibilityInCollisionTerms) {
  // A packed bool write at byte 20 does NOT overlap an address at [0,20).
  StorageAccess addr;
  addr.slot = U256{0};
  addr.width = 20;
  StorageAccess packed;
  packed.slot = U256{0};
  packed.offset = 20;
  packed.width = 1;
  packed.is_write = true;
  EXPECT_FALSE(addr.overlaps(packed));
}

TEST(StorageProfile, EmptyCodeYieldsEmptyProfile) {
  const auto profile = profile_storage(proxion::evm::Bytes{});
  EXPECT_TRUE(profile.accesses.empty());
  EXPECT_TRUE(profile.slots().empty());
}

}  // namespace
