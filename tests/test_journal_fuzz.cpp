// Bit-flip fuzz over serialized journals: EVERY single-byte corruption of a
// valid journal must either replay a valid prefix (non-salvage), an ordered
// subsequence of the original frames (salvage resync), or fail cleanly
// (header damage) — never crash, never surface a frame that was not in the
// original. Runs against the in-memory model filesystem so it is fast
// enough to be exhaustive and is wired into tools/sanitize_smoke.sh.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "store/journal.h"
#include "util/vfs_fault.h"

namespace {

using namespace proxion;
using store::JournalFrame;
using store::JournalReplay;
using store::JournalWriter;
using store::ReplayOptions;
using util::FaultInjectingVfs;
using util::Vfs;

std::vector<std::uint8_t> payload_of(std::size_t n, std::uint8_t fill) {
  return std::vector<std::uint8_t>(n, fill);
}

/// Builds a journal with a spread of frame sizes (including empty) in `vfs`.
std::vector<JournalFrame> build_journal(FaultInjectingVfs& vfs,
                                        const std::string& path) {
  auto writer = JournalWriter::create(path, vfs);
  EXPECT_TRUE(writer.has_value());
  const std::size_t sizes[] = {0, 1, 7, 24, 40, 3};
  std::vector<JournalFrame> frames;
  for (std::size_t k = 0; k < std::size(sizes); ++k) {
    JournalFrame f;
    f.type = k % 2 == 0 ? store::RecordType::kContract
                        : store::RecordType::kShardCommit;
    f.payload = payload_of(sizes[k], static_cast<std::uint8_t>(0x30 + k));
    EXPECT_TRUE(writer->append(f.type, f.payload));
    frames.push_back(std::move(f));
  }
  EXPECT_TRUE(writer->sync());
  EXPECT_TRUE(vfs.sync_dir(path));
  return frames;
}

bool same_frame(const JournalFrame& a, const JournalFrame& b) {
  return a.type == b.type && a.payload == b.payload;
}

/// True when `got` is `orig` cut off at some index (valid-prefix property).
bool is_prefix(const std::vector<JournalFrame>& got,
               const std::vector<JournalFrame>& orig) {
  if (got.size() > orig.size()) return false;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (!same_frame(got[i], orig[i])) return false;
  }
  return true;
}

/// True when `got` is an ordered subsequence of `orig` (salvage property:
/// corrupt gaps drop frames, never invent or reorder them).
bool is_subsequence(const std::vector<JournalFrame>& got,
                    const std::vector<JournalFrame>& orig) {
  std::size_t j = 0;
  for (const JournalFrame& f : got) {
    while (j < orig.size() && !same_frame(orig[j], f)) ++j;
    if (j == orig.size()) return false;
    ++j;
  }
  return true;
}

TEST(JournalFuzz, EverySingleByteCorruptionRecoversOrFailsCleanly) {
  FaultInjectingVfs vfs;
  const std::string path = "fuzz/journal";
  const std::vector<JournalFrame> orig = build_journal(vfs, path);
  const std::size_t file_size = vfs.peek(path)->size();
  ASSERT_GT(file_size, store::kJournalHeaderSize);

  for (std::size_t i = 0; i < file_size; ++i) {
    SCOPED_TRACE("corrupt byte " + std::to_string(i));
    ASSERT_TRUE(vfs.flip_byte(path, i));

    const auto plain = store::read_journal(path, vfs);
    const auto salvage =
        store::read_journal(path, vfs, ReplayOptions{.salvage = true});

    // Magic/version damage is unrecoverable by design and must fail
    // CLEANLY (nullopt). Everything else parses (reserved bytes are
    // ignored; frame damage drops frames).
    if (i < store::kJournalMagicSize + 2) {
      EXPECT_FALSE(plain.has_value());
      EXPECT_FALSE(salvage.has_value());
    } else {
      ASSERT_TRUE(plain.has_value());
      ASSERT_TRUE(salvage.has_value());
      EXPECT_LE(plain->valid_bytes, file_size);
      EXPECT_LE(salvage->valid_bytes, file_size);
      // Never a frame that was not in the original, never out of order.
      EXPECT_TRUE(is_prefix(plain->frames, orig));
      EXPECT_TRUE(is_subsequence(salvage->frames, orig));
      // Salvage never recovers less than the plain scan.
      EXPECT_GE(salvage->frames.size(), plain->frames.size());
      if (i >= store::kJournalHeaderSize) {
        // One corrupt byte hits exactly one frame: salvage loses at most
        // that frame.
        EXPECT_GE(salvage->frames.size(), orig.size() - 1);
      }
    }

    ASSERT_TRUE(vfs.flip_byte(path, i));  // xor 0xFF is self-inverse
  }

  // The restored journal reads back whole (the fuzz loop left no damage).
  const auto clean = store::read_journal(path, vfs);
  ASSERT_TRUE(clean.has_value());
  EXPECT_EQ(clean->frames.size(), orig.size());
  EXPECT_FALSE(clean->tail_dropped);
}

TEST(JournalFuzz, OpenAppendAfterCorruptionPreservesTornSidecar) {
  FaultInjectingVfs vfs;
  const std::string path = "fuzz/journal2";
  const std::vector<JournalFrame> orig = build_journal(vfs, path);
  const std::size_t file_size = vfs.peek(path)->size();

  // Corrupt the LAST frame (its CRC trailer): a plain scan drops it as a
  // torn tail; open_append must save the dropped bytes to the sidecar,
  // truncate them off, and leave an appendable journal.
  ASSERT_TRUE(vfs.flip_byte(path, file_size - 1));
  auto writer = JournalWriter::open_append(path, vfs);
  ASSERT_TRUE(writer.has_value());
  const std::string sidecar = store::torn_sidecar_path_for(path);
  ASSERT_TRUE(vfs.exists(sidecar));
  EXPECT_GT(vfs.peek(sidecar)->size(), 0u);
  EXPECT_EQ(writer->size_bytes(), vfs.peek(path)->size());

  // Appending after the heal yields a clean journal: original frames minus
  // the torn one, plus the new one.
  const std::vector<std::uint8_t> extra(9, 0x77);
  ASSERT_TRUE(writer->append(store::RecordType::kSweepEnd, extra));
  ASSERT_TRUE(writer->sync());
  const auto replay = store::read_journal(path, vfs);
  ASSERT_TRUE(replay.has_value());
  EXPECT_FALSE(replay->tail_dropped);
  ASSERT_EQ(replay->frames.size(), orig.size());
  EXPECT_EQ(replay->frames.back().payload, extra);
}

TEST(JournalFuzz, SalvageKeepsFramesPastMidFileBitRot) {
  FaultInjectingVfs vfs;
  const std::string path = "fuzz/journal3";
  const std::vector<JournalFrame> orig = build_journal(vfs, path);

  // Hit the middle frame's payload. Plain scan stops there; salvage loses
  // exactly that frame and keeps everything after.
  std::size_t pos = store::kJournalHeaderSize;
  for (std::size_t k = 0; k < 2; ++k) {
    pos += store::kFrameOverhead + orig[k].payload.size();
  }
  const std::size_t victim_byte = pos + 5;  // first payload byte of frame 2
  ASSERT_TRUE(vfs.flip_byte(path, victim_byte));

  const auto plain = store::read_journal(path, vfs);
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(plain->frames.size(), 2u);
  EXPECT_EQ(plain->crc_failures, 1u);

  const auto salvage =
      store::read_journal(path, vfs, ReplayOptions{.salvage = true});
  ASSERT_TRUE(salvage.has_value());
  ASSERT_EQ(salvage->frames.size(), orig.size() - 1);
  EXPECT_EQ(salvage->corrupt_gaps, 1u);
  EXPECT_GT(salvage->gap_bytes, 0u);
  EXPECT_FALSE(salvage->tail_dropped);
  // Frames 0,1 then 3.. survive bit-identical.
  EXPECT_TRUE(same_frame(salvage->frames[2], orig[3]));
}

}  // namespace
