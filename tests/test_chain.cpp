// The simulated blockchain: deployment, transaction execution, the storage
// history journal (archive-node semantics), internal-transaction tracing,
// and the ArchiveNode call counters.
#include <gtest/gtest.h>

#include "chain/archive_node.h"
#include "chain/blockchain.h"
#include "crypto/eth.h"
#include "datagen/assembler.h"
#include "datagen/contract_factory.h"

namespace {

using namespace proxion;
using namespace proxion::chain;
using datagen::Assembler;
using datagen::BodyKind;
using datagen::ContractFactory;
using evm::Opcode;
using evm::U256;

Bytes selector_calldata(std::string_view prototype) {
  const auto sel = crypto::selector_of(prototype);
  Bytes out(36, 0);
  std::copy(sel.begin(), sel.end(), out.begin());
  return out;
}

class ChainTest : public ::testing::Test {
 protected:
  Blockchain chain_;
  Address user_ = Address::from_label("chain.user");
};

TEST_F(ChainTest, DeployRuntimeInstallsCodeAndMeta) {
  const Bytes code = ContractFactory::token_contract(1);
  const Address a = chain_.deploy_runtime(user_, code);
  EXPECT_EQ(chain_.get_code(a), code);
  const auto meta = chain_.contract_meta(a);
  ASSERT_TRUE(meta.has_value());
  EXPECT_EQ(meta->deploy_block, chain_.height());
  EXPECT_FALSE(meta->has_incoming_tx);
}

TEST_F(ChainTest, DeployDistinctAddressesPerNonce) {
  const Address a = chain_.deploy_runtime(user_, {0x00});
  const Address b = chain_.deploy_runtime(user_, {0x00});
  EXPECT_NE(a, b);
}

TEST_F(ChainTest, CallExecutesAndMarksIncomingTx) {
  const Address token =
      chain_.deploy_runtime(user_, ContractFactory::token_contract(1));
  const auto r = chain_.call(user_, token, selector_calldata("totalSupply()"));
  EXPECT_TRUE(r.success());
  EXPECT_EQ(evm::U256::from_be_slice(r.return_data), U256{1'000'001});
  EXPECT_TRUE(chain_.contract_meta(token)->has_incoming_tx);
}

TEST_F(ChainTest, EachCallMinesABlock) {
  const Address token =
      chain_.deploy_runtime(user_, ContractFactory::token_contract(1));
  const auto h0 = chain_.height();
  chain_.call(user_, token, selector_calldata("totalSupply()"));
  chain_.call(user_, token, selector_calldata("totalSupply()"));
  EXPECT_EQ(chain_.height(), h0 + 2);
}

TEST_F(ChainTest, StorageHistoryTracksChanges) {
  const Address a = chain_.deploy_runtime(user_, {0x00});
  chain_.mine_until(10);
  chain_.set_storage(a, U256{0}, U256{111});
  chain_.mine_until(20);
  chain_.set_storage(a, U256{0}, U256{222});
  chain_.mine_until(30);

  EXPECT_EQ(chain_.storage_at(a, U256{0}, 5), U256{});
  EXPECT_EQ(chain_.storage_at(a, U256{0}, 10), U256{111});
  EXPECT_EQ(chain_.storage_at(a, U256{0}, 15), U256{111});
  EXPECT_EQ(chain_.storage_at(a, U256{0}, 20), U256{222});
  EXPECT_EQ(chain_.storage_at(a, U256{0}, 30), U256{222});
  // Live state agrees with the head of the journal.
  EXPECT_EQ(chain_.get_storage(a, U256{0}), U256{222});
}

TEST_F(ChainTest, SameBlockOverwriteKeepsLastValue) {
  const Address a = chain_.deploy_runtime(user_, {0x00});
  chain_.mine_until(5);
  chain_.set_storage(a, U256{3}, U256{1});
  chain_.set_storage(a, U256{3}, U256{2});
  EXPECT_EQ(chain_.storage_at(a, U256{3}, 5), U256{2});
}

TEST_F(ChainTest, UnknownSlotReadsZeroAtAnyHeight) {
  const Address a = chain_.deploy_runtime(user_, {0x00});
  EXPECT_EQ(chain_.storage_at(a, U256{42}, 0), U256{});
  EXPECT_EQ(chain_.storage_at(Address::from_label("ghost"), U256{0}, 100),
            U256{});
}

TEST_F(ChainTest, InternalTxLogRecordsDelegatecalls) {
  const Address logic = chain_.deploy_runtime(
      user_, ContractFactory::plain_contract(
                 {{.prototype = "f()", .body = BodyKind::kStop}}));
  const Address proxy =
      chain_.deploy_runtime(user_, ContractFactory::minimal_proxy(logic));

  ASSERT_TRUE(chain_.internal_txs().empty());
  chain_.call(user_, proxy, selector_calldata("f()"));
  ASSERT_EQ(chain_.internal_txs().size(), 1u);
  const InternalTx& tx = chain_.internal_txs()[0];
  EXPECT_EQ(tx.kind, evm::CallKind::kDelegateCall);
  EXPECT_EQ(tx.from, proxy);
  EXPECT_EQ(tx.to, logic);
  EXPECT_TRUE(tx.in_fallback_position);  // full calldata forwarded
  EXPECT_EQ(tx.selector, crypto::selector_u32("f()"));
}

TEST_F(ChainTest, LibraryCallAlsoAppearsInInternalTxLog) {
  // ... which is exactly why tx-mining tools (CRUSH) over-approximate.
  const Address lib =
      chain_.deploy_runtime(user_, ContractFactory::math_library());
  const Address lib_user =
      chain_.deploy_runtime(user_, ContractFactory::library_user(lib));
  chain_.call(user_, lib_user, selector_calldata("compute(uint256)"));
  ASSERT_EQ(chain_.internal_txs().size(), 1u);
  EXPECT_EQ(chain_.internal_txs()[0].kind, evm::CallKind::kDelegateCall);
  EXPECT_EQ(chain_.internal_txs()[0].from, lib_user);
  EXPECT_EQ(chain_.internal_txs()[0].to, lib);
}

TEST_F(ChainTest, CallWithValueMovesBalance) {
  const Address sink = chain_.deploy_runtime(user_, {0x00});  // STOP
  chain_.fund(user_, U256{1000});
  const auto r = chain_.call(user_, sink, {}, U256{250});
  EXPECT_TRUE(r.success());
  EXPECT_EQ(chain_.get_balance(sink), U256{250});
  EXPECT_EQ(chain_.get_balance(user_), U256{750});
}

TEST_F(ChainTest, CallWithInsufficientBalanceReverts) {
  const Address sink = chain_.deploy_runtime(user_, {0x00});
  const auto r = chain_.call(user_, sink, {}, U256{250});
  EXPECT_FALSE(r.success());
  EXPECT_EQ(chain_.get_balance(sink), U256{});
}

TEST_F(ChainTest, DeployWithInitCode) {
  const Bytes runtime = ContractFactory::token_contract(3);
  const Bytes init = Assembler::wrap_initcode(runtime, {{U256{0}, U256{77}}});
  const auto deployed = chain_.deploy(user_, init);
  ASSERT_TRUE(deployed.has_value());
  EXPECT_EQ(chain_.get_code(*deployed), runtime);
  EXPECT_EQ(chain_.get_storage(*deployed, U256{0}), U256{77});
  // Constructor writes are journaled too.
  EXPECT_EQ(chain_.storage_at(*deployed, U256{0}, chain_.height()), U256{77});
}

TEST_F(ChainTest, RevertingInitCodeReturnsNullopt) {
  EXPECT_EQ(chain_.deploy(user_, Bytes{0xfd}), std::nullopt);
}

TEST_F(ChainTest, BlockContextAdvances) {
  const U256 n0 = chain_.block_context().number;
  chain_.mine_block();
  EXPECT_EQ(chain_.block_context().number, n0 + U256{1});
  EXPECT_NE(chain_.block_hash(0), chain_.block_hash(1));
  EXPECT_EQ(chain_.block_hash(999'999), U256{});  // future blocks unknown
}

TEST(ArchiveNodeTest, CountsApiCalls) {
  Blockchain chain;
  const Address user = Address::from_label("user");
  const Address a = chain.deploy_runtime(user, {0x00});
  chain.mine_until(50);
  chain.set_storage(a, U256{0}, U256{9});

  ArchiveNode node(chain);
  EXPECT_EQ(node.get_storage_at_calls(), 0u);
  EXPECT_EQ(node.get_storage_at(a, U256{0}, 50), U256{9});
  EXPECT_EQ(node.get_storage_at(a, U256{0}, 10), U256{});
  EXPECT_EQ(node.get_storage_at_calls(), 2u);
  node.get_code(a);
  EXPECT_EQ(node.get_code_calls(), 1u);
  node.reset_counters();
  EXPECT_EQ(node.get_storage_at_calls(), 0u);
  EXPECT_EQ(node.latest_block(), chain.height());
}

}  // namespace
