// SHA-256 known-answer tests and the precompiled-contract dispatch (0x02
// sha256, 0x04 identity) through the interpreter's CALL path.
#include <gtest/gtest.h>

#include "crypto/keccak.h"
#include "crypto/sha256.h"
#include "datagen/assembler.h"
#include "evm/host.h"
#include "evm/interpreter.h"
#include "evm/precompiles.h"

namespace {

using namespace proxion;
using namespace proxion::evm;
using proxion::datagen::Assembler;

std::string hex32(const std::array<std::uint8_t, 32>& h) {
  return crypto::to_hex(std::span<const std::uint8_t>(h));
}

TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex32(crypto::sha256("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex32(crypto::sha256("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex32(crypto::sha256(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  std::string input(1'000'000, 'a');
  EXPECT_EQ(hex32(crypto::sha256(input)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundaryLengths) {
  // 55/56/63/64/65 bytes cross the padding edge cases.
  for (const std::size_t n : {55u, 56u, 63u, 64u, 65u}) {
    std::string input(n, 'x');
    const auto once = crypto::sha256(input);
    const auto again = crypto::sha256(input);
    EXPECT_EQ(once, again) << n;
    EXPECT_NE(hex32(once), std::string(64, '0'));
  }
}

TEST(Precompiles, AddressClassification) {
  for (int i = 1; i <= 9; ++i) {
    Address a;
    a.bytes[19] = static_cast<std::uint8_t>(i);
    EXPECT_TRUE(is_precompile_address(a)) << i;
  }
  EXPECT_FALSE(is_precompile_address(Address{}));          // 0x00
  Address ten;
  ten.bytes[19] = 0x0a;
  EXPECT_FALSE(is_precompile_address(ten));
  EXPECT_FALSE(is_precompile_address(Address::from_label("x")));
  Address high_bits;
  high_bits.bytes[0] = 1;
  high_bits.bytes[19] = 2;
  EXPECT_FALSE(is_precompile_address(high_bits));
}

TEST(Precompiles, Sha256Direct) {
  Address two;
  two.bytes[19] = 2;
  const Bytes input = {'a', 'b', 'c'};
  const auto result = run_precompile(two, input);
  ASSERT_TRUE(result.has_value());
  const auto expected = crypto::sha256("abc");
  EXPECT_TRUE(std::equal(result->output.begin(), result->output.end(),
                         expected.begin()));
  EXPECT_EQ(result->gas_cost, 60u + 12u);  // 1 word
}

TEST(Precompiles, IdentityDirect) {
  Address four;
  four.bytes[19] = 4;
  const Bytes input = {1, 2, 3, 4, 5};
  const auto result = run_precompile(four, input);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->output, input);
}

TEST(Precompiles, UnhandledReservedAddressReturnsEmptySuccess) {
  Address one;
  one.bytes[19] = 1;  // ecrecover: modelled as empty success
  const auto result = run_precompile(one, Bytes{1, 2, 3});
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->output.empty());
}

class PrecompileCallTest : public ::testing::Test {
 protected:
  ExecResult run(const Bytes& code, Bytes calldata = {}) {
    host_.set_code(self_, code);
    Interpreter interp(host_);
    CallParams params;
    params.code_address = self_;
    params.storage_address = self_;
    params.calldata = std::move(calldata);
    return interp.execute(params);
  }

  MemoryHost host_;
  Address self_ = Address::from_label("pc.self");
};

TEST_F(PrecompileCallTest, StaticcallToSha256) {
  // mem[0..3) = "abc"; staticcall(gas, 0x02, 0, 3, 0x20, 32); return mem.
  Assembler a;
  // Build "abc" in memory via three MSTORE8s.
  a.push(U256{'a'}, 1).push(U256{0}, 1).op(Opcode::MSTORE8);
  a.push(U256{'b'}, 1).push(U256{1}, 1).op(Opcode::MSTORE8);
  a.push(U256{'c'}, 1).push(U256{2}, 1).op(Opcode::MSTORE8);
  a.push(U256{32}, 1);       // retSize
  a.push(U256{0x20}, 1);     // retOffset
  a.push(U256{3}, 1);        // argsSize
  a.push(U256{0}, 1);        // argsOffset
  a.push(U256{2}, 1);        // address 0x02
  a.op(Opcode::GAS).op(Opcode::STATICCALL).op(Opcode::POP);
  a.push(U256{32}, 1).push(U256{0x20}, 1).op(Opcode::RETURN);
  const ExecResult r = run(a.assemble());
  ASSERT_EQ(r.halt, HaltReason::kReturn);
  const auto expected = crypto::sha256("abc");
  EXPECT_TRUE(std::equal(r.return_data.begin(), r.return_data.end(),
                         expected.begin()));
}

TEST_F(PrecompileCallTest, CallToIdentityCopiesInput) {
  Assembler a;
  a.push(U256{0xdeadbeef}, 4).push(U256{0}, 1).op(Opcode::MSTORE);
  a.push(U256{32}, 1);     // retSize
  a.push(U256{0x40}, 1);   // retOffset
  a.push(U256{32}, 1);     // argsSize
  a.push(U256{0}, 1);      // argsOffset
  a.push(U256{0}, 1);      // value
  a.push(U256{4}, 1);      // address 0x04
  a.op(Opcode::GAS).op(Opcode::CALL).op(Opcode::POP);
  a.push(U256{32}, 1).push(U256{0x40}, 1).op(Opcode::RETURN);
  const ExecResult r = run(a.assemble());
  ASSERT_EQ(r.halt, HaltReason::kReturn);
  EXPECT_EQ(U256::from_be_slice(r.return_data), U256{0xdeadbeef});
}

TEST_F(PrecompileCallTest, ReturndatasizeReflectsPrecompileOutput) {
  Assembler a;
  a.push(U256{0}, 1).push(U256{0}, 1).push(U256{5}, 1).push(U256{0}, 1);
  a.push(U256{4}, 1);  // identity with 5 input bytes
  a.op(Opcode::GAS).op(Opcode::STATICCALL).op(Opcode::POP);
  a.op(Opcode::RETURNDATASIZE);
  a.push(U256{0}, 1).op(Opcode::MSTORE);
  a.push(U256{32}, 1).push(U256{0}, 1).op(Opcode::RETURN);
  const ExecResult r = run(a.assemble());
  EXPECT_EQ(U256::from_be_slice(r.return_data), U256{5});
}

}  // namespace
