#!/usr/bin/env sh
# Runs clang-tidy (config: .clang-tidy at the repo root) over the first-party
# sources using the compile database from a normal configure. Degrades to a
# no-op success when clang-tidy is not installed — the dev container does not
# ship it; CI installs it explicitly.
#
# Usage: tools/tidy_smoke.sh [build-dir]
#   build-dir defaults to "build"; it is configured here if needed (the
#   top-level CMakeLists already exports compile_commands.json).
set -eu

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "tidy_smoke: clang-tidy not installed; skipping (OK)"
  exit 0
fi

BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 4)"

if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
  echo "== configure (${BUILD_DIR}) =="
  cmake -B "${BUILD_DIR}" -S .
fi

# First-party translation units only: system/GTest headers are filtered by
# HeaderFilterRegex, and bench/test code is exercised by its own jobs.
FILES="$(find src -name '*.cpp' | sort)"

echo "== clang-tidy ($(clang-tidy --version | head -n 1)) =="
STATUS=0
for f in ${FILES}; do
  # Keep going through every file; fail at the end if any emitted an error
  # (warnings are advisory — the curated check list keeps them actionable).
  out="$(clang-tidy -p "${BUILD_DIR}" --quiet "${f}" 2>&1 || true)"
  if [ -n "${out}" ]; then
    printf '%s\n' "== ${f} ==" "${out}"
  fi
  if printf '%s' "${out}" | grep -q " error: "; then
    STATUS=1
  fi
done

if [ "${STATUS}" -ne 0 ]; then
  echo "tidy_smoke: FAILED (errors above)"
  exit 1
fi
echo "tidy_smoke: OK"
