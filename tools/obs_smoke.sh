#!/usr/bin/env sh
# End-to-end smoke of the live introspection plane: start landscape_survey
# in serving mode on an ephemeral port, scrape /metrics, /healthz and /spans
# MID-SWEEP over real loopback HTTP, and assert the headline series are
# present and monotone across two scrapes. This is the "can an operator
# actually watch a sweep" gate — the unit suite (test_obs_export) covers the
# rendering math; this covers the wiring.
#
# Usage: tools/obs_smoke.sh [build-dir]
#   build-dir defaults to ./build (configured if missing).
set -eu

BUILD_DIR="${1:-build}"

if [ ! -f "${BUILD_DIR}/CMakeCache.txt" ]; then
  cmake -B "${BUILD_DIR}" -S .
fi
cmake --build "${BUILD_DIR}" -j "$(nproc 2>/dev/null || echo 4)" \
  --target landscape_survey

TMP="$(mktemp -d)"
SURVEY_PID=""
cleanup() {
  if [ -n "${SURVEY_PID}" ] && kill -0 "${SURVEY_PID}" 2>/dev/null; then
    kill "${SURVEY_PID}" 2>/dev/null || true
    wait "${SURVEY_PID}" 2>/dev/null || true
  fi
  rm -rf "${TMP}"
}
trap cleanup EXIT INT TERM

echo "== start landscape_survey --serve 0 (ephemeral port) =="
"${BUILD_DIR}/examples/landscape_survey" \
  --serve 0 --sweeps 0 --population 1000 \
  --checkpoint "${TMP}/sweep.journal" \
  --events "${TMP}/events.ndjson" \
  >"${TMP}/stdout.log" 2>"${TMP}/stderr.log" &
SURVEY_PID=$!

# The port line appears once population generation finishes and the server
# is bound; the format is pinned in examples/landscape_survey.cpp.
PORT=""
i=0
while [ "${i}" -lt 120 ]; do
  PORT="$(sed -n 's/^serving introspection on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' \
    "${TMP}/stdout.log")"
  [ -n "${PORT}" ] && break
  if ! kill -0 "${SURVEY_PID}" 2>/dev/null; then
    echo "landscape_survey exited before serving:" >&2
    cat "${TMP}/stdout.log" "${TMP}/stderr.log" >&2
    exit 1
  fi
  i=$((i + 1))
  sleep 1
done
if [ -z "${PORT}" ]; then
  echo "timed out waiting for the serving line" >&2
  exit 1
fi
echo "  serving on 127.0.0.1:${PORT}"

echo "== scrape mid-sweep and assert series presence + monotonicity =="
python3 - "${PORT}" <<'EOF'
import json
import re
import sys
import time
import urllib.request

port = int(sys.argv[1])
base = f"http://127.0.0.1:{port}"


def get(path):
    with urllib.request.urlopen(base + path, timeout=10) as resp:
        assert resp.status == 200, f"{path}: HTTP {resp.status}"
        return resp.read().decode()


def samples(body):
    out = {}
    for line in body.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        out[name] = float(value)
    return out


# Wait (bounded) until the first sweep completed so the end-of-run sweep.*
# gauges exist, then scrape twice with a gap.
deadline = time.monotonic() + 120
while True:
    health = json.loads(get("/healthz"))
    if health["sweeps"]["completed"] >= 1:
        break
    assert time.monotonic() < deadline, f"no sweep completed: {health}"
    time.sleep(1)

assert health["status"] in ("ok", "degraded"), health
for key in ("phase", "contracts", "shards", "quarantined", "journal_bytes",
            "breaker"):
    assert key in health, f"healthz missing {key!r}: {health}"
assert health["shards"]["total"] >= 1, health

# shards.committed resets at every serving-mode lap, so a single read can
# legitimately land on 0 — poll for a moment where a commit is visible.
max_committed = 0
deadline = time.monotonic() + 30
while max_committed < 1 and time.monotonic() < deadline:
    max_committed = max(max_committed,
                        json.loads(get("/healthz"))["shards"]["committed"])
assert max_committed >= 1, "never observed a committed shard"
print(f"  /healthz: status={health['status']} phase={health['phase']} "
      f"shards committed observed={max_committed}/{health['shards']['total']}")

s1 = samples(get("/metrics"))
time.sleep(2)
s2 = samples(get("/metrics"))

required = [
    "proxion_contracts_per_s",                          # headline rate
    "proxion_sweep_contracts_total",                    # its source counter
    "proxion_chain_archive_get_storage_at_calls_total", # live RPC volume
]
for name in required:
    assert name in s1, f"missing required series {name}"
    assert name in s2, f"series {name} vanished between scrapes"

# Shard progress and per-sweep RPC gauge families exist (exact members may
# grow; assert the family).
for prefix in ("proxion_sweep_shards_", "proxion_sweep_rpc_"):
    assert any(k.startswith(prefix) for k in s2), f"no series under {prefix}"

# Counters must be monotone between scrapes; the sweep loop keeps running,
# so RPC volume must have strictly advanced.
for name in ("proxion_sweep_contracts_total",
             "proxion_chain_archive_get_storage_at_calls_total"):
    assert s2[name] >= s1[name], f"{name} went backwards: {s1[name]} -> {s2[name]}"
storage = "proxion_chain_archive_get_storage_at_calls_total"
assert s2[storage] > s1[storage], "no RPC progress between scrapes"

# Histogram families render the full bucket/sum/count triple.
hist = [k for k in s2 if re.search(r'_bucket\{le="\+Inf"\}$', k)]
assert hist, "no histogram series"
for bucket in hist:
    family = bucket[: -len('_bucket{le="+Inf"}')]
    assert family + "_sum" in s2, f"{family} missing _sum"
    assert family + "_count" in s2, f"{family} missing _count"

# /spans drains live NDJSON span records.
spans = get("/spans").strip().splitlines()
assert spans, "/spans returned no records"
for line in spans[:5]:
    record = json.loads(line)
    assert "name" in record and "dur_ns" in record, record

print(f"  /metrics: {len(s2)} series, "
      f"contracts_per_s={s2['proxion_contracts_per_s']:.1f}, "
      f"storage calls {s1[storage]:.0f} -> {s2[storage]:.0f}")
print(f"  /spans: {len(spans)} records")
EOF

# The structured event log must have absorbed the operational lines.
if ! grep -q '"component":"sweep"' "${TMP}/events.ndjson"; then
  echo "events.ndjson has no sweep events" >&2
  exit 1
fi
echo "  events.ndjson: $(wc -l <"${TMP}/events.ndjson") events"

echo "obs_smoke: OK"
