#!/usr/bin/env sh
# The disk-fault chaos gate: power-cut the durable sweep at EVERY mutating-op
# boundary (test_chaos_crash runs the exhaustive matrix over the model
# filesystem), fuzz every single-byte journal corruption, and exercise the
# ENOSPC/fsyncgate/bit-rot disasters — then once more under ASan, and
# finally record chaos-recovery timings into BENCH_results.json.
#
# Usage: tools/chaos_smoke.sh [build-dir]
#   build-dir defaults to ./build (configured if missing).
# Env:
#   PROXION_BENCH_SCALE  population for the recovery-timing bench (default
#                        2000 here; bench default is 12000).
#   PROXION_CHAOS_ASAN   set to 0 to skip the ASan leg (default on).
set -eu

BUILD_DIR="${1:-build}"
SCALE="${PROXION_BENCH_SCALE:-2000}"
ASAN="${PROXION_CHAOS_ASAN:-1}"
JOBS="$(nproc 2>/dev/null || echo 4)"
CHAOS_TESTS="test_vfs_fault|test_journal_fuzz|test_chaos_crash"

if [ ! -f "${BUILD_DIR}/CMakeCache.txt" ]; then
  cmake -B "${BUILD_DIR}" -S .
fi
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target \
  test_vfs_fault test_journal_fuzz test_chaos_crash bench_chaos

echo "== chaos matrix (power cut at every boundary + fuzz + disasters) =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}" \
  -R "${CHAOS_TESTS}"

if [ "${ASAN}" != "0" ]; then
  dir="build-san-address"
  echo "== chaos matrix under ASan+UBSan =="
  if [ ! -f "${dir}/CMakeCache.txt" ]; then
    cmake -B "${dir}" -S . -DPROXION_SANITIZE=address \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
  fi
  cmake --build "${dir}" -j "${JOBS}" --target \
    test_vfs_fault test_journal_fuzz test_chaos_crash
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" \
    -R "${CHAOS_TESTS}"
fi

echo "== chaos-recovery timings (PROXION_BENCH_SCALE=${SCALE}) =="
PROXION_BENCH_SCALE="${SCALE}" "${BUILD_DIR}/bench/bench_chaos"

echo "== chaos acceptance (resume identical, zero committed-work recompute) =="
python3 - <<'EOF'
import json

with open("BENCH_results.json") as f:
    results = json.load(f)["bench_chaos"]

assert results["chaos_sweeps_identical"] == 1.0, \
    "a resumed sweep diverged from the fault-free run"
assert results["chaos_zero_recompute"] == 1.0, \
    "a resume recomputed committed work"
assert results["chaos_boundaries"] >= 20, \
    f"suspiciously few power-cut boundaries: {results['chaos_boundaries']}"
print(f"  {int(results['chaos_boundaries'])} boundaries, "
      f"resume mean {results['chaos_resume_ms_mean']:.1f} ms, "
      f"all resumes bit-identical, zero committed-work recompute")
EOF

echo "chaos_smoke: OK"
