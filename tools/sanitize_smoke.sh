#!/usr/bin/env sh
# Builds and runs the concurrency- and fault-tolerance-critical tests under
# both sanitizer flavors: ASan+UBSan (memory errors, UB) and TSan (data
# races in the pipeline / thread pool / resilience layer). One build tree
# per flavor — sanitizers cannot be mixed in one binary.
#
# Usage: tools/sanitize_smoke.sh [test-regex]
#   test-regex defaults to the fault-injection + concurrency suites.
set -eu

TESTS="${1:-test_resilience|test_archive_batch|test_thread_pool|test_pipeline|test_analysis_cache|test_obs_metrics|test_obs_trace|test_obs_export|test_static_analysis|test_static_tier|test_layout|test_fuzz|test_store_journal|test_durable_sweep|test_vfs_fault|test_journal_fuzz|test_query_service}"
JOBS="$(nproc 2>/dev/null || echo 4)"
# CI runs one flavor per job; default is both.
FLAVORS="${PROXION_SANITIZE_FLAVORS:-address thread}"

for flavor in ${FLAVORS}; do
  dir="build-san-${flavor}"
  echo "== configure + build (${flavor}) =="
  cmake -B "${dir}" -S . -DPROXION_SANITIZE="${flavor}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "${dir}" -j "${JOBS}" --target \
    test_resilience test_archive_batch test_thread_pool test_pipeline \
    test_analysis_cache test_obs_metrics test_obs_trace test_obs_export \
    test_static_analysis test_static_tier test_layout test_fuzz \
    test_store_journal test_durable_sweep test_vfs_fault test_journal_fuzz \
    test_query_service

  echo "== ctest under ${flavor} sanitizer =="
  if [ "${flavor}" = "thread" ]; then
    # Suppress the libstdc++ <12.3 atomic<shared_ptr> false positive (see
    # the suppressions file); harmless on toolchains with _GLIBCXX_TSAN.
    TSAN_OPTIONS="suppressions=$(pwd)/tools/tsan_suppressions.txt ${TSAN_OPTIONS:-}" \
      ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" -R "${TESTS}"
  else
    ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" -R "${TESTS}"
  fi
done

echo "sanitize_smoke: OK (${FLAVORS})"
