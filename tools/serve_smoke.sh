#!/usr/bin/env sh
# End-to-end smoke of the always-on analysis service: start landscape_survey
# in --follow mode on an ephemeral port, let its deterministic workload mine
# deploys/upgrades/empty blocks, and assert over real loopback HTTP that
#   - /v1/contract answers flip to the new implementation after an upgrade,
#   - /v1/status shows the staleness gauge back at 0 between laps,
#   - /v1/vulns filters by class and rejects unknown classes,
#   - /metrics carries the sweep.follower.* gauges,
#   - /healthz parks the phase at "following" between laps.
# The unit suite (test_query_service) covers the rendering and the follower
# protocol; this covers the wiring an operator actually runs.
#
# Usage: tools/serve_smoke.sh [build-dir]
#   build-dir defaults to ./build (configured if missing).
set -eu

BUILD_DIR="${1:-build}"

if [ ! -f "${BUILD_DIR}/CMakeCache.txt" ]; then
  cmake -B "${BUILD_DIR}" -S .
fi
cmake --build "${BUILD_DIR}" -j "$(nproc 2>/dev/null || echo 4)" \
  --target landscape_survey

TMP="$(mktemp -d)"
SURVEY_PID=""
cleanup() {
  if [ -n "${SURVEY_PID}" ] && kill -0 "${SURVEY_PID}" 2>/dev/null; then
    kill "${SURVEY_PID}" 2>/dev/null || true
    wait "${SURVEY_PID}" 2>/dev/null || true
  fi
  rm -rf "${TMP}"
}
trap cleanup EXIT INT TERM

echo "== start landscape_survey --follow --serve 0 (ephemeral port) =="
"${BUILD_DIR}/examples/landscape_survey" \
  --follow --blocks 0 --serve 0 --population 800 \
  --checkpoint "${TMP}/follow.journal" \
  --events "${TMP}/events.ndjson" \
  >"${TMP}/stdout.log" 2>"${TMP}/stderr.log" &
SURVEY_PID=$!

# The port line appears once population generation finishes and the server
# is bound; the format is pinned in examples/landscape_survey.cpp.
PORT=""
i=0
while [ "${i}" -lt 120 ]; do
  PORT="$(sed -n 's/^serving introspection on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' \
    "${TMP}/stdout.log")"
  [ -n "${PORT}" ] && break
  if ! kill -0 "${SURVEY_PID}" 2>/dev/null; then
    echo "landscape_survey exited before serving:" >&2
    cat "${TMP}/stdout.log" "${TMP}/stderr.log" >&2
    exit 1
  fi
  i=$((i + 1))
  sleep 1
done
if [ -z "${PORT}" ]; then
  echo "timed out waiting for the serving line" >&2
  exit 1
fi
echo "  serving on 127.0.0.1:${PORT}"

# Wait for the workload's first upgrade line (format pinned in the example).
i=0
while [ "${i}" -lt 120 ]; do
  if grep -q '^follow: block=[0-9]* upgrade ' "${TMP}/stdout.log"; then break; fi
  i=$((i + 1))
  sleep 1
done

echo "== query the /v1 plane while the follower laps =="
python3 - "${PORT}" "${TMP}/stdout.log" <<'EOF'
import json
import re
import sys
import time
import urllib.error
import urllib.request

port = int(sys.argv[1])
log_path = sys.argv[2]
base = f"http://127.0.0.1:{port}"


def get(path):
    """Returns (status, parsed JSON body); 4xx bodies are JSON too."""
    try:
        with urllib.request.urlopen(base + path, timeout=10) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read().decode())


def upgrades():
    """addr -> (set of impls ever written, last block)."""
    out = {}
    with open(log_path) as f:
        for line in f:
            m = re.match(
                r"follow: block=(\d+) (?:upgrade|deploy-upgrade) "
                r"addr=(0x[0-9a-f]{40}) impl=(0x[0-9a-f]{40})", line)
            if m:
                block, addr, impl = int(m.group(1)), m.group(2), m.group(3)
                impls, _ = out.get(addr, (set(), 0))
                impls.add(impl)
                out[addr] = (impls, block)
    return out


# 1. Upgrade visibility: the served implementation flips to a written one.
deadline = time.monotonic() + 120
flipped = None
while flipped is None:
    assert time.monotonic() < deadline, "no upgrade became visible over /v1"
    for addr, (impls, block) in upgrades().items():
        status, body = get(f"/v1/contract/{addr}")
        if status != 200 or body["head_block"] < block:
            continue  # snapshot not caught up to this write yet
        if body["logic"]["logic_address"] in impls:
            flipped = (addr, body)
            break
    if flipped is None:
        time.sleep(0.5)
addr, body = flipped
assert body["verdict"] == "proxy", body
assert body["logic"]["source"] == "storage-slot", body
print(f"  /v1/contract/{addr[:10]}…: impl flipped at head {body['head_block']}")

# 2. Staleness returns to 0 between laps (the workload fences every block).
deadline = time.monotonic() + 60
while True:
    status, st = get("/v1/status")
    assert status == 200
    if st["staleness_blocks"] == 0 and st["laps"] >= 1:
        break
    assert time.monotonic() < deadline, f"staleness never drained: {st}"
    time.sleep(0.2)
assert st["following"] is True, st
assert st["snapshot_entries"] > 0, st
print(f"  /v1/status: laps={st['laps']} fast_forwards={st['fast_forwards']} "
      f"staleness=0 entries={st['snapshot_entries']}")

# 3. Vulnerability-class filtering + the uniform error shape.
status, vulns = get("/v1/vulns?class=storage_collision")
assert status == 200 and vulns["class"] == "storage_collision", vulns
assert vulns["count"] == len(vulns["addresses"]) or vulns["truncated"], vulns
status, err = get("/v1/vulns?class=bogus")
assert status == 400 and err["error"] == "unknown_class", err
status, err = get("/v1/contract/" + "0" * 40)
assert status == 404 and err["error"] == "not_found", err
status, err = get("/v1/contract/xyz")
assert status == 400 and err["error"] == "bad_address", err
print(f"  /v1/vulns: {vulns['count']} storage_collision hit(s); "
      "error shapes uniform")

# 4. The follower gauges are exported and /healthz is in the following phase.
with urllib.request.urlopen(base + "/metrics", timeout=10) as resp:
    metrics = resp.read().decode()
for series in ("proxion_sweep_follower_head",
               "proxion_sweep_follower_staleness_blocks",
               "proxion_sweep_follower_laps",
               "proxion_sweep_follower_snapshot_version"):
    assert series in metrics, f"missing {series}"

deadline = time.monotonic() + 60
while True:
    with urllib.request.urlopen(base + "/healthz", timeout=10) as resp:
        health = json.loads(resp.read().decode())
    if health["phase"] == "following":
        break
    assert time.monotonic() < deadline, f"never parked at following: {health}"
    time.sleep(0.2)
print(f"  /metrics: follower gauges present; /healthz phase=following")
EOF

kill "${SURVEY_PID}" 2>/dev/null || true
wait "${SURVEY_PID}" 2>/dev/null || true
SURVEY_PID=""

# The structured event log must have absorbed the follower's lap lines.
if ! grep -q '"component":"follower"' "${TMP}/events.ndjson"; then
  echo "events.ndjson has no follower events" >&2
  exit 1
fi
echo "  events.ndjson: $(wc -l <"${TMP}/events.ndjson") events"

echo "serve_smoke: OK"
