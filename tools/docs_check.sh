#!/bin/sh
# Docs consistency gate (CI "docs" job):
#   1. every relative markdown link in *.md and docs/*.md resolves to a file
#      that exists in the repo (external http(s)/mailto links are skipped);
#   2. every PipelineConfig knob documented in README.md's knob table exists
#      in src/core/pipeline.h (dotted knobs like `static_tier.enabled` are
#      checked by their leaf member name);
#   3. every DurableSweepConfig knob documented in README.md's sweep-knob
#      table exists in src/store/durable_sweep.h;
#   4. the README knob table and TelemetryConfig agree exactly: every field
#      of `struct TelemetryConfig` in src/core/pipeline.h has a
#      `telemetry.<field>` row, and every `telemetry.*` row names a real
#      field (catches docs rotting in either direction as the live
#      introspection plane grows).
# Pure POSIX sh + grep/sed/awk; no network, no build required.
set -eu
cd "$(dirname "$0")/.."

fail=0

# ---- 1. relative markdown links ------------------------------------------
for f in *.md docs/*.md; do
  [ -f "$f" ] || continue
  dir=$(dirname "$f")
  links=$(grep -o ']([^)]*)' "$f" | sed 's/^](//; s/)$//; s/#.*//') || true
  for link in $links; do
    case "$link" in
      http://* | https://* | mailto:* | '') continue ;;
    esac
    if [ ! -e "$dir/$link" ] && [ ! -e "$link" ]; then
      echo "docs_check: broken link in $f -> $link" >&2
      fail=1
    fi
  done
done

# ---- 2. README PipelineConfig knobs vs pipeline.h ------------------------
knobs=$(awk '/^\| Knob \| Default \| Meaning \|/ { in_table = 1; next }
             in_table && !/^\|/ { in_table = 0 }
             in_table' README.md |
  sed -n 's/^| `\([^`]*\)`.*/\1/p')
if [ -z "$knobs" ]; then
  echo "docs_check: could not find the PipelineConfig knob table in README.md" >&2
  fail=1
fi
for knob in $knobs; do
  leaf=${knob##*.}
  if ! grep -q -w "$leaf" src/core/pipeline.h; then
    echo "docs_check: README documents PipelineConfig knob '$knob' but" \
      "'$leaf' does not appear in src/core/pipeline.h" >&2
    fail=1
  fi
done

# ---- 3. README DurableSweepConfig knobs vs durable_sweep.h ---------------
sweep_knobs=$(awk '/^\| Sweep knob \| Default \| Meaning \|/ { in_table = 1; next }
                   in_table && !/^\|/ { in_table = 0 }
                   in_table' README.md |
  sed -n 's/^| `\([^`]*\)`.*/\1/p')
if [ -z "$sweep_knobs" ]; then
  echo "docs_check: could not find the DurableSweepConfig knob table in README.md" >&2
  fail=1
fi
for knob in $sweep_knobs; do
  leaf=${knob##*.}
  if ! grep -q -w "$leaf" src/store/durable_sweep.h; then
    echo "docs_check: README documents DurableSweepConfig knob '$knob' but" \
      "'$leaf' does not appear in src/store/durable_sweep.h" >&2
    fail=1
  fi
done

# ---- 4. TelemetryConfig fields vs README telemetry.* rows (both ways) ----
telemetry_fields=$(awk '/^struct TelemetryConfig \{/ { in_struct = 1; next }
                        in_struct && /^\};/ { in_struct = 0 }
                        in_struct' src/core/pipeline.h |
  sed -n 's/^ *[A-Za-z_][A-Za-z_0-9:<>]*[ *&][ *&]*\([a-z_][a-z_0-9]*\)\( = [^;]*\)\{0,1\};$/\1/p')
if [ -z "$telemetry_fields" ]; then
  echo "docs_check: could not parse TelemetryConfig fields from src/core/pipeline.h" >&2
  fail=1
fi
for field in $telemetry_fields; do
  if ! printf '%s\n' "$knobs" | grep -q "^telemetry\.$field\$"; then
    echo "docs_check: TelemetryConfig field '$field' has no" \
      "'telemetry.$field' row in README.md's knob table" >&2
    fail=1
  fi
done
for knob in $knobs; do
  case "$knob" in
    telemetry.*) ;;
    *) continue ;;
  esac
  leaf=${knob##*.}
  if ! printf '%s\n' "$telemetry_fields" | grep -q "^$leaf\$"; then
    echo "docs_check: README documents '$knob' but TelemetryConfig has no" \
      "field '$leaf'" >&2
    fail=1
  fi
done

if [ "$fail" -eq 0 ]; then
  echo "docs_check: all markdown links resolve;" \
    "all $(echo "$knobs" | wc -l | tr -d ' ') documented pipeline knobs and" \
    "$(echo "$sweep_knobs" | wc -l | tr -d ' ') sweep knobs exist;" \
    "all $(echo "$telemetry_fields" | wc -l | tr -d ' ') TelemetryConfig" \
    "fields documented"
fi
exit "$fail"
