#!/bin/sh
# Docs consistency gate (CI "docs" job):
#   1. every relative markdown link in *.md and docs/*.md resolves to a file
#      that exists in the repo (external http(s)/mailto links are skipped);
#   2. every PipelineConfig knob documented in README.md's knob table exists
#      in src/core/pipeline.h (dotted knobs like `static_tier.enabled` are
#      checked by their leaf member name);
#   3. every DurableSweepConfig knob documented in README.md's sweep-knob
#      table exists in src/store/durable_sweep.h;
#   4. the README knob table and TelemetryConfig agree exactly: every field
#      of `struct TelemetryConfig` in src/core/pipeline.h has a
#      `telemetry.<field>` row, and every `telemetry.*` row names a real
#      field (catches docs rotting in either direction as the live
#      introspection plane grows);
#   5. docs/OPERATIONS.md stays wired to reality: every endpoint path in
#      its endpoint table appears as a string literal in the serving code,
#      and every row of its tuning table names a config field that exists
#      in the header the row points at;
#   6. docs/QUERY_API.md and the /v1 renderers agree exactly: every field
#      name in the spec's `| Field | Type | Meaning |` tables is an
#      append_key() call site in src/serve/*.cpp and vice versa (the spec
#      is normative — an undocumented field is as much a failure as a
#      documented-but-gone one).
# Pure POSIX sh + grep/sed/awk; no network, no build required.
set -eu
cd "$(dirname "$0")/.."

fail=0

# ---- 1. relative markdown links ------------------------------------------
for f in *.md docs/*.md; do
  [ -f "$f" ] || continue
  dir=$(dirname "$f")
  links=$(grep -o ']([^)]*)' "$f" | sed 's/^](//; s/)$//; s/#.*//') || true
  for link in $links; do
    case "$link" in
      http://* | https://* | mailto:* | '') continue ;;
    esac
    if [ ! -e "$dir/$link" ] && [ ! -e "$link" ]; then
      echo "docs_check: broken link in $f -> $link" >&2
      fail=1
    fi
  done
done

# ---- 2. README PipelineConfig knobs vs pipeline.h ------------------------
knobs=$(awk '/^\| Knob \| Default \| Meaning \|/ { in_table = 1; next }
             in_table && !/^\|/ { in_table = 0 }
             in_table' README.md |
  sed -n 's/^| `\([^`]*\)`.*/\1/p')
if [ -z "$knobs" ]; then
  echo "docs_check: could not find the PipelineConfig knob table in README.md" >&2
  fail=1
fi
for knob in $knobs; do
  leaf=${knob##*.}
  if ! grep -q -w "$leaf" src/core/pipeline.h; then
    echo "docs_check: README documents PipelineConfig knob '$knob' but" \
      "'$leaf' does not appear in src/core/pipeline.h" >&2
    fail=1
  fi
done

# ---- 3. README DurableSweepConfig knobs vs durable_sweep.h ---------------
sweep_knobs=$(awk '/^\| Sweep knob \| Default \| Meaning \|/ { in_table = 1; next }
                   in_table && !/^\|/ { in_table = 0 }
                   in_table' README.md |
  sed -n 's/^| `\([^`]*\)`.*/\1/p')
if [ -z "$sweep_knobs" ]; then
  echo "docs_check: could not find the DurableSweepConfig knob table in README.md" >&2
  fail=1
fi
for knob in $sweep_knobs; do
  leaf=${knob##*.}
  if ! grep -q -w "$leaf" src/store/durable_sweep.h; then
    echo "docs_check: README documents DurableSweepConfig knob '$knob' but" \
      "'$leaf' does not appear in src/store/durable_sweep.h" >&2
    fail=1
  fi
done

# ---- 4. TelemetryConfig fields vs README telemetry.* rows (both ways) ----
telemetry_fields=$(awk '/^struct TelemetryConfig \{/ { in_struct = 1; next }
                        in_struct && /^\};/ { in_struct = 0 }
                        in_struct' src/core/pipeline.h |
  sed -n 's/^ *[A-Za-z_][A-Za-z_0-9:<>]*[ *&][ *&]*\([a-z_][a-z_0-9]*\)\( = [^;]*\)\{0,1\};$/\1/p')
if [ -z "$telemetry_fields" ]; then
  echo "docs_check: could not parse TelemetryConfig fields from src/core/pipeline.h" >&2
  fail=1
fi
for field in $telemetry_fields; do
  if ! printf '%s\n' "$knobs" | grep -q "^telemetry\.$field\$"; then
    echo "docs_check: TelemetryConfig field '$field' has no" \
      "'telemetry.$field' row in README.md's knob table" >&2
    fail=1
  fi
done
for knob in $knobs; do
  case "$knob" in
    telemetry.*) ;;
    *) continue ;;
  esac
  leaf=${knob##*.}
  if ! printf '%s\n' "$telemetry_fields" | grep -q "^$leaf\$"; then
    echo "docs_check: README documents '$knob' but TelemetryConfig has no" \
      "field '$leaf'" >&2
    fail=1
  fi
done

# ---- 5. OPERATIONS.md endpoint + tuning tables vs source ----------------
endpoints=$(awk '/^\| Endpoint \| Content type \| Meaning \|/ { in_table = 1; next }
                 in_table && !/^\|/ { in_table = 0 }
                 in_table' docs/OPERATIONS.md |
  sed -n 's/^| `\([^`]*\)`.*/\1/p')
if [ -z "$endpoints" ]; then
  echo "docs_check: could not find the endpoint table in docs/OPERATIONS.md" >&2
  fail=1
fi
for endpoint in $endpoints; do
  # Placeholder suffixes (<addr>, <hash>) are not part of the registered
  # path; the literal before them is.
  path=${endpoint%%<*}
  if ! grep -qF "\"$path\"" src/serve/*.cpp src/obs/*.cpp \
    examples/landscape_survey.cpp; then
    echo "docs_check: OPERATIONS.md documents endpoint '$endpoint' but" \
      "\"$path\" is not registered anywhere in the serving code" >&2
    fail=1
  fi
done

service_knobs=$(awk '/^\| Service knob \| Where \| Meaning \|/ { in_table = 1; next }
                     in_table && !/^\|/ { in_table = 0 }
                     in_table' docs/OPERATIONS.md |
  sed -n 's/^| `\([^`]*\)` | `\([^`]*\)`.*/\1 \2/p')
if [ -z "$service_knobs" ]; then
  echo "docs_check: could not find the tuning table in docs/OPERATIONS.md" >&2
  fail=1
fi
printf '%s\n' "$service_knobs" | while read -r knob where; do
  [ -n "$knob" ] || continue
  leaf=${knob##*.}
  if [ ! -f "$where" ]; then
    echo "docs_check: OPERATIONS.md tuning row '$knob' points at" \
      "missing file '$where'" >&2
    exit 1
  fi
  if ! grep -q -w "$leaf" "$where"; then
    echo "docs_check: OPERATIONS.md documents tuning knob '$knob' but" \
      "'$leaf' does not appear in $where" >&2
    exit 1
  fi
done || fail=1

# ---- 6. QUERY_API.md field tables vs append_key call sites (both ways) ---
api_fields=$(awk '/^\| Field \| Type \| Meaning \|/ { in_table = 1; next }
                  in_table && !/^\|/ { in_table = 0 }
                  in_table' docs/QUERY_API.md |
  sed -n 's/^| `\([^`]*\)`.*/\1/p' | sort -u)
impl_fields=$(sed -n 's/.*append_key([A-Za-z_][A-Za-z_0-9]*, "\([^"]*\)").*/\1/p' \
  src/serve/*.cpp | sort -u)
if [ -z "$api_fields" ] || [ -z "$impl_fields" ]; then
  echo "docs_check: could not extract /v1 field names (QUERY_API.md tables" \
    "or append_key call sites came up empty)" >&2
  fail=1
fi
for field in $impl_fields; do
  if ! printf '%s\n' "$api_fields" | grep -q "^$field\$"; then
    echo "docs_check: /v1 responses render field '$field' (append_key in" \
      "src/serve) but docs/QUERY_API.md does not document it" >&2
    fail=1
  fi
done
for field in $api_fields; do
  if ! printf '%s\n' "$impl_fields" | grep -q "^$field\$"; then
    echo "docs_check: docs/QUERY_API.md documents field '$field' but no" \
      "append_key call site in src/serve renders it" >&2
    fail=1
  fi
done

if [ "$fail" -eq 0 ]; then
  echo "docs_check: all markdown links resolve;" \
    "all $(echo "$knobs" | wc -l | tr -d ' ') documented pipeline knobs and" \
    "$(echo "$sweep_knobs" | wc -l | tr -d ' ') sweep knobs exist;" \
    "all $(echo "$telemetry_fields" | wc -l | tr -d ' ') TelemetryConfig" \
    "fields documented;" \
    "$(echo "$endpoints" | wc -l | tr -d ' ') endpoints and" \
    "$(echo "$service_knobs" | wc -l | tr -d ' ') service knobs wired;" \
    "$(echo "$api_fields" | wc -l | tr -d ' ') /v1 fields in sync"
fi
exit "$fail"
