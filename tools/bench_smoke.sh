#!/usr/bin/env sh
# Fast end-to-end smoke of the build: the full test suite plus a minimal
# bench_perf pass (microbenches at minimum time, macro section on a small
# population). Intended as the pre-push gate; see `make bench_smoke`.
#
# Usage: tools/bench_smoke.sh [build-dir]
#   build-dir defaults to ./build (configured if missing).
# Env:
#   PROXION_BENCH_SCALE  population size for the macro section (default 2000
#                        here; bench default is 12000).
set -eu

BUILD_DIR="${1:-build}"
SCALE="${PROXION_BENCH_SCALE:-2000}"

if [ ! -f "${BUILD_DIR}/CMakeCache.txt" ]; then
  cmake -B "${BUILD_DIR}" -S .
fi
cmake --build "${BUILD_DIR}" -j "$(nproc 2>/dev/null || echo 4)"

echo "== ctest =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc 2>/dev/null || echo 4)"

echo "== bench_perf (smoke: PROXION_BENCH_SCALE=${SCALE}) =="
PROXION_BENCH_SCALE="${SCALE}" \
  "${BUILD_DIR}/bench/bench_perf" --benchmark_min_time=0.01s

echo "== raw-speed acceptance (coalescer + selector memo ratios) =="
# The hot-path pass must hold its headline ratios on the repeat-sweep
# ablation bench_perf just wrote: backend getStorageAt probes down >= 3x
# with the coalescer on, keccak invocations down >= 2x with the selector
# memo on, and all ablation sweeps bit-identical. (For scale: the seed
# recorded 1.1537e7 registry getStorageAt calls and 7.43e6 keccak
# invocations across a full bench_perf run, all paid on every sweep.)
python3 - <<'EOF'
import json

with open("BENCH_results.json") as f:
    results = json.load(f)["bench_perf"]

storage_x = results["coalesce_storage_reduction_x"]
keccak_x = results["selector_memo_keccak_reduction_x"]
identical = results["raw_speed_sweeps_identical"]

assert storage_x >= 3.0, f"coalescer storage reduction {storage_x:.2f}x < 3x"
assert keccak_x >= 2.0, f"selector-memo keccak reduction {keccak_x:.2f}x < 2x"
assert identical == 1.0, "ablation sweeps were not bit-identical"
print(f"  storage reduction {storage_x:.2f}x (>=3), "
      f"keccak reduction {keccak_x:.2f}x (>=2), sweeps identical")
EOF

echo "== bench_layout_inference (smoke: PROXION_BENCH_SCALE=${SCALE}) =="
PROXION_BENCH_SCALE="${SCALE}" \
  "${BUILD_DIR}/bench/bench_layout_inference"

echo "== layout-inference acceptance (source-free coverage + drift) =="
# The source-free collision mode must family-check >= 90% of the pairs the
# source-attached mode checks on the synthetic population, and every pair
# family-checked in both modes must reach the same family-collision verdict
# (declared and inferred layouts share the (base, depth, path) identity).
python3 - <<'EOF'
import json

with open("BENCH_results.json") as f:
    results = json.load(f)["bench_layout_inference"]

coverage = results["source_free_coverage_ratio"]
diffs = results["family_verdict_diffs"]

assert coverage >= 0.90, f"source-free coverage {coverage:.3f} < 0.90"
assert diffs == 0.0, f"{diffs:.0f} family-verdict diffs between modes"
print(f"  source-free coverage {coverage:.3f} (>=0.90), "
      f"verdict diffs {diffs:.0f} (==0)")
EOF

echo "== bench_telemetry_overhead (smoke: PROXION_BENCH_SCALE=${SCALE}) =="
PROXION_BENCH_SCALE="${SCALE}" \
  "${BUILD_DIR}/bench/bench_telemetry_overhead" --benchmark_min_time=0.01s

echo "== telemetry acceptance (tracing tax + introspection plane) =="
# The tracing-tax shave must hold full tracing with the coarse clock at
# <= 15% over telemetry-off, and the whole live introspection plane
# (exporter + event log + status publishing + live span ring) at <= 2% over
# the histograms-on default. Both are min-of-3 measurements.
python3 - <<'EOF'
import json

with open("BENCH_results.json") as f:
    results = json.load(f)["bench_telemetry_overhead"]

coarse = results["tracing_coarse_overhead_pct"]
plane = results["plane_overhead_pct"]

assert coarse <= 15.0, f"coarse-clock tracing overhead {coarse:.1f}% > 15%"
assert plane <= 2.0, f"introspection-plane overhead {plane:.1f}% > 2%"
print(f"  coarse-clock tracing {coarse:.1f}% (<=15), "
      f"introspection plane {plane:.1f}% (<=2)")
EOF

echo "== bench_query_service (smoke: PROXION_BENCH_SCALE=${SCALE}) =="
PROXION_BENCH_SCALE="${SCALE}" \
  "${BUILD_DIR}/bench/bench_query_service"

echo "== query-plane acceptance (reader scaling + staleness ceiling) =="
# The lock-free snapshot must let readers scale near-linearly (>= 0.7x of
# linear at the max thread count tried — trivially satisfied on 1 core) and
# the follower's fence must leave the snapshot at most 1 block behind the
# chain after every absorbed block.
python3 - <<'EOF'
import json

with open("BENCH_results.json") as f:
    results = json.load(f)["bench_query_service"]

efficiency = results["read_scaling_efficiency"]
staleness = results["staleness_blocks_max"]
laps = results["follower_laps"]

assert efficiency >= 0.7, f"reader scaling {efficiency:.2f}x of linear < 0.7"
assert staleness <= 1.0, f"staleness after fence {staleness:.0f} blocks > 1"
assert laps >= 1.0, "the upgrade workload never triggered an incremental lap"
print(f"  reader scaling {efficiency:.2f}x of linear (>=0.7) at "
      f"{results['read_threads_max']:.0f} thread(s), "
      f"staleness max {staleness:.0f} (<=1), {laps:.0f} laps")
EOF

echo "bench_smoke: OK"
