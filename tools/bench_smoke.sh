#!/usr/bin/env sh
# Fast end-to-end smoke of the build: the full test suite plus a minimal
# bench_perf pass (microbenches at minimum time, macro section on a small
# population). Intended as the pre-push gate; see `make bench_smoke`.
#
# Usage: tools/bench_smoke.sh [build-dir]
#   build-dir defaults to ./build (configured if missing).
# Env:
#   PROXION_BENCH_SCALE  population size for the macro section (default 2000
#                        here; bench default is 12000).
set -eu

BUILD_DIR="${1:-build}"
SCALE="${PROXION_BENCH_SCALE:-2000}"

if [ ! -f "${BUILD_DIR}/CMakeCache.txt" ]; then
  cmake -B "${BUILD_DIR}" -S .
fi
cmake --build "${BUILD_DIR}" -j "$(nproc 2>/dev/null || echo 4)"

echo "== ctest =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc 2>/dev/null || echo 4)"

echo "== bench_perf (smoke: PROXION_BENCH_SCALE=${SCALE}) =="
PROXION_BENCH_SCALE="${SCALE}" \
  "${BUILD_DIR}/bench/bench_perf" --benchmark_min_time=0.01s

echo "bench_smoke: OK"
