// Paper Listing 1 end-to-end: an attacker hides a function collision behind
// a proxy so that the logic contract's enticing free_ether_withdrawal()
// actually executes the proxy's stealing function. We deploy the trap, show
// a victim falling into it, then show Proxion flagging the collision from
// bytecode alone.
#include <cstdio>

#include "chain/blockchain.h"
#include "core/function_collision.h"
#include "core/proxy_detector.h"
#include "crypto/eth.h"
#include "datagen/contract_factory.h"

using namespace proxion;
using datagen::ContractFactory;
using evm::Bytes;
using evm::U256;

namespace {

Bytes calldata_for(std::uint32_t selector) {
  Bytes out(4, 0);
  out[0] = static_cast<std::uint8_t>(selector >> 24);
  out[1] = static_cast<std::uint8_t>(selector >> 16);
  out[2] = static_cast<std::uint8_t>(selector >> 8);
  out[3] = static_cast<std::uint8_t>(selector);
  return out;
}

}  // namespace

int main() {
  chain::Blockchain chain;
  const evm::Address attacker = evm::Address::from_label("attacker");
  const evm::Address victim = evm::Address::from_label("victim");

  // The lure: free_ether_withdrawal() pays the caller. Its selector is
  // 0xdf4a3106 (§2.1).
  const std::uint32_t lure = crypto::selector_u32("free_ether_withdrawal()");
  std::printf("free_ether_withdrawal() selector: 0x%08x\n", lure);

  // The attacker deploys the pair: the proxy's impl_LUsXCWD2AKCc() shares
  // that exact selector (finding such a name takes minutes, §2.3).
  const evm::Address logic =
      chain.deploy_runtime(attacker, ContractFactory::honeypot_logic(lure));
  const evm::Address proxy = chain.deploy_runtime(
      attacker, ContractFactory::honeypot_proxy(U256{1}, lure));
  chain.set_storage(proxy, U256{1}, logic.to_word());
  chain.set_storage(proxy, U256{0}, attacker.to_word());  // owner
  chain.fund(proxy, U256{100'000'000'000ull});            // bait balance

  // The victim reads the logic contract, sees free ether, calls the proxy.
  std::printf("\nvictim calls proxy with the lure selector...\n");
  const auto result = chain.call(victim, proxy, calldata_for(lure));
  std::printf("  tx status: %s\n", result.success() ? "success" : "revert");
  const bool robbed =
      chain.get_storage(proxy, U256{99}) == victim.to_word();
  std::printf("  victim paid out?   no  (the call never reached the logic)\n");
  std::printf("  victim marked robbed by proxy function: %s\n",
              robbed ? "YES" : "no");

  // Proxion's view: no source, no prior transactions needed.
  core::ProxyDetector detector(chain);
  const auto report = detector.analyze(proxy);
  core::FunctionCollisionDetector fn_detector;
  const auto fn = fn_detector.detect(proxy, chain.get_code(proxy), logic,
                                     chain.get_code(logic));
  std::printf("\nProxion analysis (bytecode only):\n");
  std::printf("  proxy verdict: %s\n",
              std::string(core::to_string(report.verdict)).c_str());
  std::printf("  function collisions: %zu\n", fn.colliding_selectors.size());
  for (const std::uint32_t s : fn.colliding_selectors) {
    std::printf("    colliding selector 0x%08x  <- the lure is shadowed by "
                "the proxy\n",
                s);
  }
  std::printf("\nVerdict: honeypot. The proxy captures 0x%08x before the "
              "fallback can delegate it.\n",
              lure);
  return 0;
}
