// Paper Listing 2 / the Audius incident end-to-end: the proxy's owner
// (20-byte address, slot 0) collides with the logic's initialized/
// initializing flags (1-byte bools, slot 0). An attacker re-runs
// initialize() through the proxy and takes ownership. We run the exploit,
// then show Proxion detecting and *verifying* it automatically.
#include <cstdio>

#include "chain/blockchain.h"
#include "core/storage_collision.h"
#include "crypto/eth.h"
#include "datagen/contract_factory.h"

using namespace proxion;
using datagen::ContractFactory;
using evm::Bytes;
using evm::U256;

namespace {

Bytes calldata_for(std::string_view prototype) {
  const auto sel = crypto::selector_of(prototype);
  Bytes out(4, 0);
  std::copy(sel.begin(), sel.end(), out.begin());
  return out;
}

}  // namespace

int main() {
  chain::Blockchain chain;
  const evm::Address team = evm::Address::from_label("audius.team");
  const evm::Address attacker = evm::Address::from_label("audius.attacker");

  const evm::Address logic =
      chain.deploy_runtime(team, ContractFactory::audius_style_logic());
  const evm::Address proxy =
      chain.deploy_runtime(team, ContractFactory::audius_style_proxy());
  chain.set_storage(proxy, U256{1}, logic.to_word());

  std::printf("deployment:\n");
  std::printf("  proxy slot 0 = owner        (address, 20 bytes)\n");
  std::printf("  logic slot 0 = initialized + initializing (bool bytes)\n");
  std::printf("  => both contracts interpret the SAME slot differently\n\n");

  // The attacker simply calls initialize() through the proxy. The logic's
  // "already initialized?" check reads byte 0 of the proxy's storage — which
  // is the low byte of whatever sits in slot 0, not a real flag.
  std::printf("attacker calls initialize() through the proxy...\n");
  const auto result =
      chain.call(attacker, proxy, calldata_for("initialize()"));
  std::printf("  tx status: %s\n", result.success() ? "success" : "revert");

  const U256 owner_now = chain.get_storage(proxy, U256{0});
  const bool takeover = evm::Address::from_word(owner_now) == attacker;
  std::printf("  proxy owner is now: %s\n",
              evm::Address::from_word(owner_now).to_hex().c_str());
  std::printf("  governance takeover: %s\n\n", takeover ? "YES" : "no");

  // Proxion detects AND verifies the same exploit without executing any
  // real transaction (overlay state only).
  core::StorageCollisionDetector detector(chain);
  const auto analysis = detector.detect(proxy, chain.get_code(proxy), logic,
                                        chain.get_code(logic));
  std::printf("Proxion storage-collision analysis:\n");
  for (const auto& f : analysis.findings) {
    std::printf("  slot %s: proxy treats it as %u bytes, logic as %u bytes\n",
                f.slot.to_hex().c_str(), f.proxy_width, f.logic_width);
    std::printf("    sensitive (access control): %s\n",
                f.sensitive ? "yes" : "no");
    std::printf("    exploitable:                %s\n",
                f.exploitable ? "yes" : "no");
    std::printf("    exploit verified:           %s (via selector 0x%08x = "
                "initialize())\n",
                f.verified ? "yes" : "no", f.exploit_selector);
    std::printf("    replayable after success:   %s\n",
                f.repeatable ? "yes (the 'only once' guard is defeated)"
                             : "no (first overwrite disturbs the flag byte)");
  }
  std::printf("\nThis is the collision class behind the $1.1M Audius "
              "governance takeover (§2.3).\n");
  return 0;
}
