// Upgrade forensics: reconstruct the complete implementation timeline of an
// upgradeable proxy from archive-node storage history (Algorithm 1), the
// way an incident responder would check *when* a proxy started pointing at
// a malicious implementation.
#include <cstdio>

#include "chain/archive_node.h"
#include "chain/blockchain.h"
#include "core/logic_finder.h"
#include "core/proxy_detector.h"
#include "datagen/contract_factory.h"

using namespace proxion;
using datagen::ContractFactory;
using evm::U256;

int main() {
  chain::Blockchain chain;
  const evm::Address dao = evm::Address::from_label("the-dao");

  // A governance proxy that upgraded four times over its life; the fourth
  // upgrade (block ~42000) is the "incident".
  const evm::Address proxy =
      chain.deploy_runtime(dao, ContractFactory::eip1967_proxy());
  struct UpgradeEvent {
    std::uint64_t block;
    const char* tag;
  };
  const UpgradeEvent schedule[] = {
      {100, "v1 initial implementation"},
      {9'000, "v2 feature release"},
      {21'000, "v3 security patch"},
      {42'000, "v4 <- the incident: attacker-controlled implementation"},
  };
  std::vector<evm::Address> impls;
  for (const auto& [block, tag] : schedule) {
    chain.mine_until(block);
    const evm::Address impl = chain.deploy_runtime(
        dao, ContractFactory::token_contract(impls.size() + 1));
    chain.set_storage(proxy, ContractFactory::eip1967_slot(), impl.to_word());
    impls.push_back(impl);
  }
  chain.mine_until(60'000);

  std::printf("proxy under investigation: %s\n", proxy.to_hex().c_str());
  std::printf("chain height: %llu blocks\n\n",
              static_cast<unsigned long long>(chain.height()));

  core::ProxyDetector detector(chain);
  const auto report = detector.analyze(proxy);
  chain::ArchiveNode node(chain);
  core::LogicFinder finder(node);
  const auto history = finder.find(proxy, report);

  std::printf("implementation timeline (%llu archive queries instead of "
              "%llu):\n",
              static_cast<unsigned long long>(history.api_calls),
              static_cast<unsigned long long>(chain.height() + 1));
  for (std::size_t i = 0; i < history.logic_addresses.size(); ++i) {
    // Re-derive the activation block of each version with a narrow query.
    std::uint64_t lo = 0, hi = chain.height();
    while (lo < hi) {
      const std::uint64_t mid = lo + (hi - lo) / 2;
      const evm::Address at = evm::Address::from_word(
          node.get_storage_at(proxy, report.logic_slot, mid));
      // Monotonic predicate: the version active at `mid` is i-th or later.
      bool reached = false;
      for (std::size_t j = 0; j < history.logic_addresses.size(); ++j) {
        if (at == history.logic_addresses[j]) {
          reached = j >= i;
          break;
        }
      }
      if (reached) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    std::printf("  v%zu  active from block %-7llu %s  %s\n", i + 1,
                static_cast<unsigned long long>(lo),
                history.logic_addresses[i].to_hex().c_str(),
                schedule[i].tag);
  }
  std::printf("\nupgrade events: %llu (matches the schedule: %zu)\n",
              static_cast<unsigned long long>(history.upgrade_events),
              std::size(schedule) - 1);
  return 0;
}
