// A miniature of the paper's §7 landscape study: generate a synthetic
// Ethereum population, sweep it with the full Proxion pipeline, and print
// the headline findings (proxy share, hidden proxies, standards, collision
// counts, upgrade behaviour). The sweep also records a span trace —
// landscape_trace.json, loadable in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing — showing the three phases and per-contract
// sub-analyses.
//
// Durable-sweep operations (see README "Operating a durable sweep"):
//   --checkpoint <path>   stream the sweep through the checkpoint journal
//   --shard-size <n>      contracts per shard (default 1024)
//   --max-shards <n>      stop after n shards (simulates a kill; resume later)
//   --resume              continue a checkpointed sweep from its journal
//   --incremental         re-sweep only contracts whose fingerprint changed
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/pipeline.h"
#include "datagen/population.h"
#include "store/durable_sweep.h"

using namespace proxion;

namespace {

struct Options {
  std::string checkpoint;  // empty = classic monolithic run
  std::size_t shard_size = 1024;
  std::size_t max_shards = 0;
  bool resume = false;
  bool incremental = false;
};

bool parse_options(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--checkpoint") {
      const char* v = value("--checkpoint");
      if (v == nullptr) return false;
      opt.checkpoint = v;
    } else if (arg == "--shard-size") {
      const char* v = value("--shard-size");
      if (v == nullptr) return false;
      opt.shard_size = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--max-shards") {
      const char* v = value("--max-shards");
      if (v == nullptr) return false;
      opt.max_shards = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--resume") {
      opt.resume = true;
    } else if (arg == "--incremental") {
      opt.incremental = true;
    } else {
      std::fprintf(stderr,
                   "usage: landscape_survey [--checkpoint <journal> "
                   "[--shard-size N] [--max-shards N] [--resume | "
                   "--incremental]]\n");
      return false;
    }
  }
  if ((opt.resume || opt.incremental) && opt.checkpoint.empty()) {
    std::fprintf(stderr, "--resume/--incremental require --checkpoint\n");
    return false;
  }
  return true;
}

void print_stats(const core::LandscapeStats& stats) {
  std::printf("Proxion sweep results:\n");
  std::printf("  contracts analyzed:        %llu\n",
              static_cast<unsigned long long>(stats.total_contracts));
  std::printf("  proxy contracts:           %llu (%.1f%%)  [paper: 54.2%%]\n",
              static_cast<unsigned long long>(stats.proxies),
              100.0 * static_cast<double>(stats.proxies) /
                  static_cast<double>(stats.total_contracts));
  std::printf("  hidden proxies (no src/tx):%llu\n",
              static_cast<unsigned long long>(stats.hidden_proxies));
  std::printf("  emulation errors:          %llu (%.1f%%)  [paper: 4.9%%]\n",
              static_cast<unsigned long long>(stats.emulation_errors),
              100.0 * static_cast<double>(stats.emulation_errors) /
                  static_cast<double>(stats.total_contracts));
  std::printf("  unique proxy codebases:    %llu\n",
              static_cast<unsigned long long>(stats.unique_proxy_codehashes));
  std::printf("  static tier skips:         %llu absent / %llu dead / %llu "
              "eip1167 (%llu emulated, %llu mismatches)\n",
              static_cast<unsigned long long>(stats.static_skipped_absent),
              static_cast<unsigned long long>(stats.static_skipped_dead),
              static_cast<unsigned long long>(stats.static_skipped_minimal),
              static_cast<unsigned long long>(stats.static_emulated),
              static_cast<unsigned long long>(stats.static_mismatches));
  if (stats.sweep_shards > 0) {
    std::printf("  durable sweep:             %llu shards, %llu replayed "
                "from journal, %llu re-analyzed\n",
                static_cast<unsigned long long>(stats.sweep_shards),
                static_cast<unsigned long long>(stats.journal_replayed),
                static_cast<unsigned long long>(stats.incremental_reanalyzed));
    if (stats.selfheal_shards > 0) {
      std::printf("  journal self-heal:         %llu corrupt region(s) "
                  "recomputed\n",
                  static_cast<unsigned long long>(stats.selfheal_shards));
    }
    if (stats.sweep_degraded != 0) {
      std::printf("  DEGRADED MODE:             disk failed mid-sweep; "
                  "verdicts complete, checkpoint stopped at last good "
                  "commit\n");
    }
  }

  std::printf("\n  standards:\n");
  for (const auto& [standard, count] : stats.by_standard) {
    std::printf("    %-10s %llu\n",
                std::string(core::to_string(standard)).c_str(),
                static_cast<unsigned long long>(count));
  }

  std::printf("\n  collisions:\n");
  std::printf("    function collisions: %llu\n",
              static_cast<unsigned long long>(stats.function_collisions));
  std::printf("    storage collisions:  %llu (%llu with verified exploit)\n",
              static_cast<unsigned long long>(stats.storage_collisions),
              static_cast<unsigned long long>(
                  stats.exploitable_storage_collisions));

  std::printf("\n  upgrades: %llu events total; histogram:\n",
              static_cast<unsigned long long>(stats.total_upgrade_events));
  for (const auto& [upgrades, count] : stats.upgrade_histogram) {
    if (upgrades > 5 && count < 2) continue;
    std::printf("    %llu upgrade(s): %llu proxies\n",
                static_cast<unsigned long long>(upgrades),
                static_cast<unsigned long long>(count));
  }

  std::printf("\n  archive-node getStorageAt calls: %llu\n",
              static_cast<unsigned long long>(stats.get_storage_at_calls));

  // Wall-clock-derived telemetry goes to stderr: stdout stays
  // bit-deterministic across runs (analysis results only).
  std::fprintf(stderr, "\n  latency (telemetry histograms):\n");
  std::fprintf(stderr, "    per contract: p50=%.2fms p90=%.2fms p99=%.2fms\n",
               stats.contract_latency_ns.p50 / 1e6,
               stats.contract_latency_ns.p90 / 1e6,
               stats.contract_latency_ns.p99 / 1e6);
  std::fprintf(stderr, "    per rpc:      p50=%.1fus p99=%.1fus (%llu attempts)\n",
               stats.rpc_latency_ns.p50 / 1e3, stats.rpc_latency_ns.p99 / 1e3,
               static_cast<unsigned long long>(stats.rpc_latency_ns.count));
  std::fprintf(stderr, "    steps/probe:  p50=%.0f p99=%.0f\n",
               stats.emulation_steps.p50, stats.emulation_steps.p99);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_options(argc, argv, opt)) return 2;

  datagen::PopulationSpec spec;
  spec.total_contracts = 4'000;  // keep the example snappy
  std::printf("generating a synthetic Ethereum population (~%u contracts, "
              "2015-2023)...\n",
              spec.total_contracts);
  datagen::Population pop = datagen::PopulationGenerator().generate(spec);
  std::printf("  deployed %zu contracts across %llu blocks\n\n",
              pop.contracts.size(),
              static_cast<unsigned long long>(pop.chain->height()));

  core::PipelineConfig config;
  config.telemetry.trace_path = "landscape_trace.json";
  core::AnalysisPipeline pipeline(*pop.chain, &pop.sources, config);

  if (!opt.checkpoint.empty()) {
    store::DurableSweepConfig sweep_config;
    sweep_config.journal_path = opt.checkpoint;
    sweep_config.shard_size = opt.shard_size;
    sweep_config.max_shards = opt.max_shards;
    store::DurableSweep sweep(pipeline, *pop.chain, &pop.sources, sweep_config);
    const std::vector<core::SweepInput> inputs = pop.sweep_inputs();
    store::DurableSweepResult result =
        opt.incremental ? sweep.incremental(inputs)
        : opt.resume    ? sweep.resume(inputs)
                        : sweep.run(inputs);
    if (!result.error.empty()) {
      std::fprintf(stderr, "durable sweep failed: %s\n", result.error.c_str());
      return 1;
    }
    if (result.degraded && result.disk_error) {
      std::fprintf(stderr, "durable sweep degraded (%s): %s\n",
                   std::string(core::to_string(result.disk_error->kind)).c_str(),
                   result.disk_error->detail.c_str());
    }
    if (!result.complete) {
      std::printf("sweep stopped after %llu shard(s) (%llu contracts "
                  "committed to %s); rerun with --resume to finish\n",
                  static_cast<unsigned long long>(result.shards_run),
                  static_cast<unsigned long long>(result.recomputed),
                  opt.checkpoint.c_str());
      return 0;
    }
    print_stats(result.stats);
    std::printf("\nThe same sweep drives every bench/bench_* reproduction "
                "binary at larger scale.\n");
    return 0;
  }

  const auto reports = pipeline.run(pop.sweep_inputs());
  auto stats = pipeline.summarize(reports);
  print_stats(stats);
  std::fprintf(stderr, "\n  span trace: landscape_trace.json (%llu spans, %llu "
               "dropped) — open in https://ui.perfetto.dev\n",
               static_cast<unsigned long long>(stats.trace_spans_recorded),
               static_cast<unsigned long long>(stats.trace_spans_dropped));
  std::printf("\nThe same sweep drives every bench/bench_* reproduction "
              "binary at larger scale.\n");
  return 0;
}
