// A miniature of the paper's §7 landscape study: generate a synthetic
// Ethereum population, sweep it with the full Proxion pipeline, and print
// the headline findings (proxy share, hidden proxies, standards, collision
// counts, upgrade behaviour). The sweep also records a span trace —
// landscape_trace.json, loadable in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing — showing the three phases and per-contract
// sub-analyses.
//
// Durable-sweep operations (see README "Operating a durable sweep"):
//   --checkpoint <path>   stream the sweep through the checkpoint journal
//   --shard-size <n>      contracts per shard (default 1024)
//   --max-shards <n>      stop after n shards (simulates a kill; resume later)
//   --resume              continue a checkpointed sweep from its journal
//   --incremental         re-sweep only contracts whose fingerprint changed
//
// Live introspection (see README "Live introspection plane"):
//   --serve <port>        serve /metrics, /healthz, /spans on 127.0.0.1
//                         (0 = ephemeral; the bound port is printed) and
//                         keep sweeping so the plane has live data
//   --sweeps <n>          sweeps to run in --serve mode (0 = until killed)
//   --population <n>      synthetic population size (default 4000)
//   --events <path>       append structured NDJSON events to this file
//
// Always-on service (see docs/OPERATIONS.md):
//   --follow              run the chain follower + query plane: one initial
//                         full sweep, then a deterministic mixed workload
//                         (deploys, upgrades, empty blocks) drives
//                         incremental laps; combine with --serve to expose
//                         /v1/contract, /v1/codehash, /v1/vulns, /v1/status
//   --blocks <n>          blocks of workload to mine in --follow mode
//                         (0 = until killed; default 12)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "datagen/contract_factory.h"
#include "datagen/population.h"
#include "obs/eventlog.h"
#include "obs/export.h"
#include "obs/http.h"
#include "serve/follower.h"
#include "serve/query_service.h"
#include "store/durable_sweep.h"

using namespace proxion;

namespace {

struct Options {
  std::string checkpoint;  // empty = classic monolithic run
  std::size_t shard_size = 1024;
  std::size_t max_shards = 0;
  bool resume = false;
  bool incremental = false;
  int serve_port = -1;       // >= 0 = introspection-plane serving mode
  std::size_t sweeps = 0;    // serve mode: sweeps to run; 0 = until killed
  std::uint32_t population = 4'000;
  std::string events_path;   // NDJSON event-log sink; empty = in-memory only
  bool follow = false;       // always-on mode: follower + query plane
  std::uint64_t blocks = 12; // follow mode: workload blocks; 0 = until killed
};

bool parse_options(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--checkpoint") {
      const char* v = value("--checkpoint");
      if (v == nullptr) return false;
      opt.checkpoint = v;
    } else if (arg == "--shard-size") {
      const char* v = value("--shard-size");
      if (v == nullptr) return false;
      opt.shard_size = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--max-shards") {
      const char* v = value("--max-shards");
      if (v == nullptr) return false;
      opt.max_shards = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--resume") {
      opt.resume = true;
    } else if (arg == "--incremental") {
      opt.incremental = true;
    } else if (arg == "--serve") {
      const char* v = value("--serve");
      if (v == nullptr) return false;
      opt.serve_port = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (arg == "--sweeps") {
      const char* v = value("--sweeps");
      if (v == nullptr) return false;
      opt.sweeps = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--population") {
      const char* v = value("--population");
      if (v == nullptr) return false;
      opt.population =
          static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--events") {
      const char* v = value("--events");
      if (v == nullptr) return false;
      opt.events_path = v;
    } else if (arg == "--follow") {
      opt.follow = true;
    } else if (arg == "--blocks") {
      const char* v = value("--blocks");
      if (v == nullptr) return false;
      opt.blocks = std::strtoull(v, nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: landscape_survey [--checkpoint <journal> "
                   "[--shard-size N] [--max-shards N] [--resume | "
                   "--incremental]] [--serve PORT [--sweeps N]] "
                   "[--follow [--blocks N]] "
                   "[--population N] [--events <path>]\n");
      return false;
    }
  }
  if ((opt.resume || opt.incremental) && opt.checkpoint.empty()) {
    std::fprintf(stderr, "--resume/--incremental require --checkpoint\n");
    return false;
  }
  return true;
}

void print_stats(const core::LandscapeStats& stats) {
  std::printf("Proxion sweep results:\n");
  std::printf("  contracts analyzed:        %llu\n",
              static_cast<unsigned long long>(stats.total_contracts));
  std::printf("  proxy contracts:           %llu (%.1f%%)  [paper: 54.2%%]\n",
              static_cast<unsigned long long>(stats.proxies),
              100.0 * static_cast<double>(stats.proxies) /
                  static_cast<double>(stats.total_contracts));
  std::printf("  hidden proxies (no src/tx):%llu\n",
              static_cast<unsigned long long>(stats.hidden_proxies));
  std::printf("  emulation errors:          %llu (%.1f%%)  [paper: 4.9%%]\n",
              static_cast<unsigned long long>(stats.emulation_errors),
              100.0 * static_cast<double>(stats.emulation_errors) /
                  static_cast<double>(stats.total_contracts));
  std::printf("  unique proxy codebases:    %llu\n",
              static_cast<unsigned long long>(stats.unique_proxy_codehashes));
  std::printf("  static tier skips:         %llu absent / %llu dead / %llu "
              "eip1167 (%llu emulated, %llu mismatches)\n",
              static_cast<unsigned long long>(stats.static_skipped_absent),
              static_cast<unsigned long long>(stats.static_skipped_dead),
              static_cast<unsigned long long>(stats.static_skipped_minimal),
              static_cast<unsigned long long>(stats.static_emulated),
              static_cast<unsigned long long>(stats.static_mismatches));
  if (stats.layout_inferred > 0) {
    std::printf("  storage layouts:           %llu inferred (%llu reliable), "
                "%llu/%llu pairs checked source-free\n",
                static_cast<unsigned long long>(stats.layout_inferred),
                static_cast<unsigned long long>(stats.layout_reliable),
                static_cast<unsigned long long>(
                    stats.collision_pairs_source_free),
                static_cast<unsigned long long>(
                    stats.collision_pairs_family_checked));
  }
  if (stats.sweep_shards > 0) {
    std::printf("  durable sweep:             %llu shards, %llu replayed "
                "from journal, %llu re-analyzed\n",
                static_cast<unsigned long long>(stats.sweep_shards),
                static_cast<unsigned long long>(stats.journal_replayed),
                static_cast<unsigned long long>(stats.incremental_reanalyzed));
    if (stats.selfheal_shards > 0) {
      std::printf("  journal self-heal:         %llu corrupt region(s) "
                  "recomputed\n",
                  static_cast<unsigned long long>(stats.selfheal_shards));
    }
    if (stats.sweep_degraded != 0) {
      std::printf("  DEGRADED MODE:             disk failed mid-sweep; "
                  "verdicts complete, checkpoint stopped at last good "
                  "commit\n");
    }
  }

  std::printf("\n  standards:\n");
  for (const auto& [standard, count] : stats.by_standard) {
    std::printf("    %-10s %llu\n",
                std::string(core::to_string(standard)).c_str(),
                static_cast<unsigned long long>(count));
  }

  std::printf("\n  collisions:\n");
  std::printf("    function collisions: %llu\n",
              static_cast<unsigned long long>(stats.function_collisions));
  std::printf("    storage collisions:  %llu (%llu with verified exploit)\n",
              static_cast<unsigned long long>(stats.storage_collisions),
              static_cast<unsigned long long>(
                  stats.exploitable_storage_collisions));

  std::printf("\n  upgrades: %llu events total; histogram:\n",
              static_cast<unsigned long long>(stats.total_upgrade_events));
  for (const auto& [upgrades, count] : stats.upgrade_histogram) {
    if (upgrades > 5 && count < 2) continue;
    std::printf("    %llu upgrade(s): %llu proxies\n",
                static_cast<unsigned long long>(upgrades),
                static_cast<unsigned long long>(count));
  }

  std::printf("\n  archive-node getStorageAt calls: %llu\n",
              static_cast<unsigned long long>(stats.get_storage_at_calls));

  // Wall-clock-derived telemetry goes to stderr: stdout stays
  // bit-deterministic across runs (analysis results only).
  std::fprintf(stderr, "\n  latency (telemetry histograms):\n");
  std::fprintf(stderr, "    per contract: p50=%.2fms p90=%.2fms p99=%.2fms\n",
               stats.contract_latency_ns.p50 / 1e6,
               stats.contract_latency_ns.p90 / 1e6,
               stats.contract_latency_ns.p99 / 1e6);
  std::fprintf(stderr, "    per rpc:      p50=%.1fus p99=%.1fus (%llu attempts)\n",
               stats.rpc_latency_ns.p50 / 1e3, stats.rpc_latency_ns.p99 / 1e3,
               static_cast<unsigned long long>(stats.rpc_latency_ns.count));
  std::fprintf(stderr, "    steps/probe:  p50=%.0f p99=%.0f\n",
               stats.emulation_steps.p50, stats.emulation_steps.p99);
}

}  // namespace

// --serve mode: keep sweeping the population while the introspection plane
// (exporter + HTTP server) answers /metrics, /healthz and /spans from
// another thread. Returns the process exit code.
int serve_loop(const Options& opt, datagen::Population& pop) {
  obs::EventLogConfig log_config;
  log_config.path = opt.events_path;  // empty = in-memory ring only
  obs::EventLog event_log(log_config);
  obs::SweepStatus status;

  core::PipelineConfig config;
  // No trace file in serving mode — spans are drained live over /spans
  // instead of rewritten to disk after every sweep.
  config.telemetry.live_spans = true;
  config.telemetry.coarse_clock = true;
  config.telemetry.event_log = &event_log;
  config.telemetry.status = &status;
  core::AnalysisPipeline pipeline(*pop.chain, &pop.sources, config);

  obs::ExporterConfig exp_config;
  exp_config.interval_ms = 250;
  obs::Exporter exporter({&obs::Registry::global(), &pipeline.registry()},
                         exp_config);
  exporter.start();

  obs::HttpServer server;
  server.handle("/metrics", [&exporter](const std::string&) {
    obs::HttpResponse r;
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = exporter.render_prometheus();
    return r;
  });
  server.handle("/healthz", [&exporter, &status](const std::string&) {
    obs::HttpResponse r;
    r.content_type = "application/json";
    r.body = exporter.render_healthz(&status);
    return r;
  });
  server.handle("/spans", [&pipeline](const std::string&) {
    obs::HttpResponse r;
    r.content_type = "application/x-ndjson";
    const obs::Tracer* tracer = pipeline.tracer();
    r.body = tracer != nullptr ? tracer->ndjson_recent(4096) : std::string();
    return r;
  });
  if (!server.start(static_cast<std::uint16_t>(opt.serve_port))) {
    std::fprintf(stderr, "failed to bind 127.0.0.1:%d\n", opt.serve_port);
    return 1;
  }
  // obs_smoke.sh parses this line for the ephemeral port; keep the format.
  std::printf("serving introspection on 127.0.0.1:%u\n", server.port());
  std::fflush(stdout);

  const std::vector<core::SweepInput> inputs = pop.sweep_inputs();
  core::LandscapeStats stats;
  for (std::size_t i = 0; opt.sweeps == 0 || i < opt.sweeps; ++i) {
    if (!opt.checkpoint.empty()) {
      store::DurableSweepConfig sweep_config;
      sweep_config.journal_path = opt.checkpoint;
      sweep_config.shard_size = opt.shard_size;
      sweep_config.event_log = &event_log;
      sweep_config.status = &status;
      store::DurableSweep sweep(pipeline, *pop.chain, &pop.sources,
                                sweep_config);
      store::DurableSweepResult result = sweep.run(inputs);
      if (!result.error.empty()) {
        std::fprintf(stderr, "durable sweep failed: %s\n",
                     result.error.c_str());
        return 1;
      }
      stats = result.stats;
    } else {
      const auto reports = pipeline.run(inputs);
      stats = pipeline.summarize(reports);
      // Drop cross-run memos so every lap does real work (and so the
      // sweep.* gauge-reset hygiene in shedding gets exercised live).
      pipeline.shed_cross_run_state();
    }
  }

  server.stop();
  exporter.stop();
  print_stats(stats);
  std::printf("\nserved %llu scrape(s); %llu event(s) logged\n",
              static_cast<unsigned long long>(server.requests_served()),
              static_cast<unsigned long long>(event_log.emitted()));
  return 0;
}

// --follow mode: the always-on service. One synchronous catch-up sweep seeds
// the query snapshot, then the follower tracks the head in the background
// while a deterministic mixed workload (deploy / upgrade / empty block /
// deploy+same-block-upgrade) mines new blocks. With --serve the query plane
// answers /v1/* next to /metrics and /healthz. serve_smoke.sh parses the
// "follow:" lines; keep their format.
int follow_loop(const Options& opt, datagen::Population& pop) {
  obs::EventLogConfig log_config;
  log_config.path = opt.events_path;
  obs::EventLog event_log(log_config);
  obs::SweepStatus status;

  core::PipelineConfig config;
  config.telemetry.live_spans = true;
  config.telemetry.coarse_clock = true;
  config.telemetry.event_log = &event_log;
  config.telemetry.status = &status;
  core::AnalysisPipeline pipeline(*pop.chain, &pop.sources, config);

  store::DurableSweepConfig sweep_config;
  sweep_config.journal_path =
      opt.checkpoint.empty() ? "landscape_follow.journal" : opt.checkpoint;
  sweep_config.shard_size = opt.shard_size;
  sweep_config.event_log = &event_log;
  sweep_config.status = &status;

  serve::QueryService query;
  serve::ChainFollowerConfig follower_config;
  follower_config.year_of_block = [](std::uint64_t block) {
    const std::uint64_t year =
        datagen::PopulationGenerator::kFirstYear +
        block / datagen::PopulationGenerator::kBlocksPerYear;
    return static_cast<int>(std::min<std::uint64_t>(
        year, datagen::PopulationGenerator::kLastYear));
  };
  follower_config.event_log = &event_log;
  follower_config.status = &status;
  serve::ChainFollower follower(pipeline, *pop.chain, &pop.sources,
                                sweep_config, query, pop.sweep_inputs(),
                                follower_config);

  obs::ExporterConfig exp_config;
  exp_config.interval_ms = 250;
  obs::Exporter exporter({&obs::Registry::global(), &pipeline.registry()},
                         exp_config);
  obs::HttpServer server;
  const bool serving = opt.serve_port >= 0;
  if (serving) {
    exporter.start();
    server.handle("/metrics", [&exporter](const std::string&) {
      obs::HttpResponse r;
      r.content_type = "text/plain; version=0.0.4; charset=utf-8";
      r.body = exporter.render_prometheus();
      return r;
    });
    server.handle("/healthz", [&exporter, &status](const std::string&) {
      obs::HttpResponse r;
      r.content_type = "application/json";
      r.body = exporter.render_healthz(&status);
      return r;
    });
    server.handle("/spans", [&pipeline](const std::string&) {
      obs::HttpResponse r;
      r.content_type = "application/x-ndjson";
      const obs::Tracer* tracer = pipeline.tracer();
      r.body = tracer != nullptr ? tracer->ndjson_recent(4096) : std::string();
      return r;
    });
    query.register_endpoints(server);
    follower.register_status_endpoint(server);
    if (!server.start(static_cast<std::uint16_t>(opt.serve_port))) {
      std::fprintf(stderr, "failed to bind 127.0.0.1:%d\n", opt.serve_port);
      return 1;
    }
    // obs_smoke.sh/serve_smoke.sh parse this line; keep the format.
    std::printf("serving introspection on 127.0.0.1:%u\n", server.port());
    std::fflush(stdout);
  }

  // Synchronous catch-up: the initial full sweep of the generated population.
  follower.poll();
  follower.start();
  // start() schedules one catch-up poll; fence it before the workload loop
  // mutates the chain (the single-writer contract from serve/follower.h).
  if (!follower.wait_synced(pop.chain->height())) {
    std::fprintf(stderr, "follower failed to sync after start\n");
    follower.stop();
    return 1;
  }
  std::printf("follow: synced head=%llu entries=%llu\n",
              static_cast<unsigned long long>(
                  follower.stats().snapshot_head.load()),
              static_cast<unsigned long long>(
                  follower.stats().snapshot_entries.load()));
  std::fflush(stdout);

  // Upgrade material: the population's EIP-1967 proxies repoint at tokens.
  std::vector<evm::Address> proxies;
  std::vector<evm::Address> logic_pool;
  for (const auto& c : pop.contracts) {
    if (c.archetype == datagen::Archetype::kEip1967Proxy) {
      proxies.push_back(c.address);
    } else if (c.archetype == datagen::Archetype::kToken) {
      logic_pool.push_back(c.address);
    }
  }
  if (proxies.empty() || logic_pool.empty()) {
    std::fprintf(stderr, "population too small for the follow workload\n");
    return 1;
  }

  const evm::Address deployer = evm::Address::from_label("follow-deployer");
  const evm::U256 impl_slot = datagen::ContractFactory::eip1967_slot();
  std::size_t next_proxy = 0;
  std::size_t next_logic = 0;
  std::uint64_t salt = 0x10000;
  for (std::uint64_t i = 0; opt.blocks == 0 || i < opt.blocks; ++i) {
    const std::uint64_t block = pop.chain->height();
    switch (i % 4) {
      case 0: {  // plain deployment: triggers a discovery lap
        const evm::Address addr = pop.chain->deploy_runtime(
            deployer, datagen::ContractFactory::token_contract(salt++));
        std::printf("follow: block=%llu deploy addr=%s\n",
                    static_cast<unsigned long long>(block),
                    addr.to_hex().c_str());
        break;
      }
      case 1: {  // upgrade: impl-slot write on a known proxy
        const evm::Address proxy = proxies[next_proxy++ % proxies.size()];
        const evm::Address impl = logic_pool[next_logic++ % logic_pool.size()];
        pop.chain->set_storage(proxy, impl_slot, impl.to_word());
        std::printf("follow: block=%llu upgrade addr=%s impl=%s\n",
                    static_cast<unsigned long long>(block),
                    proxy.to_hex().c_str(), impl.to_hex().c_str());
        break;
      }
      case 2: {  // empty block: must fast-forward, not lap
        std::printf("follow: block=%llu empty\n",
                    static_cast<unsigned long long>(block));
        break;
      }
      default: {  // deployment + same-block upgrade of the new proxy
        const evm::Address addr = pop.chain->deploy_runtime(
            deployer, datagen::ContractFactory::eip1967_proxy());
        const evm::Address impl = logic_pool[next_logic++ % logic_pool.size()];
        pop.chain->set_storage(addr, impl_slot, impl.to_word());
        std::printf("follow: block=%llu deploy-upgrade addr=%s impl=%s\n",
                    static_cast<unsigned long long>(block),
                    addr.to_hex().c_str(), impl.to_hex().c_str());
        break;
      }
    }
    std::fflush(stdout);
    pop.chain->mine_block();
    // Until-killed runs pace themselves like a (fast) chain so the serving
    // thread is mostly idle between laps; bounded runs mine flat out.
    if (opt.blocks == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    // The chain is single-writer: fence the next mutation on the follower
    // having fully absorbed this block (see serve/follower.h).
    if (!follower.wait_synced(pop.chain->height())) {
      std::fprintf(stderr, "follower failed to sync: %s\n",
                   follower.last_error().c_str());
      follower.stop();
      return 1;
    }
  }

  const serve::FollowerStats& st = follower.stats();
  std::printf("follow: done head=%llu laps=%llu fast_forwards=%llu "
              "entries=%llu discovered=%llu\n",
              static_cast<unsigned long long>(st.snapshot_head.load()),
              static_cast<unsigned long long>(st.laps.load()),
              static_cast<unsigned long long>(st.fast_forwards.load()),
              static_cast<unsigned long long>(st.snapshot_entries.load()),
              static_cast<unsigned long long>(st.contracts_discovered.load()));
  std::fflush(stdout);
  if (serving) {
    server.stop();
    exporter.stop();
    std::printf("served %llu scrape(s); %llu event(s) logged\n",
                static_cast<unsigned long long>(server.requests_served()),
                static_cast<unsigned long long>(event_log.emitted()));
  }
  follower.stop();
  return 0;
}

int main(int argc, char** argv) {
  Options opt;
  if (!parse_options(argc, argv, opt)) return 2;

  datagen::PopulationSpec spec;
  spec.total_contracts = opt.population;  // default keeps the example snappy
  std::printf("generating a synthetic Ethereum population (~%u contracts, "
              "2015-2023)...\n",
              spec.total_contracts);
  datagen::Population pop = datagen::PopulationGenerator().generate(spec);
  std::printf("  deployed %zu contracts across %llu blocks\n\n",
              pop.contracts.size(),
              static_cast<unsigned long long>(pop.chain->height()));

  if (opt.follow) return follow_loop(opt, pop);
  if (opt.serve_port >= 0) return serve_loop(opt, pop);

  std::optional<obs::EventLog> event_log;
  core::PipelineConfig config;
  config.telemetry.trace_path = "landscape_trace.json";
  if (!opt.events_path.empty()) {
    obs::EventLogConfig log_config;
    log_config.path = opt.events_path;
    event_log.emplace(log_config);
    config.telemetry.event_log = &*event_log;
  }
  core::AnalysisPipeline pipeline(*pop.chain, &pop.sources, config);

  if (!opt.checkpoint.empty()) {
    store::DurableSweepConfig sweep_config;
    sweep_config.journal_path = opt.checkpoint;
    sweep_config.shard_size = opt.shard_size;
    sweep_config.max_shards = opt.max_shards;
    if (event_log.has_value()) sweep_config.event_log = &*event_log;
    store::DurableSweep sweep(pipeline, *pop.chain, &pop.sources, sweep_config);
    const std::vector<core::SweepInput> inputs = pop.sweep_inputs();
    store::DurableSweepResult result =
        opt.incremental ? sweep.incremental(inputs)
        : opt.resume    ? sweep.resume(inputs)
                        : sweep.run(inputs);
    if (!result.error.empty()) {
      std::fprintf(stderr, "durable sweep failed: %s\n", result.error.c_str());
      return 1;
    }
    if (result.degraded && result.disk_error) {
      std::fprintf(stderr, "durable sweep degraded (%s): %s\n",
                   std::string(core::to_string(result.disk_error->kind)).c_str(),
                   result.disk_error->detail.c_str());
    }
    if (!result.complete) {
      std::printf("sweep stopped after %llu shard(s) (%llu contracts "
                  "committed to %s); rerun with --resume to finish\n",
                  static_cast<unsigned long long>(result.shards_run),
                  static_cast<unsigned long long>(result.recomputed),
                  opt.checkpoint.c_str());
      return 0;
    }
    print_stats(result.stats);
    std::printf("\nThe same sweep drives every bench/bench_* reproduction "
                "binary at larger scale.\n");
    return 0;
  }

  const auto reports = pipeline.run(pop.sweep_inputs());
  auto stats = pipeline.summarize(reports);
  print_stats(stats);
  std::fprintf(stderr, "\n  span trace: landscape_trace.json (%llu spans, %llu "
               "dropped) — open in https://ui.perfetto.dev\n",
               static_cast<unsigned long long>(stats.trace_spans_recorded),
               static_cast<unsigned long long>(stats.trace_spans_dropped));
  std::printf("\nThe same sweep drives every bench/bench_* reproduction "
              "binary at larger scale.\n");
  return 0;
}
