// The paper's headline capability: finding *hidden* proxies — contracts
// with no verified source and no transaction history — that every prior
// tool misses. We deploy one, show USCHunt and CRUSH coming up empty, and
// Proxion identifying it (plus its logic contract) by emulation alone.
#include <cstdio>

#include "baselines/crush.h"
#include "baselines/etherscan.h"
#include "baselines/uschunt.h"
#include "chain/archive_node.h"
#include "chain/blockchain.h"
#include "core/logic_finder.h"
#include "core/proxy_detector.h"
#include "datagen/contract_factory.h"
#include "sourcemeta/source.h"

using namespace proxion;
using datagen::ContractFactory;
using evm::U256;

int main() {
  chain::Blockchain chain;
  sourcemeta::SourceRepository sources;  // nobody published anything
  const evm::Address deployer = evm::Address::from_label("shadow.deployer");

  // A custom slot-0 proxy, deployed and then left alone: no source on
  // Etherscan, no transaction ever sent. Classic pre-positioned honeypot
  // infrastructure.
  const evm::Address logic =
      chain.deploy_runtime(deployer, ContractFactory::token_contract(404));
  const evm::Address hidden =
      chain.deploy_runtime(deployer, ContractFactory::slot_proxy(U256{0}));
  chain.set_storage(hidden, U256{0}, logic.to_word());
  chain.mine_until(10'000);

  std::printf("hidden contract: %s\n", hidden.to_hex().c_str());
  std::printf("  verified source: none\n");
  std::printf("  transactions:    none\n\n");

  // USCHunt / Slither: nothing to analyze.
  baselines::UschuntAnalyzer uschunt(sources);
  const auto ur = uschunt.detect_proxy(hidden);
  std::printf("USCHunt:  %s\n",
              ur.status == baselines::UschuntStatus::kNoSource
                  ? "no source code -> out of scope"
                  : "analyzed");

  // CRUSH: mines transaction history; there is none.
  baselines::CrushAnalyzer crush(chain);
  std::printf("CRUSH:    %zu proxy pairs mined from history -> misses it\n",
              crush.find_proxy_pairs().size());

  // Etherscan heuristic: flags it, but flags every library caller too.
  const auto ether = baselines::etherscan_detect(chain.get_code(hidden));
  std::printf("Etherscan heuristic: %s (but cannot name the logic contract, "
              "and FPs on library calls)\n",
              ether.is_proxy ? "DELEGATECALL present" : "clean");

  // Proxion: crafted-calldata emulation.
  core::ProxyDetector detector(chain);
  const auto report = detector.analyze(hidden);
  std::printf("\nProxion:  verdict=%s standard=%s\n",
              std::string(core::to_string(report.verdict)).c_str(),
              std::string(core::to_string(report.standard)).c_str());
  std::printf("  probe selector used: 0x%08x (crafted to miss every "
              "candidate function)\n",
              report.probe_selector);
  std::printf("  calldata forwarded via DELEGATECALL: %s\n",
              report.calldata_forwarded ? "yes" : "no");
  std::printf("  logic contract: %s (read from storage slot %s)\n",
              report.logic_address.to_hex().c_str(),
              report.logic_slot.to_hex().c_str());

  chain::ArchiveNode node(chain);
  core::LogicFinder finder(node);
  const auto history = finder.find(hidden, report);
  std::printf("  full logic history: %zu version(s) via %llu archive "
              "queries\n",
              history.logic_addresses.size(),
              static_cast<unsigned long long>(history.api_calls));

  std::printf("\nOnly the emulation-based detector sees through a contract "
              "that never spoke and never published.\n");
  return 0;
}
