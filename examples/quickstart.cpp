// Quickstart: deploy a proxy + logic pair on the simulated chain, detect the
// proxy from bytecode alone, recover its logic history, and check both
// collision classes — the whole Proxion API in ~80 lines.
#include <cstdio>

#include "chain/archive_node.h"
#include "chain/blockchain.h"
#include "core/function_collision.h"
#include "core/logic_finder.h"
#include "core/proxy_detector.h"
#include "core/storage_collision.h"
#include "datagen/contract_factory.h"

using namespace proxion;
using datagen::ContractFactory;
using evm::U256;

int main() {
  // 1. A chain with an ERC-1967 proxy in front of a token implementation.
  chain::Blockchain chain;
  const evm::Address alice = evm::Address::from_label("alice");
  const evm::Address logic_v1 =
      chain.deploy_runtime(alice, ContractFactory::token_contract(1));
  const evm::Address proxy =
      chain.deploy_runtime(alice, ContractFactory::eip1967_proxy());
  chain.set_storage(proxy, ContractFactory::eip1967_slot(),
                    logic_v1.to_word());

  // ... which later upgrades to v2.
  chain.mine_until(5'000);
  const evm::Address logic_v2 =
      chain.deploy_runtime(alice, ContractFactory::token_contract(2));
  chain.set_storage(proxy, ContractFactory::eip1967_slot(),
                    logic_v2.to_word());
  chain.mine_until(20'000);

  // 2. Proxy detection — no source code, no transaction history needed.
  core::ProxyDetector detector(chain);
  const core::ProxyReport report = detector.analyze(proxy);
  std::printf("contract %s\n", proxy.to_hex().c_str());
  std::printf("  verdict:       %s\n",
              std::string(core::to_string(report.verdict)).c_str());
  std::printf("  standard:      %s\n",
              std::string(core::to_string(report.standard)).c_str());
  std::printf("  logic address: %s (from storage slot %s...)\n",
              report.logic_address.to_hex().c_str(),
              report.logic_slot.to_hex().substr(0, 12).c_str());

  // 3. Full logic history via Algorithm 1 against the archive node.
  chain::ArchiveNode node(chain);
  core::LogicFinder finder(node);
  const core::LogicHistory history = finder.find(proxy, report);
  std::printf("  logic history: %zu versions, %llu upgrade(s), recovered "
              "with %llu getStorageAt calls (chain height %llu)\n",
              history.logic_addresses.size(),
              static_cast<unsigned long long>(history.upgrade_events),
              static_cast<unsigned long long>(history.api_calls),
              static_cast<unsigned long long>(chain.height()));
  for (std::size_t i = 0; i < history.logic_addresses.size(); ++i) {
    std::printf("    v%zu: %s\n", i + 1,
                history.logic_addresses[i].to_hex().c_str());
  }

  // 4. Collision checks against the current logic contract.
  const evm::Bytes proxy_code = chain.get_code(proxy);
  const evm::Bytes logic_code = chain.get_code(logic_v2);
  core::FunctionCollisionDetector fn_detector;
  const auto fn = fn_detector.detect(proxy, proxy_code, logic_v2, logic_code);
  std::printf("  function collisions: %zu (proxy exports %zu selectors, "
              "logic %zu)\n",
              fn.colliding_selectors.size(), fn.proxy_selectors.size(),
              fn.logic_selectors.size());

  core::StorageCollisionDetector st_detector(chain);
  const auto st = st_detector.detect(proxy, proxy_code, logic_v2, logic_code);
  std::printf("  storage collisions:  %zu\n", st.findings.size());

  std::printf("\nA clean ERC-1967 proxy: detected, history recovered, no "
              "collisions. See the other examples for the vulnerable "
              "cases.\n");
  return 0;
}
