// proxion-analyze: a CLI that takes raw EVM runtime bytecode (hex, as you'd
// get from eth_getCode) and prints the full Proxion report: disassembly
// stats, proxy verdict, extracted function selectors, and the storage
// profile. With a second bytecode it also runs the pair collision checks.
//
//   analyze_bytecode <proxy-hex> [logic-hex]
//   echo 363d3d37... | analyze_bytecode -
#include <cstdio>
#include <iostream>
#include <string>

#include "chain/blockchain.h"
#include "core/function_collision.h"
#include "core/proxy_detector.h"
#include "core/selector_extractor.h"
#include "core/storage_collision.h"
#include "core/storage_profile.h"
#include "crypto/keccak.h"
#include "evm/disassembler.h"

using namespace proxion;
using evm::Bytes;

namespace {

Bytes read_hex_arg(const std::string& arg) {
  if (arg != "-") return crypto::from_hex(arg);
  std::string line;
  std::getline(std::cin, line);
  // Trim whitespace the shell may have left around the blob.
  const auto first = line.find_first_not_of(" \t\r\n");
  const auto last = line.find_last_not_of(" \t\r\n");
  if (first == std::string::npos) return {};
  return crypto::from_hex(line.substr(first, last - first + 1));
}

void print_storage_profile(const core::StorageProfile& profile) {
  if (profile.accesses.empty()) {
    std::printf("  (no concrete-slot storage accesses)\n");
    return;
  }
  for (const auto& access : profile.accesses) {
    std::printf("  %-6s slot %-20s bytes [%2u,%2u)%s%s%s\n",
                access.is_write ? "write" : "read",
                access.slot.to_hex().substr(0, 18).c_str(), access.offset,
                access.offset + access.width,
                access.caller_compared ? "  [caller-compared]" : "",
                access.guarded_by_caller ? "  [guarded]" : "",
                access.value_origin == core::ValueOrigin::kCaller
                    ? "  [value=caller]"
                    : "");
  }
  if (profile.hashed_slot_accesses > 0) {
    std::printf("  (+%u keccak-derived mapping/array accesses, not "
                "comparable)\n",
                profile.hashed_slot_accesses);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || argc > 3) {
    std::fprintf(stderr,
                 "usage: %s <proxy-bytecode-hex | -> [logic-bytecode-hex]\n",
                 argv[0]);
    return 2;
  }

  Bytes proxy_code;
  try {
    proxy_code = read_hex_arg(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad bytecode hex: %s\n", e.what());
    return 2;
  }
  if (proxy_code.empty()) {
    std::fprintf(stderr, "empty bytecode\n");
    return 2;
  }

  chain::Blockchain chain;
  const evm::Address deployer = evm::Address::from_label("cli.deployer");
  const evm::Address address = chain.deploy_runtime(deployer, proxy_code);

  const evm::Disassembly dis(proxy_code);
  std::printf("bytecode: %zu bytes, %zu instructions, %zu basic blocks\n",
              proxy_code.size(), dis.instructions().size(),
              dis.blocks().size());
  const auto hash = evm::code_hash(proxy_code);
  std::printf("code hash: 0x%s\n",
              crypto::to_hex(std::span<const std::uint8_t>(hash)).c_str());

  core::ProxyDetector detector(chain);
  const auto report = detector.analyze_code(address, proxy_code);
  std::printf("\nproxy analysis:\n");
  std::printf("  has DELEGATECALL opcode: %s\n",
              report.has_delegatecall_opcode ? "yes" : "no");
  std::printf("  verdict:  %s\n",
              std::string(core::to_string(report.verdict)).c_str());
  if (report.is_proxy()) {
    std::printf("  standard: %s\n",
                std::string(core::to_string(report.standard)).c_str());
    std::printf("  logic:    %s\n", report.logic_address.to_hex().c_str());
    if (report.logic_source == core::LogicSource::kStorageSlot) {
      std::printf("  slot:     %s\n", report.logic_slot.to_hex().c_str());
    } else if (report.logic_source == core::LogicSource::kHardcoded) {
      std::printf("  slot:     (hard-coded in bytecode)\n");
    }
  } else if (report.verdict == core::ProxyVerdict::kEmulationError) {
    std::printf("  emulation halted: %s\n",
                std::string(evm::to_string(report.halt)).c_str());
  }

  const auto selectors = core::extract_selectors(dis);
  std::printf("\nfunction selectors (%zu, dispatcher-pattern):\n",
              selectors.size());
  for (const std::uint32_t s : selectors) {
    std::printf("  0x%08x\n", s);
  }

  std::printf("\nstorage profile:\n");
  print_storage_profile(core::profile_storage(dis));

  if (argc == 3) {
    Bytes logic_code;
    try {
      logic_code = crypto::from_hex(argv[2]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad logic bytecode hex: %s\n", e.what());
      return 2;
    }
    const evm::Address logic = chain.deploy_runtime(deployer, logic_code);
    if (report.logic_source == core::LogicSource::kStorageSlot) {
      chain.set_storage(address, report.logic_slot, logic.to_word());
    }

    core::FunctionCollisionDetector fn_detector;
    const auto fn = fn_detector.detect(address, proxy_code, logic, logic_code);
    std::printf("\npair analysis vs supplied logic bytecode:\n");
    std::printf("  function collisions: %zu\n", fn.colliding_selectors.size());
    for (const std::uint32_t s : fn.colliding_selectors) {
      std::printf("    0x%08x\n", s);
    }
    core::StorageCollisionDetector st_detector(chain);
    const auto st = st_detector.detect(address, proxy_code, logic, logic_code);
    std::printf("  storage collisions:  %zu\n", st.findings.size());
    for (const auto& f : st.findings) {
      std::printf("    slot %s: proxy bytes [%u,%u) vs logic bytes [%u,%u)"
                  "%s%s\n",
                  f.slot.to_hex().c_str(), f.proxy_offset,
                  f.proxy_offset + f.proxy_width, f.logic_offset,
                  f.logic_offset + f.logic_width,
                  f.exploitable ? "  EXPLOITABLE" : "",
                  f.verified ? " (verified)" : "");
    }
    return (fn.has_collision() || st.has_collision()) ? 1 : 0;
  }
  return report.is_proxy() ? 0 : 1;
}
