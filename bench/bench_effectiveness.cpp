// §6.2 reproduction: effectiveness against USCHunt (Sanctuary-style source
// dataset: fewer analysis failures, more proxies found, extra function
// collisions) and against CRUSH (tx dataset: library-caller exclusion,
// hidden proxies CRUSH cannot see, extra storage collisions).
#include <cstdio>

#include "baselines/crush.h"
#include "baselines/etherscan.h"
#include "baselines/uschunt.h"
#include "bench_common.h"
#include "core/proxy_detector.h"
#include "datagen/population.h"

int main() {
  using namespace proxion;
  using namespace proxion::bench;
  using datagen::Archetype;

  auto& pop = population();
  auto& chain = *pop.chain;
  const auto& sweep = full_sweep();

  // ---- vs USCHunt on the source-available subset --------------------------
  std::uint64_t src_contracts = 0;
  std::uint64_t uschunt_failures = 0, uschunt_proxies = 0;
  std::uint64_t proxion_errors = 0, proxion_proxies = 0;
  std::uint64_t proxion_only_collisions = 0;

  baselines::UschuntAnalyzer uschunt(pop.sources);
  for (std::size_t i = 0; i < pop.contracts.size(); ++i) {
    const auto& c = pop.contracts[i];
    if (!c.has_source) continue;
    ++src_contracts;

    const auto ur = uschunt.detect_proxy(c.address);
    if (ur.status == baselines::UschuntStatus::kCompileError) {
      ++uschunt_failures;
    } else if (ur.is_proxy) {
      ++uschunt_proxies;
    }

    const auto& report = sweep.reports[i];
    if (report.proxy.verdict == core::ProxyVerdict::kEmulationError) {
      ++proxion_errors;
    } else if (report.proxy.is_proxy()) {
      ++proxion_proxies;
      if (report.function_collision) {
        const auto pair = uschunt.analyze_pair(
            c.address, report.logic_history.logic_addresses.empty()
                           ? evm::Address{}
                           : report.logic_history.logic_addresses.front());
        if (!(pair.status == baselines::UschuntStatus::kAnalyzed &&
              pair.is_proxy && pair.function_collision)) {
          ++proxion_only_collisions;
        }
      }
    }
  }

  std::printf("Effectiveness vs USCHunt (source-available subset, "
              "Sanctuary-style)\n");
  std::printf("(paper: USCHunt halts on ~30%% compile errors, finds 29,023 "
              "proxies vs Proxion's 35,924;\n Proxion reports 257 function "
              "collisions USCHunt missed)\n\n");
  row("contracts with source", std::to_string(src_contracts));
  row("USCHunt analysis failures",
      std::to_string(uschunt_failures) + " (" +
          pct(static_cast<double>(uschunt_failures),
              static_cast<double>(src_contracts)) +
          ")");
  row("USCHunt proxies found", std::to_string(uschunt_proxies));
  row("Proxion emulation failures",
      std::to_string(proxion_errors) + " (" +
          pct(static_cast<double>(proxion_errors),
              static_cast<double>(src_contracts)) +
          ")");
  row("Proxion proxies found", std::to_string(proxion_proxies));
  row("function collisions only Proxion reports",
      std::to_string(proxion_only_collisions));

  // ---- vs CRUSH on the transaction dataset ---------------------------------
  baselines::CrushAnalyzer crush(chain);
  const auto crush_pairs = crush.find_proxy_pairs();
  std::uint64_t crush_library_fps = 0;
  for (const auto& p : crush_pairs) {
    core::ProxyDetector detector(chain);
    if (!detector.analyze(p.proxy).is_proxy()) ++crush_library_fps;
  }

  std::uint64_t hidden_proxies_proxion = 0;
  for (std::size_t i = 0; i < pop.contracts.size(); ++i) {
    const auto& c = pop.contracts[i];
    if (sweep.reports[i].proxy.is_proxy() && !c.has_tx && !c.has_source) {
      ++hidden_proxies_proxion;
    }
  }

  std::printf("\nEffectiveness vs CRUSH (transaction-mining dataset)\n");
  std::printf("(paper: CRUSH counts library callers as proxies and misses "
              "1.67M no-tx proxies plus 1,480\n exploitable storage "
              "collisions that Proxion adds)\n\n");
  row("pairs CRUSH mines from history", std::to_string(crush_pairs.size()));
  row("of which library callers (not proxies, §2.2)",
      std::to_string(crush_library_fps));
  row("hidden proxies only Proxion finds (no src, no tx)",
      std::to_string(hidden_proxies_proxion));
  row("exploitable storage collisions (Proxion, whole population)",
      std::to_string(sweep.stats.exploitable_storage_collisions));

  // ---- Etherscan opcode-presence strawman ---------------------------------
  std::uint64_t etherscan_flags = 0, etherscan_fps = 0;
  for (std::size_t i = 0; i < pop.contracts.size(); ++i) {
    const auto code = chain.get_code(pop.contracts[i].address);
    if (baselines::etherscan_detect(code).is_proxy) {
      ++etherscan_flags;
      if (!pop.contracts[i].is_proxy_truth) ++etherscan_fps;
    }
  }
  std::printf("\nEtherscan opcode-presence check (documented FP source)\n\n");
  row("contracts flagged by DELEGATECALL presence",
      std::to_string(etherscan_flags));
  row("of which are not actually proxies", std::to_string(etherscan_fps));

  // §8.2: the same detector sweeps other EVM chains unchanged — only the
  // chain id and workload mix differ.
  std::printf("\nMulti-chain portability (§8.2 future work)\n\n");
  for (const auto& [chain_id, name] :
       std::vector<std::pair<std::uint64_t, const char*>>{
           {1, "Ethereum"}, {137, "Polygon"}, {56, "BSC"}}) {
    datagen::PopulationSpec spec;
    spec.total_contracts = 1'500;
    spec.chain_id = chain_id;
    spec.seed = 77 + chain_id;
    datagen::Population alt = datagen::PopulationGenerator().generate(spec);
    core::AnalysisPipeline alt_pipeline(*alt.chain, &alt.sources);
    const auto alt_reports = alt_pipeline.run(alt.sweep_inputs());
    std::uint64_t found = 0, truth = 0;
    for (std::size_t i = 0; i < alt.contracts.size(); ++i) {
      if (alt.contracts[i].is_proxy_truth &&
          alt.contracts[i].archetype != datagen::Archetype::kDiamondProxy) {
        ++truth;
        if (alt_reports[i].proxy.is_proxy()) ++found;
      }
    }
    row(std::string(name) + " (chain id " + std::to_string(chain_id) + ")",
        std::to_string(found) + "/" + std::to_string(truth) +
            " ground-truth proxies detected");
  }
  std::printf("\n[effectiveness] expected shape: Proxion fails less often "
              "than USCHunt, excludes CRUSH's library FPs, and uniquely "
              "covers the hidden class.\n");
  return 0;
}
