// Shared plumbing for the per-table/figure reproduction binaries: one lazily
// built synthetic population (so every bench sees the same world) and small
// table-printing helpers.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "datagen/population.h"

namespace proxion::bench {

/// The standard bench population. Size balances statistical fidelity to the
/// paper's ratios against bench runtime; override with PROXION_BENCH_SCALE.
inline datagen::Population& population() {
  static datagen::Population pop = [] {
    datagen::PopulationSpec spec;
    spec.total_contracts = 12'000;
    if (const char* env = std::getenv("PROXION_BENCH_SCALE")) {
      spec.total_contracts = static_cast<std::uint32_t>(std::atoi(env));
    }
    return datagen::PopulationGenerator().generate(spec);
  }();
  return pop;
}

struct SweepResult {
  std::vector<core::ContractAnalysis> reports;
  core::LandscapeStats stats;
  double wall_ms = 0;
};

/// Runs the full Proxion pipeline over the bench population once and caches
/// the result for all sections of a bench binary.
inline SweepResult& full_sweep() {
  static SweepResult result = [] {
    auto& pop = population();
    core::AnalysisPipeline pipeline(*pop.chain, &pop.sources);
    SweepResult r;
    r.reports = pipeline.run(pop.sweep_inputs());
    r.stats = pipeline.summarize(r.reports);
    r.wall_ms = r.stats.ms_per_contract *
                static_cast<double>(r.stats.total_contracts);
    return r;
  }();
  return result;
}

inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void row(const std::string& label, const std::string& value) {
  std::printf("  %-46s %s\n", label.c_str(), value.c_str());
}

inline std::string pct(double num, double den) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f%%", den == 0 ? 0 : 100.0 * num / den);
  return buf;
}

inline std::string fmt(double v, const char* unit = "") {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.2f%s", v, unit);
  return buf;
}

}  // namespace proxion::bench
