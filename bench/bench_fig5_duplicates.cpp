// Figure 5 reproduction: bytecode-duplicate skew. The paper finds only
// 96,420 unique proxy codebases behind 19.6M proxies, with three contracts
// cloned more than a million times each; logic contracts show the same
// long-tail shape.
#include <cstdio>
#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "bench_common.h"

int main() {
  using namespace proxion;
  using namespace proxion::bench;

  const auto& sweep = full_sweep();
  auto& chain = *population().chain;

  std::unordered_map<std::string, std::uint64_t> proxy_counts;
  std::unordered_map<std::string, std::uint64_t> logic_counts;
  std::unordered_set<std::string> logic_seen_addresses;

  for (const auto& r : sweep.reports) {
    if (!r.proxy.is_proxy()) continue;
    const auto hash = evm::code_hash(chain.get_code(r.address));
    proxy_counts[std::string(reinterpret_cast<const char*>(hash.data()),
                             hash.size())]++;
    for (const auto& logic : r.logic_history.logic_addresses) {
      if (!logic_seen_addresses.insert(logic.to_hex()).second) continue;
      const auto code = chain.get_code(logic);
      if (code.empty()) continue;
      const auto lhash = evm::code_hash(code);
      logic_counts[std::string(reinterpret_cast<const char*>(lhash.data()),
                               lhash.size())]++;
    }
  }

  auto summarize = [](const char* label,
                      std::unordered_map<std::string, std::uint64_t>& counts,
                      std::uint64_t total_note, const char* top3_note) {
    std::vector<std::uint64_t> histogram;
    histogram.reserve(counts.size());
    std::uint64_t total = 0;
    for (const auto& [hash, count] : counts) {
      histogram.push_back(count);
      total += count;
    }
    std::sort(histogram.rbegin(), histogram.rend());
    std::printf("\n%s (population note: %llu instances)\n", label,
                static_cast<unsigned long long>(total_note));
    std::printf("  total instances           %llu\n",
                static_cast<unsigned long long>(total));
    std::printf("  unique codebases          %zu\n", histogram.size());
    std::printf("  top clone families:\n");
    for (std::size_t i = 0; i < std::min<std::size_t>(5, histogram.size());
         ++i) {
      std::printf("    #%zu                      %llu clones (%.1f%% of all)\n",
                  i + 1, static_cast<unsigned long long>(histogram[i]),
                  total == 0 ? 0.0 : 100.0 * histogram[i] / total);
    }
    std::uint64_t top3 = 0;
    for (std::size_t i = 0; i < std::min<std::size_t>(3, histogram.size());
         ++i) {
      top3 += histogram[i];
    }
    std::printf("  top-3 share               %.1f%% %s\n",
                total == 0 ? 0.0 : 100.0 * top3 / total, top3_note);
    std::uint64_t singletons = 0;
    for (const std::uint64_t c : histogram) {
      if (c == 1) ++singletons;
    }
    std::printf("  singleton codebases       %llu\n",
                static_cast<unsigned long long>(singletons));
  };

  std::printf("Figure 5: bytecode uniqueness is heavily skewed\n");
  std::printf("(paper: 96,420 unique proxies / 38,707 unique logics; three "
              "proxies cloned >1M times)\n");
  summarize("Proxy contracts", proxy_counts, sweep.stats.proxies,
            "(paper: 42% of proxies from 3 contracts)");
  summarize("Logic contracts", logic_counts,
            static_cast<std::uint64_t>(logic_seen_addresses.size()),
            "(paper: two logics duplicated >10k times)");
  std::printf("\n[fig5] expected shape: a handful of mega families dominate; "
              "a long tail of singletons follows.\n");
  return 0;
}
