// Ablations of the design decisions DESIGN.md calls out, beyond what
// bench_perf times:
//   1. crafted probe selector vs a naive fixed selector (misclassification);
//   2. dispatcher-pattern vs naive PUSH4 selector extraction (collision FPs);
//   3. §8.2 diamond extension on the full population (recovered misses);
//   4. range-based vs width-only storage comparison (packing FPs avoided).
#include <cstdio>

#include "bench_common.h"
#include "core/diamond_probe.h"
#include "core/function_collision.h"
#include "core/proxy_detector.h"
#include "core/selector_extractor.h"
#include "core/storage_collision.h"
#include "crypto/eth.h"
#include "datagen/contract_factory.h"
#include "datagen/population.h"
#include "evm/interpreter.h"

namespace {

using namespace proxion;
using namespace proxion::bench;
using datagen::Archetype;
using datagen::BodyKind;
using datagen::ContractFactory;
using evm::Bytes;
using evm::U256;

/// Naive probe: always call with selector 0x00000000 and hope it lands in
/// the fallback. Misclassifies any proxy that happens to *have* a function
/// whose selector the probe hits, and any non-proxy whose hit function
/// delegates (library users).
bool naive_probe_is_proxy(chain::Blockchain& chain, const evm::Address& a,
                          std::uint32_t fixed_selector) {
  struct Observer final : evm::TraceObserver {
    evm::Address self;
    Bytes probe;
    bool forwarded = false;
    void on_call(evm::CallKind kind, int, const evm::Address& from,
                 const evm::Address&, evm::BytesView calldata) override {
      if (kind != evm::CallKind::kDelegateCall || !(from == self)) return;
      forwarded |= calldata.size() == probe.size() &&
                   std::equal(calldata.begin(), calldata.end(), probe.begin());
    }
  };
  Bytes probe(36, 0);
  probe[0] = static_cast<std::uint8_t>(fixed_selector >> 24);
  probe[1] = static_cast<std::uint8_t>(fixed_selector >> 16);
  probe[2] = static_cast<std::uint8_t>(fixed_selector >> 8);
  probe[3] = static_cast<std::uint8_t>(fixed_selector);

  evm::OverlayHost overlay(chain);
  Observer observer;
  observer.self = a;
  observer.probe = probe;
  evm::InterpreterConfig config;
  config.step_limit = 200'000;
  evm::Interpreter interp(overlay, config);
  interp.set_observer(&observer);
  evm::CallParams params;
  params.code_address = a;
  params.storage_address = a;
  params.caller = evm::Address::from_label("naive.prober");
  params.calldata = probe;
  interp.execute(params);
  return observer.forwarded;
}

}  // namespace

int main() {
  auto& pop = population();
  auto& chain = *pop.chain;
  const auto& sweep = full_sweep();

  // ---- 1. crafted vs naive probe selector ---------------------------------
  // The failure mode: a proxy whose dispatcher contains a function with the
  // naive probe's exact selector captures the call, so the naive probe sees
  // no forwarding and misclassifies the proxy.
  {
    const evm::Address deployer = evm::Address::from_label("abl.deployer");
    const std::uint32_t fixed = 0xdf4a3106;  // "some popular selector"
    const evm::Address logic =
        chain.deploy_runtime(deployer, ContractFactory::token_contract(31337));
    const evm::Address trap = chain.deploy_runtime(
        deployer, ContractFactory::honeypot_proxy(U256{1}, fixed));
    chain.set_storage(trap, U256{1}, logic.to_word());

    core::ProxyDetector crafted(chain);
    const bool crafted_verdict = crafted.analyze(trap).is_proxy();
    const bool naive_verdict = naive_probe_is_proxy(chain, trap, fixed);

    heading("ablation 1: crafted vs fixed probe selector (§4.2)");
    row("proxy with a function at the fixed selector", "deployed");
    row("crafted probe classifies it as proxy",
        crafted_verdict ? "yes (correct)" : "NO");
    row("fixed-selector probe classifies it as proxy",
        naive_verdict ? "yes" : "no (MISSED - captured by dispatcher)");
  }

  // ---- 2. selector extraction: pattern vs naive ---------------------------
  {
    const Bytes garbage = ContractFactory::garbage_push4_contract();
    const Bytes victim_logic = ContractFactory::plain_contract(
        {{.prototype = "x()", .body = BodyKind::kStop,
          .raw_selector = 0xdeadbeef}});
    const auto pattern_proxy = core::extract_selectors(garbage);
    const auto naive_proxy = core::extract_selectors_naive(garbage);
    const auto logic_selectors = core::extract_selectors(victim_logic);

    auto intersects = [&](const std::vector<std::uint32_t>& a) {
      for (const std::uint32_t s : a) {
        for (const std::uint32_t t : logic_selectors) {
          if (s == t) return true;
        }
      }
      return false;
    };
    heading("ablation 2: dispatcher-pattern vs any-PUSH4 extraction (§5.1)");
    row("PUSH4 immediates in the contract",
        std::to_string(naive_proxy.size()));
    row("of which dispatcher selectors",
        std::to_string(pattern_proxy.size()));
    row("naive extraction reports a function collision",
        intersects(naive_proxy) ? "yes (FALSE POSITIVE)" : "no");
    row("pattern extraction reports a collision",
        intersects(pattern_proxy) ? "yes" : "no (correct)");
  }

  // ---- 3. diamond extension over the population (§8.2) ---------------------
  {
    std::uint64_t diamonds = 0, base_detected = 0, extension_detected = 0;
    for (std::size_t i = 0; i < pop.contracts.size(); ++i) {
      if (pop.contracts[i].archetype != Archetype::kDiamondProxy) continue;
      ++diamonds;
      const auto& base = sweep.reports[i].proxy;
      if (base.is_proxy()) {
        ++base_detected;
        continue;
      }
      core::DiamondProber prober(chain);
      if (prober.probe(pop.contracts[i].address, base).is_diamond) {
        ++extension_detected;
      }
    }
    heading("ablation 3: §8.2 diamond extension on the population");
    row("diamond proxies (ground truth)", std::to_string(diamonds));
    row("detected by the base detector", std::to_string(base_detected));
    row("recovered by tx-hint probing", std::to_string(extension_detected));
    row("still hidden (never transacted)",
        std::to_string(diamonds - base_detected - extension_detected));
  }

  // ---- 4. packing-aware storage comparison ---------------------------------
  {
    const evm::Address deployer = evm::Address::from_label("abl4.deployer");
    // Compatible packing: owner at [0,20), a bool at [20,21).
    const evm::Address proxy = chain.deploy_runtime(
        deployer,
        ContractFactory::slot_proxy(
            U256{1}, {{.prototype = "owner()",
                       .body = BodyKind::kReturnStorageAddress,
                       .slot = U256{0}}}));
    const evm::Address logic = chain.deploy_runtime(
        deployer, ContractFactory::plain_contract(
                      {{.prototype = "paused()",
                        .body = BodyKind::kReturnStorageBoolAtOffset,
                        .slot = U256{0}, .aux = U256{20}}}));
    core::StorageCollisionDetector detector(chain);
    const auto result = detector.detect(proxy, chain.get_code(proxy), logic,
                                        chain.get_code(logic));
    // Width-only comparison would flag 20 vs 1; range comparison sees the
    // disjoint byte ranges.
    heading("ablation 4: packing-aware (range) storage comparison (§5.2)");
    row("slot-0 widths (proxy vs logic)", "20 vs 1 bytes");
    row("width-only comparison would report", "collision (FALSE POSITIVE)");
    row("range comparison reports",
        result.has_collision() ? "collision" : "no collision (correct)");
  }

  std::printf("\n[ablations] each design choice removes a concrete error "
              "class.\n");
  return 0;
}
