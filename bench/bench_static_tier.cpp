// What the static triage tier buys: sweeps the bench population (plus the
// tier's adversarial fixtures) with the prefilter off and on, best-of-3 on
// fresh pipelines, and reports wall-clock, total emulation steps paid, the
// per-kind skip counts, and the cross-check mismatch count (must be zero).
// Verdict equality between the two sweeps is asserted, not assumed — a
// faster wrong sweep is worthless.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.h"
#include "bench_results.h"
#include "core/pipeline.h"
#include "datagen/contract_factory.h"

namespace {

using namespace proxion;
using namespace proxion::bench;

/// The bench population's sweep inputs plus the static-tier fixtures (dead
/// DELEGATECALL, PUSH-data decoy, computed-jump proxy) deployed on the same
/// chain, so the tier's hard cases are in every measured sweep.
std::vector<core::SweepInput>& augmented_inputs() {
  static std::vector<core::SweepInput> inputs = [] {
    using datagen::ContractFactory;
    auto& pop = population();
    auto all = pop.sweep_inputs();
    const evm::Address deployer =
        evm::Address::from_label("bench.static.deployer");
    const evm::Address logic = pop.chain->deploy_runtime(
        deployer, ContractFactory::token_contract(0xbe7c));
    const auto add = [&](const evm::Bytes& code) {
      const evm::Address a = pop.chain->deploy_runtime(deployer, code);
      all.push_back({.address = a, .year = 2022});
      return a;
    };
    add(ContractFactory::dead_delegatecall_contract());
    add(ContractFactory::push_data_delegatecall_contract());
    const evm::Address cj =
        add(ContractFactory::computed_jump_contract(evm::U256{7}));
    pop.chain->set_storage(cj, evm::U256{7}, logic.to_word());
    return all;
  }();
  return inputs;
}

struct SweepSample {
  double wall_ms = 0.0;
  std::vector<core::ContractAnalysis> reports;
  core::LandscapeStats stats;
};

SweepSample sweep_once(bool tier_on) {
  auto& pop = population();
  core::PipelineConfig config;
  config.static_tier.enabled = tier_on;
  config.static_tier.cross_check = tier_on;
  core::AnalysisPipeline pipeline(*pop.chain, &pop.sources, config);
  SweepSample s;
  const auto t0 = std::chrono::steady_clock::now();
  s.reports = pipeline.run(augmented_inputs());
  const auto t1 = std::chrono::steady_clock::now();
  s.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  s.stats = pipeline.summarize(s.reports);
  return s;
}

/// Best-of-N over fresh pipelines: every sample pays cold caches, so the
/// off/on delta isolates the tier, not cache warmth.
SweepSample best_of(int n, bool tier_on) {
  SweepSample best = sweep_once(tier_on);
  for (int i = 1; i < n; ++i) {
    SweepSample s = sweep_once(tier_on);
    if (s.wall_ms < best.wall_ms) best = std::move(s);
  }
  return best;
}

int verdict_diffs(const SweepSample& a, const SweepSample& b) {
  int diffs = 0;
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    const auto& x = a.reports[i].proxy;
    const auto& y = b.reports[i].proxy;
    if (x.verdict != y.verdict || x.standard != y.standard ||
        x.logic_source != y.logic_source || x.logic_slot != y.logic_slot ||
        !(x.logic_address == y.logic_address)) {
      ++diffs;
    }
  }
  return diffs;
}

/// Detection-isolated fleet: many *unique* EIP-1167 runtimes (every embedded
/// target differs, so dedup cannot collapse them — exactly the shape of real
/// clone fleets) swept with history/collision phases off, so the off/on
/// delta is the proxy-detection phase the tier actually touches.
std::vector<core::SweepInput>& fleet_inputs() {
  static std::vector<core::SweepInput> inputs = [] {
    using datagen::ContractFactory;
    auto& pop = population();
    const evm::Address deployer =
        evm::Address::from_label("bench.static.fleet");
    std::vector<core::SweepInput> all;
    for (int i = 0; i < 800; ++i) {
      const evm::Address target =
          evm::Address::from_label("fleet.logic." + std::to_string(i));
      const evm::Address a = pop.chain->deploy_runtime(
          deployer, ContractFactory::minimal_proxy(target));
      all.push_back({.address = a, .year = 2021});
    }
    return all;
  }();
  return inputs;
}

SweepSample fleet_once(bool tier_on) {
  auto& pop = population();
  core::PipelineConfig config;
  config.static_tier.enabled = tier_on;
  config.static_tier.cross_check = tier_on;
  config.detect_collisions = false;
  config.find_logic_history = false;
  core::AnalysisPipeline pipeline(*pop.chain, nullptr, config);
  SweepSample s;
  const auto t0 = std::chrono::steady_clock::now();
  s.reports = pipeline.run(fleet_inputs());
  const auto t1 = std::chrono::steady_clock::now();
  s.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  s.stats = pipeline.summarize(s.reports);
  return s;
}

SweepSample fleet_best_of(int n, bool tier_on) {
  SweepSample best = fleet_once(tier_on);
  for (int i = 1; i < n; ++i) {
    SweepSample s = fleet_once(tier_on);
    if (s.wall_ms < best.wall_ms) best = std::move(s);
  }
  return best;
}

}  // namespace

int main() {
  BenchResults results("bench_static_tier");

  const SweepSample off = best_of(3, false);
  const SweepSample on = best_of(3, true);

  if (off.reports.size() != on.reports.size()) {
    std::fprintf(stderr, "sweep sizes diverged: %zu vs %zu\n",
                 off.reports.size(), on.reports.size());
    return 1;
  }
  const int diffs = verdict_diffs(off, on);
  const auto mismatches = on.stats.static_mismatches;
  if (diffs != 0 || mismatches != 0) {
    std::fprintf(stderr,
                 "EQUIVALENCE VIOLATED: %d verdict diffs, %llu mismatches\n",
                 diffs, static_cast<unsigned long long>(mismatches));
    return 1;
  }

  const double steps_off = off.stats.emulation_steps.sum;
  const double steps_on = on.stats.emulation_steps.sum;
  const std::uint64_t skips = on.stats.static_skipped_absent +
                              on.stats.static_skipped_dead +
                              on.stats.static_skipped_minimal;
  const std::uint64_t triaged = skips + on.stats.static_emulated;

  heading("static triage tier: prefilter off vs on (best of 3, cold)");
  row("contracts swept", std::to_string(off.reports.size()));
  row("sweep wall-clock OFF", fmt(off.wall_ms, " ms"));
  row("sweep wall-clock ON", fmt(on.wall_ms, " ms"));
  row("emulation steps OFF", fmt(steps_off));
  row("emulation steps ON", fmt(steps_on));
  row("verdict diffs vs OFF sweep", std::to_string(diffs));
  row("cross-check mismatches", std::to_string(mismatches));

  // Per-routing-kind savings. A single blended wall_saved number is
  // misleading: blobs the tier routes to "emulate anyway" are wall-neutral
  // by construction (the cross-check even emulates skipped blobs' routing
  // decision cost), so on an emulation-bound mixed population the blended
  // number hovers near 0% and hides the skip-routed blobs' real win. Report
  // steps saved (the tier's direct effect) and wall saved (which only
  // skip-routed blobs can contribute to) separately, per routing kind.
  const auto share = [&](std::uint64_t n) {
    return pct(static_cast<double>(n), static_cast<double>(triaged));
  };
  heading("routing-kind breakdown (ON sweep)");
  row("steps saved, all kinds", pct(steps_off - steps_on, steps_off));
  row("wall saved, all kinds (parity expected: emulation-bound)",
      pct(off.wall_ms - on.wall_ms, off.wall_ms));
  row("routed: phase-1 absent (skip, saves steps+wall)",
      std::to_string(on.stats.static_skipped_absent) + "  (" +
          share(on.stats.static_skipped_absent) + " of triaged)");
  row("routed: provably dead (skip, saves steps+wall)",
      std::to_string(on.stats.static_skipped_dead) + "  (" +
          share(on.stats.static_skipped_dead) + ")");
  row("routed: EIP-1167 fast path (skip, saves steps+wall)",
      std::to_string(on.stats.static_skipped_minimal) + "  (" +
          share(on.stats.static_skipped_minimal) + ")");
  row("routed: emulated (wall-neutral by construction)",
      std::to_string(on.stats.static_emulated) + "  (" +
          share(on.stats.static_emulated) + ")");
  row("see fleet section below for a skip-dominated population", "");

  results.set("sweep_ms_off", off.wall_ms);
  results.set("sweep_ms_on", on.wall_ms);
  results.set("wall_saved_pct",
              off.wall_ms == 0.0
                  ? 0.0
                  : 100.0 * (off.wall_ms - on.wall_ms) / off.wall_ms);
  results.set("emulation_steps_off", steps_off);
  results.set("emulation_steps_on", steps_on);
  results.set("steps_saved_pct",
              steps_off == 0.0 ? 0.0
                               : 100.0 * (steps_off - steps_on) / steps_off);
  results.set("skipped_absent",
              static_cast<double>(on.stats.static_skipped_absent));
  results.set("skipped_dead",
              static_cast<double>(on.stats.static_skipped_dead));
  results.set("skipped_minimal",
              static_cast<double>(on.stats.static_skipped_minimal));
  results.set("emulated", static_cast<double>(on.stats.static_emulated));
  results.set("verdict_diffs", static_cast<double>(diffs));
  results.set("cross_check_mismatches", static_cast<double>(mismatches));
  const double triaged_d = std::max(static_cast<double>(triaged), 1.0);
  results.set("routed_absent_pct",
              100.0 * static_cast<double>(on.stats.static_skipped_absent) /
                  triaged_d);
  results.set("routed_dead_pct",
              100.0 * static_cast<double>(on.stats.static_skipped_dead) /
                  triaged_d);
  results.set("routed_minimal_pct",
              100.0 * static_cast<double>(on.stats.static_skipped_minimal) /
                  triaged_d);
  results.set("routed_emulated_pct",
              100.0 * static_cast<double>(on.stats.static_emulated) /
                  triaged_d);

  // ---- detection-isolated fleet -----------------------------------------
  const SweepSample foff = fleet_best_of(3, false);
  const SweepSample fon = fleet_best_of(3, true);
  const int fleet_diffs = verdict_diffs(foff, fon);
  if (fleet_diffs != 0 || fon.stats.static_mismatches != 0) {
    std::fprintf(stderr, "FLEET EQUIVALENCE VIOLATED: %d diffs, %llu mismatches\n",
                 fleet_diffs,
                 static_cast<unsigned long long>(fon.stats.static_mismatches));
    return 1;
  }
  const double fsteps_off = foff.stats.emulation_steps.sum;
  const double fsteps_on = fon.stats.emulation_steps.sum;

  heading("unique EIP-1167 fleet, detection only (best of 3, cold)");
  row("fleet size (all unique blobs)",
      std::to_string(fleet_inputs().size()));
  row("detection wall-clock OFF", fmt(foff.wall_ms, " ms"));
  row("detection wall-clock ON", fmt(fon.wall_ms, " ms"));
  row("  wall-clock saved", pct(foff.wall_ms - fon.wall_ms, foff.wall_ms));
  row("emulation steps OFF", fmt(fsteps_off));
  row("emulation steps ON", fmt(fsteps_on));
  row("  steps saved", pct(fsteps_off - fsteps_on, fsteps_off));
  row("EIP-1167 fast-path skips",
      std::to_string(fon.stats.static_skipped_minimal));
  row("verdict diffs vs OFF sweep", std::to_string(fleet_diffs));

  results.set("fleet_ms_off", foff.wall_ms);
  results.set("fleet_ms_on", fon.wall_ms);
  results.set("fleet_wall_saved_pct",
              foff.wall_ms == 0.0
                  ? 0.0
                  : 100.0 * (foff.wall_ms - fon.wall_ms) / foff.wall_ms);
  results.set("fleet_steps_off", fsteps_off);
  results.set("fleet_steps_on", fsteps_on);
  results.set("fleet_steps_saved_pct",
              fsteps_off == 0.0
                  ? 0.0
                  : 100.0 * (fsteps_off - fsteps_on) / fsteps_off);
  results.write();
  return 0;
}
