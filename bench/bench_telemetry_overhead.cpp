// The telemetry overhead contract, measured. Microbenches pin the per-op
// cost of the primitives (counter add, histogram record, disabled span = one
// null-pointer branch), and the macro section sweeps the bench population
// four ways — telemetry off, histograms on (the default), full span
// tracing with export, and 1-in-8 sampled tracing — reporting the relative
// overhead and dumping the registry snapshot of the traced sweep into
// BENCH_results.json.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "bench_results.h"
#include "core/pipeline.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using namespace proxion;

void BM_CounterAdd(benchmark::State& state) {
  obs::Counter c;
  for (auto _ : state) {
    c.add();
  }
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_CounterAdd);

void BM_GaugeAdd(benchmark::State& state) {
  obs::Gauge g;
  for (auto _ : state) {
    g.add(1);
  }
  benchmark::DoNotOptimize(g.value());
}
BENCHMARK(BM_GaugeAdd);

void BM_HistogramRecord(benchmark::State& state) {
  obs::Histogram h;
  std::uint64_t v = 1;
  for (auto _ : state) {
    h.record(v);
    v = v * 2862933555777941757ull + 3037000493ull;  // cheap LCG spread
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramRecord);

void BM_DisabledSpan(benchmark::State& state) {
  // The telemetry-off hot path: constructing and destroying a span against
  // a null tracer must reduce to a branch, nothing more.
  for (auto _ : state) {
    obs::Span span(nullptr, "noop");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_DisabledSpan);

void BM_EnabledSpan(benchmark::State& state) {
  obs::Tracer tracer;  // steady_clock; ring default capacity
  for (auto _ : state) {
    obs::Span span(&tracer, "work");
  }
  benchmark::DoNotOptimize(tracer.recorded());
}
BENCHMARK(BM_EnabledSpan);

double timed_sweep(const core::PipelineConfig& config,
                   core::LandscapeStats* stats_out = nullptr) {
  auto& pop = bench::population();
  core::AnalysisPipeline pipeline(*pop.chain, &pop.sources, config);
  const auto t0 = std::chrono::steady_clock::now();
  const auto reports = pipeline.run(pop.sweep_inputs());
  const auto t1 = std::chrono::steady_clock::now();
  if (stats_out != nullptr) *stats_out = pipeline.summarize(reports);
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

void macro_section() {
  using namespace proxion::bench;
  BenchResults results("bench_telemetry_overhead");

  core::PipelineConfig off;
  off.telemetry.enabled = false;
  const double off_ms = timed_sweep(off);

  core::LandscapeStats on_stats;
  const double on_ms = timed_sweep(core::PipelineConfig{}, &on_stats);

  core::PipelineConfig traced;
  traced.telemetry.trace_path = BenchResults::path() + ".trace.json";
  core::LandscapeStats traced_stats;
  const double traced_ms = timed_sweep(traced, &traced_stats);

  // Sampled tracing: 1-in-8 spans kept. Sampled-out spans skip the clock
  // read and argument formatting entirely, so this leg measures how close
  // sampling brings full tracing back to the histograms-only cost.
  core::PipelineConfig sampled = traced;
  sampled.telemetry.trace_path = BenchResults::path() + ".trace_sampled.json";
  sampled.telemetry.span_sample_every_n = 8;
  core::LandscapeStats sampled_stats;
  const double sampled_ms = timed_sweep(sampled, &sampled_stats);

  const double on_overhead = 100.0 * (on_ms - off_ms) / off_ms;
  const double traced_overhead = 100.0 * (traced_ms - off_ms) / off_ms;
  const double sampled_overhead = 100.0 * (sampled_ms - off_ms) / off_ms;

  heading("sweep overhead: telemetry off vs histograms vs full tracing");
  row("telemetry OFF", fmt(off_ms, " ms"));
  row("histograms ON (default)", fmt(on_ms, " ms"));
  row("  overhead vs OFF", fmt(on_overhead, "%"));
  row("span tracing + export", fmt(traced_ms, " ms"));
  row("  overhead vs OFF", fmt(traced_overhead, "%"));
  row("span tracing, 1-in-8 sampled", fmt(sampled_ms, " ms"));
  row("  overhead vs OFF", fmt(sampled_overhead, "%"));
  row("spans recorded (sampled sweep)",
      std::to_string(sampled_stats.trace_spans_recorded));
  row("spans recorded (traced sweep)",
      std::to_string(traced_stats.trace_spans_recorded) + " (" +
          std::to_string(traced_stats.trace_spans_dropped) + " dropped)");
  row("per-contract p50/p99",
      fmt(on_stats.contract_latency_ns.p50 / 1e6) + " / " +
          fmt(on_stats.contract_latency_ns.p99 / 1e6, " ms"));
  row("per-rpc p50/p99",
      fmt(on_stats.rpc_latency_ns.p50 / 1e3) + " / " +
          fmt(on_stats.rpc_latency_ns.p99 / 1e3, " us"));

  results.set("sweep_off_ms", off_ms);
  results.set("sweep_histograms_ms", on_ms);
  results.set("sweep_tracing_ms", traced_ms);
  results.set("histogram_overhead_pct", on_overhead);
  results.set("tracing_overhead_pct", traced_overhead);
  results.set("sweep_tracing_sampled_ms", sampled_ms);
  results.set("tracing_sampled_overhead_pct", sampled_overhead);
  results.set("trace_spans_recorded_sampled",
              static_cast<double>(sampled_stats.trace_spans_recorded));
  results.set("trace_spans_recorded",
              static_cast<double>(traced_stats.trace_spans_recorded));
  results.set("trace_spans_dropped",
              static_cast<double>(traced_stats.trace_spans_dropped));
  results.set("contract_latency_p50_ns", on_stats.contract_latency_ns.p50);
  results.set("contract_latency_p99_ns", on_stats.contract_latency_ns.p99);
  results.set("rpc_latency_p50_ns", on_stats.rpc_latency_ns.p50);
  results.set("rpc_latency_p99_ns", on_stats.rpc_latency_ns.p99);
  results.set("emulation_steps_p50", on_stats.emulation_steps.p50);
  results.set("emulation_steps_p99", on_stats.emulation_steps.p99);
  results.write();
}

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  macro_section();
  return 0;
}
