// The telemetry overhead contract, measured. Microbenches pin the per-op
// cost of the primitives (counter add, histogram record, disabled span = one
// null-pointer branch), and the macro section sweeps the bench population
// four ways — telemetry off, histograms on (the default), full span
// tracing with export, and 1-in-8 sampled tracing — reporting the relative
// overhead and dumping the registry snapshot of the traced sweep into
// BENCH_results.json.
// The introspection-plane leg measures the serving-mode configuration —
// background exporter + structured event log + live span ring — against the
// default, gating the "observability is nearly free" claim (<= 2% wall).
// The coarse-clock leg re-measures full tracing after the tracing-tax shave
// (interned span names, TLS-cached coarse clock) against its <= 15% budget.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "bench_results.h"
#include "core/pipeline.h"
#include "obs/eventlog.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using namespace proxion;

void BM_CounterAdd(benchmark::State& state) {
  obs::Counter c;
  for (auto _ : state) {
    c.add();
  }
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_CounterAdd);

void BM_GaugeAdd(benchmark::State& state) {
  obs::Gauge g;
  for (auto _ : state) {
    g.add(1);
  }
  benchmark::DoNotOptimize(g.value());
}
BENCHMARK(BM_GaugeAdd);

void BM_HistogramRecord(benchmark::State& state) {
  obs::Histogram h;
  std::uint64_t v = 1;
  for (auto _ : state) {
    h.record(v);
    v = v * 2862933555777941757ull + 3037000493ull;  // cheap LCG spread
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramRecord);

void BM_DisabledSpan(benchmark::State& state) {
  // The telemetry-off hot path: constructing and destroying a span against
  // a null tracer must reduce to a branch, nothing more.
  for (auto _ : state) {
    obs::Span span(nullptr, "noop");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_DisabledSpan);

void BM_EnabledSpan(benchmark::State& state) {
  obs::Tracer tracer;  // steady_clock; ring default capacity
  for (auto _ : state) {
    obs::Span span(&tracer, "work");
  }
  benchmark::DoNotOptimize(tracer.recorded());
}
BENCHMARK(BM_EnabledSpan);

void BM_EnabledSpanCoarse(benchmark::State& state) {
  // The shaved hot path: interned name lookup hits the TLS cache and the
  // coarse clock amortizes the steady_clock read over kCoarseRefresh spans.
  obs::Tracer tracer;
  tracer.set_coarse_clock(true);
  for (auto _ : state) {
    obs::Span span(&tracer, "work");
  }
  benchmark::DoNotOptimize(tracer.recorded());
}
BENCHMARK(BM_EnabledSpanCoarse);

void BM_ExporterTickAndRender(benchmark::State& state) {
  // One scrape's worth of work against a realistically-populated registry.
  obs::Registry reg;
  for (int i = 0; i < 16; ++i) {
    reg.counter("bench.counter_" + std::to_string(i)).add(1000 + i);
    reg.gauge("bench.gauge_" + std::to_string(i)).set(i);
  }
  auto& h = reg.histogram("bench.latency_ns");
  for (std::uint64_t v = 1; v < 1'000'000; v *= 3) h.record(v);
  obs::ExporterConfig config;
  config.interval_ms = 0;  // manual ticks
  obs::Exporter exporter({&reg}, config);
  for (auto _ : state) {
    exporter.tick();
    benchmark::DoNotOptimize(exporter.render_prometheus());
  }
}
BENCHMARK(BM_ExporterTickAndRender);

double timed_sweep(const core::PipelineConfig& config,
                   core::LandscapeStats* stats_out = nullptr) {
  auto& pop = bench::population();
  core::AnalysisPipeline pipeline(*pop.chain, &pop.sources, config);
  const auto t0 = std::chrono::steady_clock::now();
  const auto reports = pipeline.run(pop.sweep_inputs());
  const auto t1 = std::chrono::steady_clock::now();
  if (stats_out != nullptr) *stats_out = pipeline.summarize(reports);
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

// Serving-mode sweep, one rep: same pipeline run with the whole
// introspection plane live — background exporter scraping every 250 ms,
// structured event log, SweepStatus publishing, and the live span ring (no
// trace-file export).
double timed_sweep_with_plane() {
  auto& pop = bench::population();
  obs::EventLog event_log;
  obs::SweepStatus status;
  core::PipelineConfig config;
  config.telemetry.live_spans = true;
  config.telemetry.coarse_clock = true;
  config.telemetry.event_log = &event_log;
  config.telemetry.status = &status;
  core::AnalysisPipeline pipeline(*pop.chain, &pop.sources, config);
  obs::ExporterConfig exp_config;
  exp_config.interval_ms = 250;
  obs::Exporter exporter({&obs::Registry::global(), &pipeline.registry()},
                         exp_config);
  exporter.start();
  const auto t0 = std::chrono::steady_clock::now();
  const auto reports = pipeline.run(pop.sweep_inputs());
  const auto t1 = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(reports.size());
  exporter.stop();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

void macro_section() {
  using namespace proxion::bench;
  BenchResults results("bench_telemetry_overhead");

  core::PipelineConfig off;
  off.telemetry.enabled = false;

  core::PipelineConfig traced;
  traced.telemetry.trace_path = BenchResults::path() + ".trace.json";

  // Full tracing after the tracing-tax shave: interned span names, the
  // TLS-cached coarse clock, and the live span ring (drained over /spans)
  // instead of a post-run trace file. Every span is still recorded — only
  // the per-span bookkeeping cost and the one-off file serialization
  // differ. This is the serving-mode configuration and the <= 15% budget
  // leg; the `traced` leg keeps file export for continuity with the seed
  // measurement.
  core::PipelineConfig coarse;
  coarse.telemetry.live_spans = true;
  coarse.telemetry.coarse_clock = true;

  // Sampled tracing: 1-in-8 spans kept. Sampled-out spans skip the clock
  // read and argument formatting entirely, so this leg measures how close
  // sampling brings full tracing back to the histograms-only cost.
  core::PipelineConfig sampled = traced;
  sampled.telemetry.trace_path = BenchResults::path() + ".trace_sampled.json";
  sampled.telemetry.span_sample_every_n = 8;

  // Three reps, legs INTERLEAVED round-robin and a per-leg minimum:
  // overhead ratios in the low-single-digit-percent range drown in
  // machine-load drift if each leg's reps run back to back (the drift then
  // lands on whole legs instead of averaging out), and the minimum is the
  // least-noisy estimator of true cost on a shared machine.
  core::LandscapeStats on_stats, traced_stats, sampled_stats;
  double off_ms = 0, on_ms = 0, traced_ms = 0, coarse_ms = 0, sampled_ms = 0,
         plane_ms = 0;
  for (int rep = 0; rep < 3; ++rep) {
    const bool first = rep == 0;
    auto keep = [first](double& best, double ms) {
      best = first ? ms : std::min(best, ms);
    };
    keep(off_ms, timed_sweep(off));
    keep(on_ms, timed_sweep(core::PipelineConfig{},
                            first ? &on_stats : nullptr));
    keep(traced_ms, timed_sweep(traced, first ? &traced_stats : nullptr));
    keep(coarse_ms, timed_sweep(coarse));
    keep(sampled_ms, timed_sweep(sampled, first ? &sampled_stats : nullptr));
    // The live introspection plane (exporter + event log + status
    // publishing) added on top of the identical live-ring tracing config —
    // the delta against the coarse leg isolates exactly what serving costs.
    keep(plane_ms, timed_sweep_with_plane());
  }

  const double on_overhead = 100.0 * (on_ms - off_ms) / off_ms;
  const double traced_overhead = 100.0 * (traced_ms - off_ms) / off_ms;
  const double coarse_overhead = 100.0 * (coarse_ms - off_ms) / off_ms;
  const double sampled_overhead = 100.0 * (sampled_ms - off_ms) / off_ms;
  const double plane_overhead = 100.0 * (plane_ms - coarse_ms) / coarse_ms;

  heading("sweep overhead: telemetry off vs histograms vs full tracing");
  row("telemetry OFF", fmt(off_ms, " ms"));
  row("histograms ON (default)", fmt(on_ms, " ms"));
  row("  overhead vs OFF", fmt(on_overhead, "%"));
  row("span tracing + export", fmt(traced_ms, " ms"));
  row("  overhead vs OFF", fmt(traced_overhead, "%"));
  row("span tracing, coarse clock, live ring", fmt(coarse_ms, " ms"));
  row("  overhead vs OFF (<=15% budget)", fmt(coarse_overhead, "%"));
  row("span tracing, 1-in-8 sampled", fmt(sampled_ms, " ms"));
  row("  overhead vs OFF", fmt(sampled_overhead, "%"));
  row("introspection plane live", fmt(plane_ms, " ms"));
  row("  overhead vs live-ring leg (<=2% budget)", fmt(plane_overhead, "%"));
  row("spans recorded (sampled sweep)",
      std::to_string(sampled_stats.trace_spans_recorded));
  row("spans recorded (traced sweep)",
      std::to_string(traced_stats.trace_spans_recorded) + " (" +
          std::to_string(traced_stats.trace_spans_dropped) + " dropped)");
  row("per-contract p50/p99",
      fmt(on_stats.contract_latency_ns.p50 / 1e6) + " / " +
          fmt(on_stats.contract_latency_ns.p99 / 1e6, " ms"));
  row("per-rpc p50/p99",
      fmt(on_stats.rpc_latency_ns.p50 / 1e3) + " / " +
          fmt(on_stats.rpc_latency_ns.p99 / 1e3, " us"));

  results.set("sweep_off_ms", off_ms);
  results.set("sweep_histograms_ms", on_ms);
  results.set("sweep_tracing_ms", traced_ms);
  results.set("histogram_overhead_pct", on_overhead);
  results.set("tracing_overhead_pct", traced_overhead);
  results.set("sweep_tracing_coarse_ms", coarse_ms);
  results.set("tracing_coarse_overhead_pct", coarse_overhead);
  results.set("sweep_tracing_sampled_ms", sampled_ms);
  results.set("tracing_sampled_overhead_pct", sampled_overhead);
  results.set("sweep_plane_ms", plane_ms);
  results.set("plane_overhead_pct", plane_overhead);
  results.set("trace_spans_recorded_sampled",
              static_cast<double>(sampled_stats.trace_spans_recorded));
  results.set("trace_spans_recorded",
              static_cast<double>(traced_stats.trace_spans_recorded));
  results.set("trace_spans_dropped",
              static_cast<double>(traced_stats.trace_spans_dropped));
  results.set("contract_latency_p50_ns", on_stats.contract_latency_ns.p50);
  results.set("contract_latency_p99_ns", on_stats.contract_latency_ns.p99);
  results.set("rpc_latency_p50_ns", on_stats.rpc_latency_ns.p50);
  results.set("rpc_latency_p99_ns", on_stats.rpc_latency_ns.p99);
  results.set("emulation_steps_p50", on_stats.emulation_steps.p50);
  results.set("emulation_steps_p99", on_stats.emulation_steps.p99);
  results.write();
}

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  macro_section();
  return 0;
}
