// Table 2 reproduction: storage- and function-collision detection accuracy
// (TP/FP/TN/FN) of Proxion vs USCHunt vs CRUSH on a labelled ground-truth
// dataset modelled on the Smart Contract Sanctuary evaluation (§6.3).
//
// The dataset deliberately contains the error sources the paper documents:
//   - deliberate storage padding and renamed-but-compatible variables
//     (USCHunt's name-based check FPs),
//   - benign width mismatches that look exploitable at the bytecode level
//     (Proxion/CRUSH FPs),
//   - collisions hiding in keccak-derived mapping slots (Proxion FNs),
//   - proxies whose emulation faults (Proxion function-collision FNs),
//   - library pairs reachable only through tx mining (CRUSH FPs),
//   - sources that fail to compile or obscure the delegation (USCHunt FNs).
#include <cstdio>
#include <random>
#include <vector>

#include "baselines/crush.h"
#include "baselines/uschunt.h"
#include "chain/blockchain.h"
#include "core/function_collision.h"
#include "core/proxy_detector.h"
#include "core/storage_collision.h"
#include "crypto/eth.h"
#include "datagen/assembler.h"
#include "datagen/contract_factory.h"
#include "sourcemeta/source.h"

namespace {

using namespace proxion;
using chain::Blockchain;
using datagen::Assembler;
using datagen::BodyKind;
using datagen::ContractFactory;
using evm::Address;
using evm::Bytes;
using evm::Opcode;
using evm::U256;

struct LabelledPair {
  Address proxy;
  Address logic;
  bool truth = false;      // ground truth: real (exploitable) collision?
  bool is_proxy_pair = true;  // ground truth: is `proxy` actually a proxy?
  const char* category = "";
};

struct Confusion {
  int tp = 0, fp = 0, tn = 0, fn = 0;
  void add(bool truth, bool reported) {
    if (truth && reported) ++tp;
    else if (!truth && reported) ++fp;
    else if (!truth && !reported) ++tn;
    else ++fn;
  }
  double accuracy() const {
    const int total = tp + fp + tn + fn;
    return total == 0 ? 0 : 100.0 * (tp + tn) / total;
  }
};

class DatasetBuilder {
 public:
  DatasetBuilder(Blockchain& chain, sourcemeta::SourceRepository& sources)
      : chain_(chain), sources_(sources), rng_(7) {}

  Address deploy(Bytes code) {
    return chain_.deploy_runtime(deployer_, std::move(code));
  }

  void send_probe_tx(const Address& proxy, std::uint32_t selector) {
    Bytes calldata(36, 0);
    calldata[0] = static_cast<std::uint8_t>(selector >> 24);
    calldata[1] = static_cast<std::uint8_t>(selector >> 16);
    calldata[2] = static_cast<std::uint8_t>(selector >> 8);
    calldata[3] = static_cast<std::uint8_t>(selector);
    chain_.call(user_, proxy, calldata);
  }

  void publish(const Address& a, sourcemeta::SourceRecord rec,
               bool obscure_delegation = false) {
    // Model USCHunt's environment: ~30% unknown compiler versions and
    // occasional sources whose delegation Slither cannot see (§6.2/§6.3).
    if (roll() < 0.30) rec.compiler_version = "unknown";
    if (obscure_delegation) rec.fallback_delegates = false;
    sources_.publish(a, std::move(rec));
  }

  double roll() { return std::uniform_real_distribution<double>(0, 1)(rng_); }

  sourcemeta::SourceRecord proxy_source(
      std::vector<sourcemeta::VariableDecl> vars,
      std::vector<sourcemeta::FunctionDecl> funcs = {}) {
    sourcemeta::SourceRecord rec;
    rec.contract_name = "Proxy";
    rec.fallback_delegates = true;
    rec.functions = std::move(funcs);
    rec.storage = std::move(vars);
    sourcemeta::layout_storage(rec.storage);
    return rec;
  }

  sourcemeta::SourceRecord logic_source(
      std::vector<sourcemeta::VariableDecl> vars,
      std::vector<sourcemeta::FunctionDecl> funcs = {}) {
    sourcemeta::SourceRecord rec;
    rec.contract_name = "Logic";
    rec.functions = std::move(funcs);
    rec.storage = std::move(vars);
    sourcemeta::layout_storage(rec.storage);
    return rec;
  }

  Blockchain& chain_;
  sourcemeta::SourceRepository& sources_;
  std::mt19937_64 rng_;
  Address deployer_ = Address::from_label("t2.deployer");
  Address user_ = Address::from_label("t2.user");
};

// ---- storage-collision dataset ---------------------------------------------

std::vector<LabelledPair> build_storage_dataset(DatasetBuilder& b) {
  std::vector<LabelledPair> pairs;

  // (1) Real exploitable collisions: the Audius shape. truth = true.
  for (int i = 0; i < 35; ++i) {
    LabelledPair p;
    p.category = "audius";
    p.truth = true;
    p.logic = b.deploy(ContractFactory::audius_style_logic());
    p.proxy = b.deploy(ContractFactory::audius_style_proxy());
    b.chain_.set_storage(p.proxy, U256{1}, p.logic.to_word());
    b.publish(p.proxy,
              b.proxy_source({{.name = "owner", .type = "address"},
                              {.name = "logic", .type = "address"}},
                             {{.prototype = "owner()"},
                              {.prototype = "upgradeTo(address)"}}));
    b.publish(p.logic,
              b.logic_source({{.name = "initialized", .type = "bool"},
                              {.name = "initializing", .type = "bool"}},
                             {{.prototype = "initialize()"},
                              {.prototype = "initialized()"},
                              {.prototype = "work(uint256)"}}));
    if (b.roll() < 0.6) b.send_probe_tx(p.proxy, 0x01020304);
    pairs.push_back(p);
  }

  // (2) Deliberate padding: proxy reserves slot 0 as a gap it never touches;
  // logic uses slot 0. Name-based comparison flags it; it is benign.
  for (int i = 0; i < 60; ++i) {
    LabelledPair p;
    p.category = "padding";
    p.truth = false;
    p.proxy = b.deploy(ContractFactory::slot_proxy(U256{1}));
    p.logic = b.deploy(ContractFactory::plain_contract(
        {{.prototype = "counter()", .body = BodyKind::kReturnStorageWord,
          .slot = U256{0}},
         {.prototype = "bump(uint256)", .body = BodyKind::kStoreArgWord,
          .slot = U256{0}}}));
    b.chain_.set_storage(p.proxy, U256{1}, p.logic.to_word());
    b.publish(p.proxy, b.proxy_source(
                           {{.name = "__gap0", .type = "uint256",
                             .is_padding = true},
                            {.name = "logic", .type = "address"}}));
    b.publish(p.logic,
              b.logic_source({{.name = "counter", .type = "uint256"}},
                             {{.prototype = "counter()"},
                              {.prototype = "bump(uint256)"}}));
    if (b.roll() < 0.6) b.send_probe_tx(p.proxy, 0x01020304);
    pairs.push_back(p);
  }

  // (3) Renamed but layout-compatible variables. Benign.
  for (int i = 0; i < 55; ++i) {
    LabelledPair p;
    p.category = "renamed";
    p.truth = false;
    p.proxy = b.deploy(ContractFactory::slot_proxy(
        U256{1}, {{.prototype = "owner()",
                   .body = BodyKind::kReturnStorageAddress,
                   .slot = U256{0}}}));
    p.logic = b.deploy(ContractFactory::plain_contract(
        {{.prototype = "admin()", .body = BodyKind::kReturnStorageAddress,
          .slot = U256{0}}}));
    b.chain_.set_storage(p.proxy, U256{1}, p.logic.to_word());
    b.publish(p.proxy, b.proxy_source({{.name = "owner", .type = "address"},
                                       {.name = "logic", .type = "address"}},
                                      {{.prototype = "owner()"}}));
    b.publish(p.logic, b.logic_source({{.name = "admin", .type = "address"}},
                                      {{.prototype = "admin()"}}));
    if (b.roll() < 0.6) b.send_probe_tx(p.proxy, 0x01020304);
    pairs.push_back(p);
  }

  // (4) Benign width mismatch that *looks* exploitable at bytecode level:
  // logic keeps a caller-written bool cache in slot 5 that the proxy merely
  // reports in a getter. Manual audit: benign (Proxion/CRUSH FP source).
  for (int i = 0; i < 30; ++i) {
    LabelledPair p;
    p.category = "benign-width";
    p.truth = false;
    p.proxy = b.deploy(ContractFactory::slot_proxy(
        U256{1}, {{.prototype = "status()",
                   .body = BodyKind::kReturnStorageWord, .slot = U256{5}}}));
    p.logic = b.deploy(ContractFactory::plain_contract(
        {{.prototype = "ping()", .body = BodyKind::kStoreCaller,
          .slot = U256{5}},
         {.prototype = "pinged()", .body = BodyKind::kReturnStorageBool,
          .slot = U256{5}}}));
    b.chain_.set_storage(p.proxy, U256{1}, p.logic.to_word());
    b.publish(p.proxy, b.proxy_source({{.name = "status", .type = "uint256"},
                                       {.name = "logic", .type = "address"}},
                                      {{.prototype = "status()"}}));
    b.publish(p.logic, b.logic_source({{.name = "status", .type = "uint256"}},
                                      {{.prototype = "ping()"},
                                       {.prototype = "pinged()"}}));
    if (b.roll() < 0.6) b.send_probe_tx(p.proxy, 0x01020304);
    pairs.push_back(p);
  }

  // (5) Real collision hidden in a keccak-derived mapping slot: both sides
  // write mapping entries of incompatible types. Proxion's concrete-slot
  // profiler skips hashed slots (FN source); source-level layouts still
  // reveal the drift to name-based tools.
  for (int i = 0; i < 25; ++i) {
    LabelledPair p;
    p.category = "hashed";
    p.truth = true;
    // Bytecode: accesses via KECCAK256-derived slots only.
    Assembler logic_asm;
    ContractFactory::emit_dispatcher(
        logic_asm, {{.prototype = "put(uint256)", .body = BodyKind::kStop}});
    logic_asm.jumpdest("fallback");
    logic_asm.push(U256{0}, 1).push(U256{0}, 1).op(Opcode::REVERT);
    logic_asm.jumpdest("fn0");
    // store caller into mapping slot keccak(arg . 2)
    logic_asm.push(U256{4}, 1).op(Opcode::CALLDATALOAD);
    logic_asm.push(U256{0}, 1).op(Opcode::MSTORE);
    logic_asm.push(U256{2}, 1).push(U256{0x20}, 1).op(Opcode::MSTORE);
    logic_asm.op(Opcode::CALLER);
    logic_asm.push(U256{0x40}, 1).push(U256{0}, 1).op(Opcode::KECCAK256);
    logic_asm.op(Opcode::SSTORE).op(Opcode::STOP);
    p.logic = b.deploy(logic_asm.assemble());
    p.proxy = b.deploy(ContractFactory::slot_proxy(U256{1}));
    b.chain_.set_storage(p.proxy, U256{1}, p.logic.to_word());
    b.publish(p.proxy, b.proxy_source({{.name = "logic", .type = "address"},
                                       {.name = "balances",
                                        .type = "mapping(uint=>uint)"}}));
    b.publish(p.logic,
              b.logic_source({{.name = "logic", .type = "address"},
                              {.name = "holders",
                               .type = "mapping(uint=>address)"}},
                             {{.prototype = "put(uint256)"}}));
    if (b.roll() < 0.6) b.send_probe_tx(p.proxy, 0x01020304);
    pairs.push_back(p);
  }

  // (6) Fully compatible pairs. Benign.
  for (int i = 0; i < 25; ++i) {
    LabelledPair p;
    p.category = "safe";
    p.truth = false;
    p.proxy = b.deploy(ContractFactory::slot_proxy(
        U256{1}, {{.prototype = "owner()",
                   .body = BodyKind::kReturnStorageAddress,
                   .slot = U256{0}}}));
    p.logic = b.deploy(ContractFactory::plain_contract(
        {{.prototype = "owner()", .body = BodyKind::kReturnStorageAddress,
          .slot = U256{0}}}));
    b.chain_.set_storage(p.proxy, U256{1}, p.logic.to_word());
    b.publish(p.proxy, b.proxy_source({{.name = "owner", .type = "address"},
                                       {.name = "logic", .type = "address"}},
                                      {{.prototype = "owner()"}}));
    b.publish(p.logic, b.logic_source({{.name = "owner", .type = "address"}},
                                      {{.prototype = "owner()"}}));
    if (b.roll() < 0.6) b.send_probe_tx(p.proxy, 0x01020304);
    pairs.push_back(p);
  }

  // (7) Library pairs: tx mining discovers them, §2.2 says they are not
  // proxy pairs at all; any collision reported on them is a false positive.
  for (int i = 0; i < 45; ++i) {
    LabelledPair p;
    p.category = "library";
    p.truth = false;
    p.is_proxy_pair = false;
    // Library whose helper caches the caller in slot 7 (bool-read +
    // caller-write = "exploitable-looking"), used via delegatecall from a
    // *named* function. Per §2.2 this is not a proxy pair at all.
    p.logic = b.deploy(ContractFactory::plain_contract(
        {{.prototype = "helper()", .body = BodyKind::kStoreCaller,
          .slot = U256{7}},
         {.prototype = "helped()", .body = BodyKind::kReturnStorageBool,
          .slot = U256{7}}}));
    p.proxy = b.deploy(ContractFactory::plain_contract(
        {{.prototype = "compute(uint256)", .body = BodyKind::kDelegateToLibrary,
          .aux = p.logic.to_word()},
         {.prototype = "status()", .body = BodyKind::kReturnStorageWord,
          .slot = U256{7}}}));
    b.send_probe_tx(p.proxy, crypto::selector_u32("compute(uint256)"));
    pairs.push_back(p);
  }

  return pairs;
}

// ---- function-collision dataset ---------------------------------------------

std::vector<LabelledPair> build_function_dataset(DatasetBuilder& b) {
  std::vector<LabelledPair> pairs;
  const std::uint32_t lure = crypto::selector_u32("free_ether_withdrawal()");

  // (1) Honeypots: proxy function shadows the logic lure. truth = true.
  for (int i = 0; i < 250; ++i) {
    LabelledPair p;
    p.category = "honeypot";
    p.truth = true;
    const std::uint32_t selector = lure + static_cast<std::uint32_t>(i);
    p.logic = b.deploy(ContractFactory::honeypot_logic(selector));
    p.proxy = b.deploy(ContractFactory::honeypot_proxy(U256{1}, selector));
    b.chain_.set_storage(p.proxy, U256{1}, p.logic.to_word());
    b.publish(p.proxy,
              b.proxy_source({{.name = "owner", .type = "address"},
                              {.name = "logic", .type = "address"}},
                             {{.prototype = "impl_LUsXCWD2AKCc()"},
                              {.prototype = "owner()"}}),
              /*obscure_delegation=*/b.roll() < 0.15);
    b.publish(p.logic, b.logic_source(
                           {}, {{.prototype = "free_ether_withdrawal()"}}));
    pairs.push_back(p);
  }
  // (2) Wyvern-style inheritance collisions. truth = true.
  for (int i = 0; i < 150; ++i) {
    LabelledPair p;
    p.category = "wyvern";
    p.truth = true;
    const std::vector<datagen::FunctionSpec> shared = {
        {.prototype = "proxyType()", .body = BodyKind::kReturnConstant,
         .aux = U256{2}},
        {.prototype = "implementation()",
         .body = BodyKind::kReturnStorageAddress, .slot = U256{2}},
        {.prototype = "upgradeabilityOwner()",
         .body = BodyKind::kReturnStorageAddress, .slot = U256{0}},
    };
    p.proxy = b.deploy(ContractFactory::slot_proxy(U256{2}, shared));
    auto logic_funcs = shared;
    logic_funcs.push_back({.prototype = "user()",
                           .body = BodyKind::kReturnStorageAddress,
                           .slot = U256{3}});
    p.logic = b.deploy(ContractFactory::plain_contract(logic_funcs));
    b.chain_.set_storage(p.proxy, U256{2}, p.logic.to_word());
    b.publish(p.proxy,
              b.proxy_source({{.name = "owner", .type = "address"},
                              {.name = "reserved", .type = "uint256"},
                              {.name = "impl", .type = "address"}},
                             {{.prototype = "proxyType()"},
                              {.prototype = "implementation()"},
                              {.prototype = "upgradeabilityOwner()"}}),
              b.roll() < 0.15);
    b.publish(p.logic,
              b.logic_source({{.name = "owner", .type = "address"},
                              {.name = "reserved", .type = "uint256"},
                              {.name = "impl", .type = "address"},
                              {.name = "user", .type = "address"}},
                             {{.prototype = "proxyType()"},
                              {.prototype = "implementation()"},
                              {.prototype = "upgradeabilityOwner()"},
                              {.prototype = "user()"}}));
    pairs.push_back(p);
  }

  // (3) Disjoint selector sets. truth = false.
  for (int i = 0; i < 100; ++i) {
    LabelledPair p;
    p.category = "disjoint";
    p.truth = false;
    p.proxy = b.deploy(ContractFactory::slot_proxy(
        U256{1}, {{.prototype = "admin()",
                   .body = BodyKind::kReturnStorageAddress,
                   .slot = U256{0}}}));
    p.logic = b.deploy(ContractFactory::token_contract(
        static_cast<std::uint64_t>(i) + 9000));
    b.chain_.set_storage(p.proxy, U256{1}, p.logic.to_word());
    b.publish(p.proxy,
              b.proxy_source({{.name = "admin", .type = "address"},
                              {.name = "logic", .type = "address"}},
                             {{.prototype = "admin()"}}),
              b.roll() < 0.15);
    b.publish(p.logic,
              b.logic_source({{.name = "owner", .type = "address"}},
                             {{.prototype = "totalSupply()"},
                              {.prototype = "balanceOf(address)"},
                              {.prototype = "transfer(address,uint256)"},
                              {.prototype = "owner()"}}));
    pairs.push_back(p);
  }

  // (4) PUSH4 garbage traps: the proxy body embeds the logic's selector as
  // a data constant. Naive PUSH4 extraction reports a collision; the
  // dispatcher-pattern extractor must not. truth = false.
  for (int i = 0; i < 50; ++i) {
    LabelledPair p;
    p.category = "garbage";
    p.truth = false;
    p.proxy = b.deploy(ContractFactory::slot_proxy(
        U256{1}, {{.prototype = "magic()", .body = BodyKind::kPush4Garbage}}));
    p.logic = b.deploy(ContractFactory::plain_contract(
        {{.prototype = "deadBeef()", .body = BodyKind::kStop,
          .raw_selector = 0xdeadbeef}}));
    b.chain_.set_storage(p.proxy, U256{1}, p.logic.to_word());
    b.publish(p.proxy, b.proxy_source({{.name = "logic", .type = "address"}},
                                      {{.prototype = "magic()"}}),
              b.roll() < 0.15);
    b.publish(p.logic, b.logic_source({}, {{.prototype = "deadBeef()"}}));
    pairs.push_back(p);
  }

  // (5) Proxies whose emulation faults: a dispatcher collision hidden
  // behind code Proxion cannot emulate — the paper's three FNs (§6.3).
  for (int i = 0; i < 3; ++i) {
    LabelledPair p;
    p.category = "emu-error";
    p.truth = true;
    Assembler bad;
    // GASPRICE-family preamble then a stack underflow before the fallback.
    bad.op(Opcode::DELEGATECALL);  // 6 pops on an empty stack
    p.proxy = b.deploy(bad.assemble());
    p.logic = b.deploy(ContractFactory::honeypot_logic(lure));
    pairs.push_back(p);
  }

  // (6) A functionless proxy whose source the attacker withheld: negative
  // case exercised in bytecode mode on the proxy side only.
  {
    LabelledPair p;
    p.category = "no-proxy-src";
    p.truth = false;
    p.proxy = b.deploy(ContractFactory::slot_proxy(U256{1}));
    p.logic = b.deploy(ContractFactory::plain_contract(
        {{.prototype = "doWork()", .body = BodyKind::kStop}}));
    b.chain_.set_storage(p.proxy, U256{1}, p.logic.to_word());
    b.publish(p.logic, b.logic_source({}, {{.prototype = "doWork()"}}));
    pairs.push_back(p);
  }

  return pairs;
}

void print_confusion(const char* tool, const Confusion& c) {
  std::printf("  %-12s TP=%-4d FP=%-4d TN=%-4d FN=%-4d accuracy=%.1f%%\n",
              tool, c.tp, c.fp, c.tn, c.fn, c.accuracy());
}

}  // namespace

int main() {
  Blockchain chain;
  sourcemeta::SourceRepository sources;
  DatasetBuilder builder(chain, sources);

  const auto storage_pairs = build_storage_dataset(builder);
  const auto function_pairs = build_function_dataset(builder);

  core::ProxyDetector proxion_detector(chain);
  baselines::UschuntAnalyzer uschunt(sources);
  baselines::CrushAnalyzer crush(chain);
  const auto crush_pairs = crush.find_proxy_pairs();
  auto crush_discovered = [&](const Address& proxy) {
    for (const auto& cp : crush_pairs) {
      if (cp.proxy == proxy) return true;
    }
    return false;
  };

  // ---- storage collisions -------------------------------------------------
  Confusion proxion_st, uschunt_st, crush_st;
  for (const LabelledPair& p : storage_pairs) {
    const Bytes proxy_code = chain.get_code(p.proxy);
    const Bytes logic_code = chain.get_code(p.logic);

    // Proxion: must first classify the contract as a proxy (emulation),
    // then reports exploitable width mismatches.
    bool proxion_report = false;
    if (proxion_detector.analyze(p.proxy).is_proxy()) {
      core::StorageCollisionDetector detector(chain);
      const auto result =
          detector.detect(p.proxy, proxy_code, p.logic, logic_code);
      for (const auto& f : result.findings) {
        proxion_report |= f.exploitable;
      }
    }
    proxion_st.add(p.truth, proxion_report);

    // USCHunt: source-only, name-based.
    const auto ur = uschunt.analyze_pair(p.proxy, p.logic);
    uschunt_st.add(p.truth, ur.status == baselines::UschuntStatus::kAnalyzed &&
                                ur.is_proxy && ur.storage_collision);

    // CRUSH: only pairs surfaced by tx mining; same slicing engine — but
    // no fallback-based proxy definition, so any mined pair's width
    // mismatch is reported (this is where the library callers hurt it).
    bool crush_report = false;
    if (crush_discovered(p.proxy)) {
      const auto cr = crush.analyze_pair(p.proxy, p.logic);
      crush_report = cr.storage_collision;
    }
    crush_st.add(p.truth, crush_report);
  }

  // ---- function collisions --------------------------------------------------
  Confusion proxion_fn, uschunt_fn;
  for (const LabelledPair& p : function_pairs) {
    const Bytes proxy_code = chain.get_code(p.proxy);
    const Bytes logic_code = chain.get_code(p.logic);

    bool proxion_report = false;
    if (proxion_detector.analyze(p.proxy).is_proxy()) {
      core::FunctionCollisionDetector detector(&sources);
      proxion_report =
          detector.detect(p.proxy, proxy_code, p.logic, logic_code)
              .has_collision();
    }
    proxion_fn.add(p.truth, proxion_report);

    const auto ur = uschunt.analyze_pair(p.proxy, p.logic);
    uschunt_fn.add(p.truth, ur.status == baselines::UschuntStatus::kAnalyzed &&
                                ur.is_proxy && ur.function_collision);
  }

  std::printf("Table 2: collision detection accuracy (paper: Proxion 78.2%% "
              "storage / 99.5%% function;\n         USCHunt 54.4%% / 53.3%%; "
              "CRUSH 54.4%% storage)\n\n");
  std::printf("Storage collisions (%zu labelled pairs):\n",
              storage_pairs.size());
  print_confusion("USCHunt", uschunt_st);
  print_confusion("CRUSH", crush_st);
  print_confusion("Proxion", proxion_st);
  std::printf("\nFunction collisions (%zu labelled pairs):\n",
              function_pairs.size());
  print_confusion("USCHunt", uschunt_fn);
  print_confusion("Proxion", proxion_fn);
  std::printf("\n[table2] expected shape: Proxion > USCHunt == CRUSH on "
              "storage; Proxion >> USCHunt on function.\n");
  return 0;
}
