// Query-plane bench: what the lock-free snapshot buys under load. Sections:
//   1. single-thread read rate + p99 latency over the full request path
//      (parse → snapshot load → index lookup → JSON render);
//   2. reader scaling 1 -> min(8, cores) threads hammering the same service
//      (target: near-linear — the snapshot swap is the only shared write);
//   3. reads while the chain follower runs incremental laps: an upgrade
//      workload mines blocks and the follower republishes mid-read, with the
//      staleness ceiling observed after every fenced block.
// Headline numbers are merged into BENCH_results.json; bench_smoke.sh gates
// read_scaling_efficiency >= 0.7 and staleness_blocks_max <= 1.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bench_results.h"
#include "core/pipeline.h"
#include "datagen/contract_factory.h"
#include "serve/follower.h"
#include "serve/query_service.h"
#include "store/durable_sweep.h"
#include "store/journal.h"

namespace {

using namespace proxion;
using namespace proxion::bench;

using Clock = std::chrono::steady_clock;

std::string journal_path(const std::string& name) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "proxion_bench_query";
  fs::create_directories(dir);
  const fs::path p = dir / name;
  fs::remove(p);
  fs::remove(store::manifest_path_for(p.string()));
  return p.string();
}

/// The read mix every worker runs: mostly point lookups, with periodic
/// code-hash and vulnerability-class scans so list rendering is in the mix.
struct ReadTargets {
  std::vector<std::string> addresses;  // hex, as a client would send them
  std::string code_hash;
  std::string vuln_query = "class=function_collision";
};

std::uint64_t one_read(const serve::QueryService& query,
                       const ReadTargets& targets, std::uint64_t i) {
  obs::HttpResponse r;
  if (i % 16 == 14) {
    r = query.codehash_endpoint(targets.code_hash);
  } else if (i % 16 == 15) {
    r = query.vulns_endpoint(targets.vuln_query);
  } else {
    r = query.contract_endpoint(targets.addresses[i % targets.addresses.size()]);
  }
  return r.body.size();  // keep the render alive past the optimizer
}

/// Runs `threads` workers for `duration_ms` and returns total reads/s.
double read_rate(const serve::QueryService& query, const ReadTargets& targets,
                 unsigned threads, int duration_ms) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total{0};
  std::vector<std::thread> workers;
  const auto t0 = Clock::now();
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      std::uint64_t ops = 0;
      std::uint64_t sink = 0;
      for (std::uint64_t i = t; !stop.load(std::memory_order_relaxed); ++i) {
        sink += one_read(query, targets, i);
        ++ops;
      }
      total.fetch_add(ops + (sink == 0 ? 0 : 0), std::memory_order_relaxed);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true);
  for (std::thread& w : workers) w.join();
  const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
  return static_cast<double>(total.load()) / secs;
}

}  // namespace

int main() {
  BenchResults results("bench_query_service");
  auto& pop = population();
  const auto inputs = pop.sweep_inputs();
  std::printf("query-service bench over %zu contracts\n", inputs.size());

  core::PipelineConfig config;
  core::AnalysisPipeline pipeline(*pop.chain, &pop.sources, config);
  store::DurableSweepConfig sc;
  sc.journal_path = journal_path("query.journal");
  serve::QueryService query;
  serve::ChainFollowerConfig fc;
  fc.year_of_block = [](std::uint64_t) { return 2023; };
  serve::ChainFollower follower(pipeline, *pop.chain, &pop.sources, sc, query,
                                inputs, fc);
  const auto t0 = Clock::now();
  follower.poll();  // the initial full sweep seeds the snapshot
  pop.chain->mine_block();
  follower.poll();  // absorb the generator's open-block tail
  const double seed_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

  const std::shared_ptr<const serve::Snapshot> snap = query.snapshot();
  ReadTargets targets;
  for (const core::VerdictRow& row : snap->rows) {
    if (targets.addresses.size() >= 256) break;
    targets.addresses.push_back(row.address.to_hex());
    if (targets.code_hash.empty() &&
        row.verdict == core::ProxyVerdict::kProxy) {
      targets.code_hash = "0x" + crypto::to_hex(row.code_hash);
    }
  }

  heading("snapshot seeding");
  row("initial sweep + publish", fmt(seed_ms, " ms"));
  row("snapshot entries", std::to_string(snap->rows.size()));
  results.set("snapshot_entries", static_cast<double>(snap->rows.size()));

  // ---- 1. single-thread rate + p99 over the full request path ------------
  std::vector<std::uint64_t> lat_ns;
  lat_ns.reserve(1 << 15);
  {
    const auto until = Clock::now() + std::chrono::milliseconds(400);
    std::uint64_t i = 0;
    while (Clock::now() < until) {
      const auto s = Clock::now();
      one_read(query, targets, i++);
      lat_ns.push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               s)
              .count()));
    }
  }
  std::sort(lat_ns.begin(), lat_ns.end());
  const double p99_ns = static_cast<double>(
      lat_ns[std::min(lat_ns.size() - 1, lat_ns.size() * 99 / 100)]);
  const double rate_1t = read_rate(query, targets, 1, 400);

  heading("single-thread read path (lookup + JSON render)");
  row("reads/s", fmt(rate_1t / 1e3, "k"));
  row("p99 latency", fmt(p99_ns / 1e3, " us"));
  results.set("reads_per_s_1t", rate_1t);
  results.set("read_p99_ns", p99_ns);

  // ---- 2. reader scaling ---------------------------------------------------
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned threads_max = std::min(8u, hw);
  const double rate_max = threads_max == 1
                              ? rate_1t
                              : read_rate(query, targets, threads_max, 400);
  const double efficiency =
      rate_max / (rate_1t * static_cast<double>(threads_max));

  heading("reader scaling (wait-free snapshot loads)");
  row("threads", std::to_string(threads_max) + " of " + std::to_string(hw) +
                     " cores");
  row("reads/s at max threads", fmt(rate_max / 1e3, "k"));
  row("scaling efficiency", fmt(efficiency * 100.0, " % of linear"));
  results.set("read_threads_max", static_cast<double>(threads_max));
  results.set("reads_per_s_max", rate_max);
  results.set("read_scaling_efficiency", efficiency);

  // ---- 3. reads while incremental laps republish the snapshot -------------
  std::vector<evm::Address> proxies;
  std::vector<evm::Address> tokens;
  for (const auto& c : pop.contracts) {
    if (c.archetype == datagen::Archetype::kEip1967Proxy) {
      proxies.push_back(c.address);
    } else if (c.archetype == datagen::Archetype::kToken) {
      tokens.push_back(c.address);
    }
  }
  const std::uint64_t laps_before = follower.stats().laps.load();
  std::uint64_t staleness_max = 0;
  double rate_during = 0.0;
  if (!proxies.empty() && !tokens.empty()) {
    follower.start();
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> reads{0};
    std::vector<std::thread> readers;
    const unsigned reader_threads = std::max(1u, threads_max / 2);
    const auto t1 = Clock::now();
    for (unsigned t = 0; t < reader_threads; ++t) {
      readers.emplace_back([&, t] {
        std::uint64_t ops = 0;
        for (std::uint64_t i = t; !stop.load(std::memory_order_relaxed); ++i) {
          one_read(query, targets, i);
          ++ops;
        }
        reads.fetch_add(ops, std::memory_order_relaxed);
      });
    }
    const evm::U256 slot = datagen::ContractFactory::eip1967_slot();
    for (std::size_t wave = 0; wave < 8; ++wave) {
      pop.chain->set_storage(proxies[wave % proxies.size()], slot,
                             tokens[wave % tokens.size()].to_word());
      pop.chain->mine_block();
      follower.wait_synced(pop.chain->height());
      // The fence just returned: the snapshot must already cover this head.
      const std::uint64_t chain_head = follower.stats().chain_head.load();
      const std::uint64_t snap_head = follower.stats().snapshot_head.load();
      staleness_max = std::max(
          staleness_max, chain_head > snap_head ? chain_head - snap_head : 0);
    }
    stop.store(true);
    for (std::thread& r : readers) r.join();
    follower.stop();
    const double secs =
        std::chrono::duration<double>(Clock::now() - t1).count();
    rate_during = static_cast<double>(reads.load()) / secs;
  }
  const std::uint64_t laps = follower.stats().laps.load() - laps_before;

  heading("reads during incremental laps (8-block upgrade workload)");
  row("incremental laps", std::to_string(laps));
  row("reads/s while lapping", fmt(rate_during / 1e3, "k"));
  row("max staleness after fence", std::to_string(staleness_max) + " block(s)");
  results.set("follower_laps", static_cast<double>(laps));
  results.set("reads_per_s_during_laps", rate_during);
  results.set("staleness_blocks_max", static_cast<double>(staleness_max));

  results.write();
  return 0;
}
