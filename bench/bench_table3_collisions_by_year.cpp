// Table 3 reproduction: function and storage collisions by deployment year,
// plus the duplicate-share headline (98.7% of function collisions come from
// one duplicated clone family).
#include <cstdio>
#include <unordered_set>

#include "bench_common.h"

int main() {
  using namespace proxion;
  using namespace proxion::bench;

  const auto& sweep = full_sweep();
  const auto& stats = sweep.stats;

  std::printf("Table 3: collisions by deployment year "
              "(paper totals: 1,566,784 function / 3,022 storage;\n"
              " 98.7%% of function collisions are duplicated contracts)\n\n");
  std::printf("  %-8s %-22s %-20s\n", "Year", "Function collisions",
              "Storage collisions");
  std::printf("  %s\n", std::string(50, '-').c_str());
  std::uint64_t fn_total = 0, st_total = 0;
  for (int year = 2015; year <= 2023; ++year) {
    const auto fn_it = stats.function_collisions_by_year.find(year);
    const auto st_it = stats.storage_collisions_by_year.find(year);
    const std::uint64_t fn =
        fn_it == stats.function_collisions_by_year.end() ? 0 : fn_it->second;
    const std::uint64_t st =
        st_it == stats.storage_collisions_by_year.end() ? 0 : st_it->second;
    fn_total += fn;
    st_total += st;
    std::printf("  %-8d %-22llu %-20llu\n", year,
                static_cast<unsigned long long>(fn),
                static_cast<unsigned long long>(st));
  }
  std::printf("  %s\n", std::string(50, '-').c_str());
  std::printf("  %-8s %-22llu %-20llu\n", "Total",
              static_cast<unsigned long long>(fn_total),
              static_cast<unsigned long long>(st_total));

  // Duplicate share among function-collision proxies (the paper's 98.7%).
  auto& chain = *population().chain;
  std::unordered_set<std::string> unique_colliding_code;
  std::uint64_t colliding = 0, duplicated = 0;
  for (const auto& r : sweep.reports) {
    if (!r.function_collision) continue;
    ++colliding;
    const auto code = chain.get_code(r.address);
    const auto hash = evm::code_hash(code);
    const std::string key(reinterpret_cast<const char*>(hash.data()),
                          hash.size());
    if (!unique_colliding_code.insert(key).second) ++duplicated;
  }
  heading("duplicate share of function-collision proxies");
  row("proxies with function collisions", std::to_string(colliding));
  row("of which duplicated bytecode", std::to_string(duplicated) + " (" +
                                          pct(static_cast<double>(duplicated),
                                              static_cast<double>(colliding)) +
                                          ")");
  row("unique colliding codebases",
      std::to_string(unique_colliding_code.size()));
  std::printf("\n[table3] expected shape: collisions concentrate in the "
              "2021-2022 clone years; the vast majority are duplicates of "
              "one family.\n");
  return 0;
}
