// §6.1 reproduction: performance. Microbenchmarks (google-benchmark) for
// every hot path — proxy checks, selector extraction, collision checks,
// keccak, the interpreter — plus a macro section reporting the paper's
// headline metrics: ms per proxy check, contracts/second, getStorageAt
// calls per proxy, and the bytecode-dedup ablation.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bench_results.h"
#include "chain/archive_node.h"
#include "core/analysis_cache.h"
#include "core/function_collision.h"
#include "core/logic_finder.h"
#include "core/proxy_detector.h"
#include "core/selector_extractor.h"
#include "core/selector_grinder.h"
#include "core/storage_collision.h"
#include "core/storage_profile.h"
#include "crypto/eth.h"
#include "crypto/keccak.h"
#include "datagen/contract_factory.h"
#include "evm/disassembler.h"
#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace {

using namespace proxion;
using chain::Blockchain;
using datagen::ContractFactory;
using evm::Bytes;
using evm::U256;

struct PerfWorld {
  Blockchain chain;
  evm::Address minimal_proxy, slot_proxy, token, logic, honeypot_proxy,
      honeypot_logic, audius_proxy, audius_logic;

  PerfWorld() {
    const auto deployer = evm::Address::from_label("perf.deployer");
    logic = chain.deploy_runtime(deployer, ContractFactory::token_contract(1));
    minimal_proxy =
        chain.deploy_runtime(deployer, ContractFactory::minimal_proxy(logic));
    slot_proxy =
        chain.deploy_runtime(deployer, ContractFactory::eip1967_proxy());
    // Initialize the slot deep inside history so Algorithm 1 has a real
    // change point to binary-search for.
    chain.mine_until(10'000);
    chain.set_storage(slot_proxy, ContractFactory::eip1967_slot(),
                      logic.to_word());
    token = chain.deploy_runtime(deployer, ContractFactory::token_contract(2));
    honeypot_logic = chain.deploy_runtime(
        deployer, ContractFactory::honeypot_logic(0xdf4a3106));
    honeypot_proxy = chain.deploy_runtime(
        deployer, ContractFactory::honeypot_proxy(U256{1}, 0xdf4a3106));
    chain.set_storage(honeypot_proxy, U256{1}, honeypot_logic.to_word());
    audius_logic =
        chain.deploy_runtime(deployer, ContractFactory::audius_style_logic());
    audius_proxy =
        chain.deploy_runtime(deployer, ContractFactory::audius_style_proxy());
    chain.set_storage(audius_proxy, U256{1}, audius_logic.to_word());
    chain.mine_until(50'000);  // deep history for Algorithm 1
  }
};

PerfWorld& world() {
  static PerfWorld w;
  return w;
}

void BM_Keccak256_32B(benchmark::State& state) {
  std::vector<std::uint8_t> data(32, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::keccak256(data));
  }
}
BENCHMARK(BM_Keccak256_32B);

void BM_Keccak256_1KiB(benchmark::State& state) {
  std::vector<std::uint8_t> data(1024, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::keccak256(data));
  }
}
BENCHMARK(BM_Keccak256_1KiB);

void BM_Keccak256Many_32B_x64(benchmark::State& state) {
  // The batched entry point: 64 distinct 32-byte messages per call, hashed
  // 4 lanes at a time (AVX2 when the CPU has it, SWAR otherwise).
  std::vector<std::vector<std::uint8_t>> msgs(
      64, std::vector<std::uint8_t>(32, 0xab));
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    msgs[i][0] = static_cast<std::uint8_t>(i);
  }
  const std::span<const std::vector<std::uint8_t>> view(msgs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::keccak256_many(view));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
  state.SetLabel(crypto::keccak_batch_backend());
}
BENCHMARK(BM_Keccak256Many_32B_x64);

void BM_Keccak256Loop_32B_x64(benchmark::State& state) {
  // Scalar baseline for the batch bench above: same 64 messages, one
  // keccak256() call each.
  std::vector<std::vector<std::uint8_t>> msgs(
      64, std::vector<std::uint8_t>(32, 0xab));
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    msgs[i][0] = static_cast<std::uint8_t>(i);
  }
  for (auto _ : state) {
    for (const auto& m : msgs) {
      benchmark::DoNotOptimize(crypto::keccak256(m));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_Keccak256Loop_32B_x64);

void BM_Keccak256Many_Ragged_x64(benchmark::State& state) {
  // Mixed lengths (36..516 bytes) exercise the block-count bucketing: the
  // batcher sorts by padded block count and fills 4-wide lanes per bucket.
  std::vector<std::vector<std::uint8_t>> msgs;
  for (std::size_t i = 0; i < 64; ++i) {
    msgs.emplace_back(36 + (i % 16) * 32, static_cast<std::uint8_t>(i));
  }
  const std::span<const std::vector<std::uint8_t>> view(msgs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::keccak256_many(view));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
  state.SetLabel(crypto::keccak_batch_backend());
}
BENCHMARK(BM_Keccak256Many_Ragged_x64);

void BM_Disassemble_Token(benchmark::State& state) {
  const Bytes code = ContractFactory::token_contract(1);
  for (auto _ : state) {
    evm::Disassembly dis(code);
    benchmark::DoNotOptimize(dis.instructions().size());
  }
}
BENCHMARK(BM_Disassemble_Token);

void BM_ProxyCheck_MinimalProxy(benchmark::State& state) {
  auto& w = world();
  core::ProxyDetector detector(w.chain);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.analyze(w.minimal_proxy).verdict);
  }
}
BENCHMARK(BM_ProxyCheck_MinimalProxy);

void BM_ProxyCheck_SlotProxy(benchmark::State& state) {
  auto& w = world();
  core::ProxyDetector detector(w.chain);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.analyze(w.slot_proxy).verdict);
  }
}
BENCHMARK(BM_ProxyCheck_SlotProxy);

void BM_ProxyCheck_NonProxyPrefiltered(benchmark::State& state) {
  // The §4.1 prefilter pays off: a non-proxy without DELEGATECALL never
  // reaches emulation.
  auto& w = world();
  core::ProxyDetector detector(w.chain);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.analyze(w.token).verdict);
  }
}
BENCHMARK(BM_ProxyCheck_NonProxyPrefiltered);

void BM_SelectorExtraction_Pattern(benchmark::State& state) {
  const Bytes code = ContractFactory::token_contract(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::extract_selectors(code).size());
  }
}
BENCHMARK(BM_SelectorExtraction_Pattern);

void BM_SelectorExtraction_Naive(benchmark::State& state) {
  const Bytes code = ContractFactory::token_contract(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::extract_selectors_naive(code).size());
  }
}
BENCHMARK(BM_SelectorExtraction_Naive);

void BM_FunctionCollisionCheck(benchmark::State& state) {
  auto& w = world();
  const Bytes proxy_code = w.chain.get_code(w.honeypot_proxy);
  const Bytes logic_code = w.chain.get_code(w.honeypot_logic);
  core::FunctionCollisionDetector detector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        detector
            .detect(w.honeypot_proxy, proxy_code, w.honeypot_logic,
                    logic_code)
            .has_collision());
  }
}
BENCHMARK(BM_FunctionCollisionCheck);

void BM_StorageProfile_AudiusLogic(benchmark::State& state) {
  const Bytes code = ContractFactory::audius_style_logic();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::profile_storage(code).accesses.size());
  }
}
BENCHMARK(BM_StorageProfile_AudiusLogic);

void BM_StorageCollisionCheck_WithVerification(benchmark::State& state) {
  auto& w = world();
  const Bytes proxy_code = w.chain.get_code(w.audius_proxy);
  const Bytes logic_code = w.chain.get_code(w.audius_logic);
  core::StorageCollisionDetector detector(w.chain);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        detector.detect(w.audius_proxy, proxy_code, w.audius_logic, logic_code)
            .has_verified_exploit());
  }
}
BENCHMARK(BM_StorageCollisionCheck_WithVerification);

void BM_SelectorGrind_HashRate(benchmark::State& state) {
  // §2.3: the paper ground ~600M prototype hashes in 1.5h (~110k/s) on a
  // laptop. This measures our prototypes-hashed-per-second.
  std::uint64_t i = 0;
  for (auto _ : state) {
    core::GrindConfig config;
    config.match_bits = 32;
    config.max_attempts = 1000;
    config.prefix = "impl" + std::to_string(i++) + "_";
    benchmark::DoNotOptimize(grind_selector(0xdf4a3106, config).has_value());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000);
}
BENCHMARK(BM_SelectorGrind_HashRate);

void BM_Artifacts_Recompute(benchmark::State& state) {
  // What every stage of the seed pipeline paid per contract: disassemble,
  // extract selectors, profile storage — from scratch each time.
  const Bytes code = ContractFactory::token_contract(1);
  for (auto _ : state) {
    evm::Disassembly dis(code);
    benchmark::DoNotOptimize(core::extract_selectors(dis).size());
    benchmark::DoNotOptimize(core::profile_storage(dis).accesses.size());
  }
}
BENCHMARK(BM_Artifacts_Recompute);

void BM_Artifacts_WarmCacheLookup(benchmark::State& state) {
  // The same three artifacts served from the code-hash-keyed cache.
  const Bytes code = ContractFactory::token_contract(1);
  const crypto::Hash256 hash = evm::code_hash(code);
  core::AnalysisCache cache;
  cache.storage_profile(hash, code);  // warm all three artifacts
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.disassembly(hash, code).get());
    benchmark::DoNotOptimize(cache.selectors(hash, code)->size());
    benchmark::DoNotOptimize(cache.storage_profile(hash, code).get());
  }
}
BENCHMARK(BM_Artifacts_WarmCacheLookup);

constexpr std::size_t kParallelItems = 256;

void parallel_work_item(std::size_t i) {
  // A few microseconds of keccak per item, roughly one small-blob hash.
  std::vector<std::uint8_t> data(64, static_cast<std::uint8_t>(i));
  benchmark::DoNotOptimize(crypto::keccak256(data));
}

void BM_ParallelFor_SpawnJoinThreads(benchmark::State& state) {
  // The seed pipeline's pattern: spawn N std::threads over static shard
  // ranges, join, repeat for the next phase.
  const unsigned workers = 4;
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) {
      threads.emplace_back([t] {
        for (std::size_t i = t; i < kParallelItems; i += 4) {
          parallel_work_item(i);
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kParallelItems);
}
BENCHMARK(BM_ParallelFor_SpawnJoinThreads);

void BM_ParallelFor_PersistentPool(benchmark::State& state) {
  // Same work on the persistent work-stealing executor: no thread churn.
  util::ThreadPool pool(4);
  for (auto _ : state) {
    pool.parallel_for(kParallelItems, parallel_work_item);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kParallelItems);
}
BENCHMARK(BM_ParallelFor_PersistentPool);

void BM_Algorithm1_BinarySearch(benchmark::State& state) {
  auto& w = world();
  core::ProxyDetector pd(w.chain);
  const auto report = pd.analyze(w.slot_proxy);
  chain::ArchiveNode node(w.chain);
  core::LogicFinder finder(node);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        finder.find(w.slot_proxy, report).logic_addresses.size());
  }
}
BENCHMARK(BM_Algorithm1_BinarySearch);

void macro_section() {
  using namespace proxion::bench;
  std::printf("\n---- macro metrics (paper §6.1: 6.4 ms/proxy-check = 156.3 "
              "contracts/s;\n      6.7 ms/function-collision check; ~26 "
              "getStorageAt calls/proxy; dedup speedup) ----\n");

  BenchResults results("bench_perf");
  auto& pop = population();

  // Throughput including dedup (the production configuration).
  {
    core::AnalysisPipeline pipeline(*pop.chain, &pop.sources);
    const auto t0 = std::chrono::steady_clock::now();
    const auto reports = pipeline.run(pop.sweep_inputs());
    const auto t1 = std::chrono::steady_clock::now();
    auto stats = pipeline.summarize(reports);
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double per_contract = ms / static_cast<double>(reports.size());
    heading("full pipeline (dedup ON, collisions ON)");
    row("contracts analyzed", std::to_string(reports.size()));
    row("total wall time", fmt(ms, " ms"));
    row("per contract", fmt(per_contract, " ms"));
    row("throughput", fmt(1000.0 / per_contract, " contracts/s"));
    results.set("full_sweep_ms", ms);
    results.set("ms_per_contract", per_contract);
    results.set("contracts_per_s", 1000.0 / per_contract);
    // Telemetry histograms over the same sweep (nanosecond percentiles).
    row("per-contract latency p50/p90/p99",
        fmt(stats.contract_latency_ns.p50 / 1e6) + " / " +
            fmt(stats.contract_latency_ns.p90 / 1e6) + " / " +
            fmt(stats.contract_latency_ns.p99 / 1e6, " ms"));
    row("per-rpc latency p50/p99",
        fmt(stats.rpc_latency_ns.p50 / 1e3) + " / " +
            fmt(stats.rpc_latency_ns.p99 / 1e3, " us"));
    row("emulation steps/probe p50/p99",
        fmt(stats.emulation_steps.p50) + " / " +
            fmt(stats.emulation_steps.p99));
    results.set("contract_latency_p50_ns", stats.contract_latency_ns.p50);
    results.set("contract_latency_p90_ns", stats.contract_latency_ns.p90);
    results.set("contract_latency_p99_ns", stats.contract_latency_ns.p99);
    results.set("rpc_latency_p50_ns", stats.rpc_latency_ns.p50);
    results.set("rpc_latency_p99_ns", stats.rpc_latency_ns.p99);
    results.set("emulation_steps_p50", stats.emulation_steps.p50);
    results.set("emulation_steps_p99", stats.emulation_steps.p99);
    // Process-wide registry snapshot: the absorbed counters (keccak, archive
    // RPCs, thread-pool activity) in machine-readable form.
    for (const auto& [name, value] :
         obs::Registry::global().snapshot().counters) {
      results.set("registry." + name, static_cast<double>(value));
    }
    std::uint64_t slot_proxies = 0, calls = 0;
    for (const auto& r : reports) {
      if (r.proxy.is_proxy() &&
          r.proxy.logic_source == core::LogicSource::kStorageSlot) {
        ++slot_proxies;
        calls += r.logic_history.api_calls;
      }
    }
    if (slot_proxies != 0) {
      row("getStorageAt calls per slot-proxy",
          fmt(static_cast<double>(calls) / static_cast<double>(slot_proxies)));
    }
  }

  // Ablation: dedup OFF (every clone re-analyzed, §6.1's bottleneck).
  {
    core::PipelineConfig config;
    config.dedup_by_code_hash = false;
    config.detect_collisions = false;
    config.find_logic_history = false;
    core::AnalysisPipeline pipeline(*pop.chain, &pop.sources, config);
    const auto t0 = std::chrono::steady_clock::now();
    const auto reports = pipeline.run(pop.sweep_inputs());
    const auto t1 = std::chrono::steady_clock::now();
    const double ms_no_dedup =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    config.dedup_by_code_hash = true;
    core::AnalysisPipeline pipeline2(*pop.chain, &pop.sources, config);
    const auto t2 = std::chrono::steady_clock::now();
    const auto reports2 = pipeline2.run(pop.sweep_inputs());
    const auto t3 = std::chrono::steady_clock::now();
    const double ms_dedup =
        std::chrono::duration<double, std::milli>(t3 - t2).count();

    heading("ablation: bytecode-hash dedup (proxy detection only)");
    row("dedup OFF", fmt(ms_no_dedup, " ms"));
    row("dedup ON", fmt(ms_dedup, " ms"));
    row("speedup", fmt(ms_no_dedup / std::max(ms_dedup, 0.001), "x"));
    results.set("dedup_off_ms", ms_no_dedup);
    results.set("dedup_on_ms", ms_dedup);
    results.set("dedup_speedup_x", ms_no_dedup / std::max(ms_dedup, 0.001));
    (void)reports;
    (void)reports2;
  }

  // Cold vs warm analysis cache: the same pipeline swept twice. The second
  // sweep serves every code blob, every disassembly/selector/profile
  // artifact, and every proxy verdict (keyed by code hash + address) from
  // the persistent caches; pair outcomes are recomputed each run — they
  // depend on run-local donor state and live proxy storage — but their
  // inner artifact lookups all hit.
  {
    core::AnalysisPipeline pipeline(*pop.chain, &pop.sources);

    const auto t0 = std::chrono::steady_clock::now();
    const auto cold = pipeline.run(pop.sweep_inputs());
    const auto t1 = std::chrono::steady_clock::now();
    const auto cold_stats = pipeline.summarize(cold);

    const auto t2 = std::chrono::steady_clock::now();
    const auto warm = pipeline.run(pop.sweep_inputs());
    const auto t3 = std::chrono::steady_clock::now();
    const auto warm_stats = pipeline.summarize(warm);

    const double cold_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double warm_ms =
        std::chrono::duration<double, std::milli>(t3 - t2).count();
    const double n = static_cast<double>(cold.size());

    heading("analysis cache: cold vs warm sweep (same pipeline, run twice)");
    row("cold sweep", fmt(cold_ms, " ms"));
    row("cold throughput", fmt(n / (cold_ms / 1000.0), " contracts/s"));
    row("warm sweep", fmt(warm_ms, " ms"));
    row("warm throughput", fmt(n / (warm_ms / 1000.0), " contracts/s"));
    row("warm speedup", fmt(cold_ms / std::max(warm_ms, 0.001), "x"));
    row("cache entries (distinct code hashes)",
        std::to_string(warm_stats.cache.entries));
    row("artifact hits / misses",
        std::to_string(warm_stats.cache.hits()) + " / " +
            std::to_string(warm_stats.cache.misses()));
    row("pair cache hits / misses / waits",
        std::to_string(warm_stats.pair_cache_hits) + " / " +
            std::to_string(warm_stats.pair_cache_misses) + " / " +
            std::to_string(warm_stats.pair_cache_waits));
    row("phase times cold (fetch/proxy/pairs)",
        fmt(cold_stats.phase_fetch_ms) + " / " +
            fmt(cold_stats.phase_proxy_ms) + " / " +
            fmt(cold_stats.phase_pairs_ms, " ms"));
    row("phase times warm (fetch/proxy/pairs)",
        fmt(warm_stats.phase_fetch_ms) + " / " +
            fmt(warm_stats.phase_proxy_ms) + " / " +
            fmt(warm_stats.phase_pairs_ms, " ms"));

    // Seed-style baseline: cache OFF recomputes everything per run. Timed so
    // the headline "warm sweep vs seed baseline" speedup is measured here,
    // not asserted.
    core::PipelineConfig no_cache;
    no_cache.use_analysis_cache = false;
    core::AnalysisPipeline uncached(*pop.chain, &pop.sources, no_cache);
    const auto t4 = std::chrono::steady_clock::now();
    const auto baseline = uncached.run(pop.sweep_inputs());
    const auto t5 = std::chrono::steady_clock::now();
    const double baseline_ms =
        std::chrono::duration<double, std::milli>(t5 - t4).count();
    row("cache OFF (seed semantics) sweep", fmt(baseline_ms, " ms"));
    row("cache OFF throughput",
        fmt(n / (baseline_ms / 1000.0), " contracts/s"));
    row("warm speedup vs cache OFF",
        fmt(baseline_ms / std::max(warm_ms, 0.001), "x"));

    // Determinism spot-checks: warm == cold, and cache ON == cache OFF.
    bool warm_identical = warm.size() == cold.size();
    for (std::size_t i = 0; warm_identical && i < warm.size(); ++i) {
      warm_identical = warm[i] == cold[i];
    }
    bool cache_identical = baseline.size() == cold.size();
    for (std::size_t i = 0; cache_identical && i < baseline.size(); ++i) {
      cache_identical = baseline[i] == cold[i];
    }
    row("warm results bit-identical to cold", warm_identical ? "yes" : "NO");
    row("cache ON bit-identical to cache OFF",
        cache_identical ? "yes" : "NO");
    results.set("cold_sweep_ms", cold_ms);
    results.set("warm_sweep_ms", warm_ms);
    results.set("warm_speedup_x", cold_ms / std::max(warm_ms, 0.001));
    results.set("cache_off_ms", baseline_ms);
    results.set("warm_vs_cache_off_x",
                baseline_ms / std::max(warm_ms, 0.001));
  }

  // Ablation: the hot-path raw-speed pass — coalescing archive reads plus
  // the selector-hash memo. A cold sweep probes each account at distinct
  // heights, so the coalescer's win shows on *repeat* sweeps over live
  // chain state (re-sweeps, durable-sweep resumes): the sealed-height
  // interval cache answers the second sweep's probes without touching the
  // backend. Both legs run the same pipeline twice and compare the second
  // sweep's process-wide backend-counter deltas.
  {
    const auto counter_value = [](const char* name) -> std::uint64_t {
      const auto snap = obs::Registry::global().snapshot();
      const auto it = snap.counters.find(name);
      return it == snap.counters.end() ? 0 : it->second;
    };
    constexpr const char* kStorageCalls = "chain.archive.get_storage_at_calls";
    constexpr const char* kKeccak = "crypto.keccak.invocations";

    // OFF leg: coalescer and selector memo disabled — the second sweep pays
    // the full backend price again.
    crypto::set_selector_memo_enabled(false);
    core::PipelineConfig off_cfg;
    off_cfg.coalesce_archive_reads = false;
    core::AnalysisPipeline off_pipe(*pop.chain, &pop.sources, off_cfg);
    const auto off1 = off_pipe.run(pop.sweep_inputs());
    const std::uint64_t storage_base_off = counter_value(kStorageCalls);
    const std::uint64_t keccak_base_off = counter_value(kKeccak);
    const auto t0 = std::chrono::steady_clock::now();
    const auto off2 = off_pipe.run(pop.sweep_inputs());
    const auto t1 = std::chrono::steady_clock::now();
    const std::uint64_t storage_off =
        counter_value(kStorageCalls) - storage_base_off;
    const std::uint64_t keccak_off = counter_value(kKeccak) - keccak_base_off;
    const double off_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    // ON leg: production defaults — coalescer on, selector memo on (cleared
    // first so the first sweep warms it from scratch).
    crypto::set_selector_memo_enabled(true);
    crypto::clear_selector_memo();
    core::AnalysisPipeline on_pipe(*pop.chain, &pop.sources);
    const auto on1 = on_pipe.run(pop.sweep_inputs());
    const std::uint64_t storage_base_on = counter_value(kStorageCalls);
    const std::uint64_t keccak_base_on = counter_value(kKeccak);
    const auto t2 = std::chrono::steady_clock::now();
    const auto on2 = on_pipe.run(pop.sweep_inputs());
    const auto t3 = std::chrono::steady_clock::now();
    const std::uint64_t storage_on =
        counter_value(kStorageCalls) - storage_base_on;
    const std::uint64_t keccak_on = counter_value(kKeccak) - keccak_base_on;
    const double on_ms =
        std::chrono::duration<double, std::milli>(t3 - t2).count();

    const double storage_reduction =
        static_cast<double>(storage_off) /
        static_cast<double>(std::max<std::uint64_t>(storage_on, 1));
    const double keccak_reduction =
        static_cast<double>(keccak_off) /
        static_cast<double>(std::max<std::uint64_t>(keccak_on, 1));

    // The optimizations must be invisible in the output: every leg and every
    // repeat must produce bit-identical reports.
    bool identical = off1.size() == off2.size() &&
                     off1.size() == on1.size() && off1.size() == on2.size();
    for (std::size_t i = 0; identical && i < off1.size(); ++i) {
      identical =
          off1[i] == off2[i] && off1[i] == on1[i] && off1[i] == on2[i];
    }

    heading("ablation: read coalescer + selector memo (repeat sweep)");
    row("2nd sweep backend getStorageAt, coalescer OFF",
        std::to_string(storage_off));
    row("2nd sweep backend getStorageAt, coalescer ON",
        std::to_string(storage_on));
    row("storage-read reduction", fmt(storage_reduction, "x"));
    row("2nd sweep keccak invocations, memo OFF", std::to_string(keccak_off));
    row("2nd sweep keccak invocations, memo ON", std::to_string(keccak_on));
    row("keccak reduction", fmt(keccak_reduction, "x"));
    row("2nd sweep wall OFF / ON",
        fmt(off_ms) + " / " + fmt(on_ms, " ms"));
    row("all four sweeps bit-identical", identical ? "yes" : "NO");
    if (const auto* coalescer = on_pipe.coalescing_node()) {
      const auto s = coalescer->stats();
      row("coalescer exact / interval hits / misses",
          std::to_string(s.exact_hits) + " / " +
              std::to_string(s.interval_hits) + " / " +
              std::to_string(s.misses));
    }
    results.set("sweep2_storage_calls_off", static_cast<double>(storage_off));
    results.set("sweep2_storage_calls_on", static_cast<double>(storage_on));
    results.set("coalesce_storage_reduction_x", storage_reduction);
    results.set("sweep2_keccak_off", static_cast<double>(keccak_off));
    results.set("sweep2_keccak_on", static_cast<double>(keccak_on));
    results.set("selector_memo_keccak_reduction_x", keccak_reduction);
    results.set("raw_speed_sweeps_identical", identical ? 1.0 : 0.0);
  }
  results.write();
}

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  macro_section();
  return 0;
}
