// §6.1 reproduction: performance. Microbenchmarks (google-benchmark) for
// every hot path — proxy checks, selector extraction, collision checks,
// keccak, the interpreter — plus a macro section reporting the paper's
// headline metrics: ms per proxy check, contracts/second, getStorageAt
// calls per proxy, and the bytecode-dedup ablation.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "chain/archive_node.h"
#include "core/function_collision.h"
#include "core/logic_finder.h"
#include "core/proxy_detector.h"
#include "core/selector_extractor.h"
#include "core/selector_grinder.h"
#include "core/storage_collision.h"
#include "crypto/keccak.h"
#include "datagen/contract_factory.h"
#include "evm/disassembler.h"

namespace {

using namespace proxion;
using chain::Blockchain;
using datagen::ContractFactory;
using evm::Bytes;
using evm::U256;

struct PerfWorld {
  Blockchain chain;
  evm::Address minimal_proxy, slot_proxy, token, logic, honeypot_proxy,
      honeypot_logic, audius_proxy, audius_logic;

  PerfWorld() {
    const auto deployer = evm::Address::from_label("perf.deployer");
    logic = chain.deploy_runtime(deployer, ContractFactory::token_contract(1));
    minimal_proxy =
        chain.deploy_runtime(deployer, ContractFactory::minimal_proxy(logic));
    slot_proxy =
        chain.deploy_runtime(deployer, ContractFactory::eip1967_proxy());
    // Initialize the slot deep inside history so Algorithm 1 has a real
    // change point to binary-search for.
    chain.mine_until(10'000);
    chain.set_storage(slot_proxy, ContractFactory::eip1967_slot(),
                      logic.to_word());
    token = chain.deploy_runtime(deployer, ContractFactory::token_contract(2));
    honeypot_logic = chain.deploy_runtime(
        deployer, ContractFactory::honeypot_logic(0xdf4a3106));
    honeypot_proxy = chain.deploy_runtime(
        deployer, ContractFactory::honeypot_proxy(U256{1}, 0xdf4a3106));
    chain.set_storage(honeypot_proxy, U256{1}, honeypot_logic.to_word());
    audius_logic =
        chain.deploy_runtime(deployer, ContractFactory::audius_style_logic());
    audius_proxy =
        chain.deploy_runtime(deployer, ContractFactory::audius_style_proxy());
    chain.set_storage(audius_proxy, U256{1}, audius_logic.to_word());
    chain.mine_until(50'000);  // deep history for Algorithm 1
  }
};

PerfWorld& world() {
  static PerfWorld w;
  return w;
}

void BM_Keccak256_32B(benchmark::State& state) {
  std::vector<std::uint8_t> data(32, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::keccak256(data));
  }
}
BENCHMARK(BM_Keccak256_32B);

void BM_Keccak256_1KiB(benchmark::State& state) {
  std::vector<std::uint8_t> data(1024, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::keccak256(data));
  }
}
BENCHMARK(BM_Keccak256_1KiB);

void BM_Disassemble_Token(benchmark::State& state) {
  const Bytes code = ContractFactory::token_contract(1);
  for (auto _ : state) {
    evm::Disassembly dis(code);
    benchmark::DoNotOptimize(dis.instructions().size());
  }
}
BENCHMARK(BM_Disassemble_Token);

void BM_ProxyCheck_MinimalProxy(benchmark::State& state) {
  auto& w = world();
  core::ProxyDetector detector(w.chain);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.analyze(w.minimal_proxy).verdict);
  }
}
BENCHMARK(BM_ProxyCheck_MinimalProxy);

void BM_ProxyCheck_SlotProxy(benchmark::State& state) {
  auto& w = world();
  core::ProxyDetector detector(w.chain);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.analyze(w.slot_proxy).verdict);
  }
}
BENCHMARK(BM_ProxyCheck_SlotProxy);

void BM_ProxyCheck_NonProxyPrefiltered(benchmark::State& state) {
  // The §4.1 prefilter pays off: a non-proxy without DELEGATECALL never
  // reaches emulation.
  auto& w = world();
  core::ProxyDetector detector(w.chain);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.analyze(w.token).verdict);
  }
}
BENCHMARK(BM_ProxyCheck_NonProxyPrefiltered);

void BM_SelectorExtraction_Pattern(benchmark::State& state) {
  const Bytes code = ContractFactory::token_contract(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::extract_selectors(code).size());
  }
}
BENCHMARK(BM_SelectorExtraction_Pattern);

void BM_SelectorExtraction_Naive(benchmark::State& state) {
  const Bytes code = ContractFactory::token_contract(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::extract_selectors_naive(code).size());
  }
}
BENCHMARK(BM_SelectorExtraction_Naive);

void BM_FunctionCollisionCheck(benchmark::State& state) {
  auto& w = world();
  const Bytes proxy_code = w.chain.get_code(w.honeypot_proxy);
  const Bytes logic_code = w.chain.get_code(w.honeypot_logic);
  core::FunctionCollisionDetector detector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        detector
            .detect(w.honeypot_proxy, proxy_code, w.honeypot_logic,
                    logic_code)
            .has_collision());
  }
}
BENCHMARK(BM_FunctionCollisionCheck);

void BM_StorageProfile_AudiusLogic(benchmark::State& state) {
  const Bytes code = ContractFactory::audius_style_logic();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::profile_storage(code).accesses.size());
  }
}
BENCHMARK(BM_StorageProfile_AudiusLogic);

void BM_StorageCollisionCheck_WithVerification(benchmark::State& state) {
  auto& w = world();
  const Bytes proxy_code = w.chain.get_code(w.audius_proxy);
  const Bytes logic_code = w.chain.get_code(w.audius_logic);
  core::StorageCollisionDetector detector(w.chain);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        detector.detect(w.audius_proxy, proxy_code, w.audius_logic, logic_code)
            .has_verified_exploit());
  }
}
BENCHMARK(BM_StorageCollisionCheck_WithVerification);

void BM_SelectorGrind_HashRate(benchmark::State& state) {
  // §2.3: the paper ground ~600M prototype hashes in 1.5h (~110k/s) on a
  // laptop. This measures our prototypes-hashed-per-second.
  std::uint64_t i = 0;
  for (auto _ : state) {
    core::GrindConfig config;
    config.match_bits = 32;
    config.max_attempts = 1000;
    config.prefix = "impl" + std::to_string(i++) + "_";
    benchmark::DoNotOptimize(grind_selector(0xdf4a3106, config).has_value());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000);
}
BENCHMARK(BM_SelectorGrind_HashRate);

void BM_Algorithm1_BinarySearch(benchmark::State& state) {
  auto& w = world();
  core::ProxyDetector pd(w.chain);
  const auto report = pd.analyze(w.slot_proxy);
  chain::ArchiveNode node(w.chain);
  core::LogicFinder finder(node);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        finder.find(w.slot_proxy, report).logic_addresses.size());
  }
}
BENCHMARK(BM_Algorithm1_BinarySearch);

void macro_section() {
  using namespace proxion::bench;
  std::printf("\n---- macro metrics (paper §6.1: 6.4 ms/proxy-check = 156.3 "
              "contracts/s;\n      6.7 ms/function-collision check; ~26 "
              "getStorageAt calls/proxy; dedup speedup) ----\n");

  auto& pop = population();

  // Throughput including dedup (the production configuration).
  {
    core::AnalysisPipeline pipeline(*pop.chain, &pop.sources);
    const auto t0 = std::chrono::steady_clock::now();
    const auto reports = pipeline.run(pop.sweep_inputs());
    const auto t1 = std::chrono::steady_clock::now();
    auto stats = pipeline.summarize(reports);
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double per_contract = ms / static_cast<double>(reports.size());
    heading("full pipeline (dedup ON, collisions ON)");
    row("contracts analyzed", std::to_string(reports.size()));
    row("total wall time", fmt(ms, " ms"));
    row("per contract", fmt(per_contract, " ms"));
    row("throughput", fmt(1000.0 / per_contract, " contracts/s"));
    std::uint64_t slot_proxies = 0, calls = 0;
    for (const auto& r : reports) {
      if (r.proxy.is_proxy() &&
          r.proxy.logic_source == core::LogicSource::kStorageSlot) {
        ++slot_proxies;
        calls += r.logic_history.api_calls;
      }
    }
    if (slot_proxies != 0) {
      row("getStorageAt calls per slot-proxy",
          fmt(static_cast<double>(calls) / static_cast<double>(slot_proxies)));
    }
  }

  // Ablation: dedup OFF (every clone re-analyzed, §6.1's bottleneck).
  {
    core::PipelineConfig config;
    config.dedup_by_code_hash = false;
    config.detect_collisions = false;
    config.find_logic_history = false;
    core::AnalysisPipeline pipeline(*pop.chain, &pop.sources, config);
    const auto t0 = std::chrono::steady_clock::now();
    const auto reports = pipeline.run(pop.sweep_inputs());
    const auto t1 = std::chrono::steady_clock::now();
    const double ms_no_dedup =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    config.dedup_by_code_hash = true;
    core::AnalysisPipeline pipeline2(*pop.chain, &pop.sources, config);
    const auto t2 = std::chrono::steady_clock::now();
    const auto reports2 = pipeline2.run(pop.sweep_inputs());
    const auto t3 = std::chrono::steady_clock::now();
    const double ms_dedup =
        std::chrono::duration<double, std::milli>(t3 - t2).count();

    heading("ablation: bytecode-hash dedup (proxy detection only)");
    row("dedup OFF", fmt(ms_no_dedup, " ms"));
    row("dedup ON", fmt(ms_dedup, " ms"));
    row("speedup", fmt(ms_no_dedup / std::max(ms_dedup, 0.001), "x"));
    (void)reports;
    (void)reports2;
  }
}

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  macro_section();
  return 0;
}
