// Chaos-recovery bench: what a power cut costs. Runs the durable sweep
// through the fault-injecting model filesystem, fault-free first (boundary
// census + baseline), then cuts power at a sample of mutating-op boundaries
// and measures heal + reboot + resume time — asserting every resumed sweep
// is verdict-identical to the fault-free run and never recomputes committed
// work. Headline numbers are merged into BENCH_results.json (the chaos CI
// job gates on them).
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_results.h"
#include "core/pipeline.h"
#include "store/durable_sweep.h"
#include "store/journal.h"
#include "util/vfs_fault.h"

namespace {

using namespace proxion;
using namespace proxion::bench;

constexpr char kJournal[] = "chaos/bench.journal";

double time_ms(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// The deterministic aggregates two sweeps of the same world must agree on.
bool same_verdicts(const core::LandscapeStats& a, const core::LandscapeStats& b) {
  return a.total_contracts == b.total_contracts && a.proxies == b.proxies &&
         a.hidden_proxies == b.hidden_proxies &&
         a.unique_proxy_codehashes == b.unique_proxy_codehashes &&
         a.function_collisions == b.function_collisions &&
         a.storage_collisions == b.storage_collisions &&
         a.exploitable_storage_collisions == b.exploitable_storage_collisions &&
         a.by_standard == b.by_standard &&
         a.upgrade_histogram == b.upgrade_histogram &&
         a.quarantined == b.quarantined;
}

store::DurableSweepConfig sweep_config(util::Vfs& vfs) {
  store::DurableSweepConfig sc;
  sc.journal_path = kJournal;
  sc.shard_size = 512;
  sc.vfs = &vfs;
  return sc;
}

}  // namespace

int main() {
  BenchResults results("bench_chaos");
  auto& pop = population();
  const auto inputs = pop.sweep_inputs();
  core::PipelineConfig config;
  std::printf("chaos-recovery bench over %zu contracts (shard size 512)\n",
              inputs.size());

  // ---- fault-free reference: baseline timing + the boundary census -------
  util::FaultInjectingVfs ref_vfs;
  core::AnalysisPipeline ref_pipeline(*pop.chain, &pop.sources, config);
  store::DurableSweep ref_sweep(ref_pipeline, *pop.chain, &pop.sources,
                                sweep_config(ref_vfs));
  store::DurableSweepResult ref;
  const double faultfree_ms = time_ms([&] { ref = ref_sweep.run(inputs); });
  if (!ref.error.empty() || !ref.complete) {
    std::fprintf(stderr, "fault-free sweep failed: %s\n", ref.error.c_str());
    return 1;
  }
  const std::uint64_t boundaries = ref_vfs.mutating_ops();
  const double journal_mb =
      static_cast<double>(ref_vfs.peek(kJournal)->size()) / 1e6;

  heading("fault-free durable sweep (model filesystem)");
  row("wall time", fmt(faultfree_ms, " ms"));
  row("journal size", fmt(journal_mb, " MB"));
  row("power-cut boundaries (mutating ops)",
      std::to_string(boundaries));
  results.set("chaos_faultfree_ms", faultfree_ms);
  results.set("chaos_journal_mb", journal_mb);
  results.set("chaos_boundaries", static_cast<double>(boundaries));

  // ---- power-cut sample: cut, reboot, resume, verify ----------------------
  const std::size_t samples = boundaries < 8 ? boundaries : 8;
  double sum_cut_ms = 0, sum_resume_ms = 0;
  std::uint64_t sum_replayed = 0, sum_recomputed = 0;
  bool all_identical = true;
  bool committed_recomputed = false;
  for (std::size_t s = 0; s < samples; ++s) {
    const std::uint64_t b = boundaries * s / samples;
    util::FaultVfsConfig cfg;
    cfg.power_cut_at = static_cast<std::int64_t>(b);
    util::FaultInjectingVfs vfs(cfg);
    core::AnalysisPipeline p(*pop.chain, &pop.sources, config);
    store::DurableSweep doomed(p, *pop.chain, &pop.sources, sweep_config(vfs));
    sum_cut_ms += time_ms([&] {
      try {
        (void)doomed.run(inputs);
      } catch (const util::PowerCutException&) {
      }
    });
    vfs.heal();
    vfs.reboot();
    const auto manifest =
        store::load_manifest(store::manifest_path_for(kJournal), vfs);
    const std::uint64_t committed =
        manifest ? manifest->contracts_committed : 0;

    core::AnalysisPipeline p2(*pop.chain, &pop.sources, config);
    store::DurableSweep healer(p2, *pop.chain, &pop.sources, sweep_config(vfs));
    store::DurableSweepResult res;
    sum_resume_ms += time_ms([&] { res = healer.resume(inputs); });
    all_identical = all_identical && res.error.empty() && res.complete &&
                    same_verdicts(res.stats, ref.stats);
    committed_recomputed = committed_recomputed || res.replayed < committed;
    sum_replayed += res.replayed;
    sum_recomputed += res.recomputed;
  }
  const double n = static_cast<double>(samples);

  heading("power cut at sampled boundaries + reboot + resume");
  row("boundaries sampled", std::to_string(samples));
  row("cut run (mean)", fmt(sum_cut_ms / n, " ms"));
  row("resume to completion (mean)", fmt(sum_resume_ms / n, " ms"));
  row("replayed per resume (mean)",
      fmt(static_cast<double>(sum_replayed) / n));
  row("recomputed per resume (mean)",
      fmt(static_cast<double>(sum_recomputed) / n));
  row("all resumes verdict-identical", all_identical ? "yes" : "NO");
  row("committed work recomputed", committed_recomputed ? "SOME" : "none");
  results.set("chaos_cut_ms_mean", sum_cut_ms / n);
  results.set("chaos_resume_ms_mean", sum_resume_ms / n);
  results.set("chaos_sweeps_identical", all_identical ? 1.0 : 0.0);
  results.set("chaos_zero_recompute",
              committed_recomputed ? 0.0 : 1.0);

  results.write();
  return all_identical && !committed_recomputed ? 0 : 1;
}
