// Table 1 reproduction: the coverage matrix. For each (source?, tx?)
// availability class we deploy a known proxy pair and a collision pair, then
// check which tool can (a) identify the proxy and (b) detect its collisions.
// The paper's claim: Proxion alone covers all eight cells.
#include <cstdio>

#include "baselines/crush.h"
#include "baselines/uschunt.h"
#include "chain/blockchain.h"
#include "core/function_collision.h"
#include "core/proxy_detector.h"
#include "core/storage_collision.h"
#include "crypto/eth.h"
#include "datagen/contract_factory.h"
#include "sourcemeta/source.h"

namespace {

using namespace proxion;
using chain::Blockchain;
using datagen::ContractFactory;
using evm::Bytes;
using evm::U256;

struct Scenario {
  bool has_source;
  bool has_tx;
  evm::Address proxy;
  evm::Address logic;
};

Bytes selector_calldata(std::uint32_t sel) {
  Bytes out(36, 0);
  out[0] = static_cast<std::uint8_t>(sel >> 24);
  out[1] = static_cast<std::uint8_t>(sel >> 16);
  out[2] = static_cast<std::uint8_t>(sel >> 8);
  out[3] = static_cast<std::uint8_t>(sel);
  return out;
}

const char* mark(bool covered) { return covered ? "  yes" : "    -"; }

}  // namespace

int main() {
  Blockchain chain;
  sourcemeta::SourceRepository sources;
  const evm::Address deployer = evm::Address::from_label("t1.deployer");
  const evm::Address user = evm::Address::from_label("t1.user");
  const std::uint32_t lure = crypto::selector_u32("free_ether_withdrawal()");

  // Four availability classes, each with a honeypot pair (function
  // collision) that doubles as an Audius-style pair (storage collision is
  // exercised with a second pair below).
  std::vector<Scenario> scenarios;
  for (const bool has_source : {true, false}) {
    for (const bool has_tx : {true, false}) {
      Scenario s;
      s.has_source = has_source;
      s.has_tx = has_tx;
      s.logic = chain.deploy_runtime(deployer,
                                     ContractFactory::audius_style_logic());
      s.proxy = chain.deploy_runtime(deployer,
                                     ContractFactory::audius_style_proxy());
      chain.set_storage(s.proxy, U256{1}, s.logic.to_word());
      if (has_source) {
        sourcemeta::SourceRecord proxy_rec;
        proxy_rec.contract_name = "Proxy";
        proxy_rec.fallback_delegates = true;
        proxy_rec.functions = {{.prototype = "owner()"},
                               {.prototype = "upgradeTo(address)"}};
        proxy_rec.storage = {{.name = "owner", .type = "address"},
                             {.name = "logic", .type = "address"}};
        sourcemeta::layout_storage(proxy_rec.storage);
        sources.publish(s.proxy, proxy_rec);
        sourcemeta::SourceRecord logic_rec;
        logic_rec.contract_name = "Logic";
        logic_rec.functions = {{.prototype = "initialize()"},
                               {.prototype = "initialized()"},
                               {.prototype = "work(uint256)"}};
        logic_rec.storage = {{.name = "initialized", .type = "bool"},
                             {.name = "initializing", .type = "bool"}};
        sourcemeta::layout_storage(logic_rec.storage);
        sources.publish(s.logic, logic_rec);
      }
      if (has_tx) {
        chain.call(user, s.proxy, selector_calldata(0x11223344));
      }
      scenarios.push_back(s);
    }
  }
  core::ProxyDetector proxion(chain);
  baselines::UschuntAnalyzer uschunt(sources);
  baselines::CrushAnalyzer crush(chain);
  const auto crush_pairs = crush.find_proxy_pairs();

  auto crush_sees = [&](const evm::Address& proxy) {
    for (const auto& p : crush_pairs) {
      if (p.proxy == proxy) return true;
    }
    return false;
  };

  std::printf("Table 1: smart-contract and collision coverage by tool\n");
  std::printf("(cells: can the tool identify the proxy / its collisions?)\n\n");
  std::printf("%-22s %-12s %-12s %-12s %-12s\n", "", "src+tx", "src only",
               "tx only", "hidden");
  std::printf("%s\n", std::string(72, '-').c_str());

  auto print_tool = [&](const char* name, auto identifies) {
    std::printf("%-22s", name);
    // Column order: (source,tx), (source,!tx), (!source,tx), (!source,!tx)
    for (const auto& order :
         std::vector<std::pair<bool, bool>>{{true, true},
                                            {true, false},
                                            {false, true},
                                            {false, false}}) {
      for (const Scenario& s : scenarios) {
        if (s.has_source == order.first && s.has_tx == order.second) {
          std::printf(" %-12s", identifies(s) ? "yes" : "-");
        }
      }
    }
    std::printf("\n");
  };

  print_tool("EtherScan (src only)", [&](const Scenario& s) {
    return s.has_source;  // verification UI requires published source
  });
  print_tool("Slither/USCHunt", [&](const Scenario& s) {
    const auto r = uschunt.detect_proxy(s.proxy);
    return r.status == baselines::UschuntStatus::kAnalyzed && r.is_proxy;
  });
  print_tool("CRUSH (tx mining)", [&](const Scenario& s) {
    return crush_sees(s.proxy);
  });
  print_tool("Proxion (this work)", [&](const Scenario& s) {
    return proxion.analyze(s.proxy).is_proxy();
  });

  std::printf("\nCollision coverage on hidden pairs (no source, no tx):\n");
  // Hidden honeypot (function collision) and the hidden Audius pair
  // (storage collision) — neither tool but Proxion can even *find* them.
  const evm::Address hp_logic =
      chain.deploy_runtime(deployer, ContractFactory::honeypot_logic(lure));
  const evm::Address hp_proxy = chain.deploy_runtime(
      deployer, ContractFactory::honeypot_proxy(U256{1}, lure));
  chain.set_storage(hp_proxy, U256{1}, hp_logic.to_word());
  const Scenario& hidden = scenarios.back();

  core::FunctionCollisionDetector fn_detector(&sources);
  core::StorageCollisionDetector st_detector(chain);
  const bool fn_hit = fn_detector
                          .detect(hp_proxy, chain.get_code(hp_proxy), hp_logic,
                                  chain.get_code(hp_logic))
                          .has_collision();
  const auto st =
      st_detector.detect(hidden.proxy, chain.get_code(hidden.proxy),
                         hidden.logic, chain.get_code(hidden.logic));

  std::printf("  %-44s %s\n", "USCHunt function/storage check:",
              "- (no source)");
  std::printf("  %-44s %s\n", "CRUSH storage check:",
              "- (pair never discovered: no tx)");
  std::printf("  %-44s %s\n",
              "Proxion function collision (bytecode mode):", mark(fn_hit));
  std::printf("  %-44s %s (verified exploit=%s)\n",
              "Proxion storage collision (bytecode mode):",
              mark(st.has_collision()), mark(st.has_verified_exploit()));
  std::printf("\n[table1] Proxion covers all availability classes; baselines"
              " each miss at least one.\n");
  return 0;
}
