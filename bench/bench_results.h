// Machine-readable bench output: a tiny merge-on-write JSON store shared by
// every bench binary. Each binary owns one top-level object keyed by its
// name; metrics are flat numeric leaves. On write() the existing file is
// parsed (line-based — the file is only ever produced by this writer, so the
// shape is known), this binary's section is replaced, everything else is
// preserved, and the whole document is rewritten sorted. No JSON library is
// involved on purpose: the container has none, and the format is trivial.
//
// Default path is BENCH_results.json in the working directory; override with
// the PROXION_BENCH_RESULTS environment variable.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

namespace proxion::bench {

class BenchResults {
 public:
  explicit BenchResults(std::string binary) : binary_(std::move(binary)) {}

  void set(const std::string& metric, double value) {
    metrics_[metric] = value;
  }

  static std::string path() {
    if (const char* env = std::getenv("PROXION_BENCH_RESULTS")) return env;
    return "BENCH_results.json";
  }

  /// Merge this binary's metrics into the results file and rewrite it.
  void write() const {
    auto document = parse_file(path());
    document[binary_] = metrics_;

    std::ofstream out(path(), std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "bench_results: cannot write %s\n",
                   path().c_str());
      return;
    }
    out << "{\n";
    std::size_t section = 0;
    for (const auto& [name, metrics] : document) {
      out << "  \"" << name << "\": {\n";
      std::size_t entry = 0;
      for (const auto& [metric, value] : metrics) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.6g", value);
        out << "    \"" << metric << "\": " << buf
            << (++entry == metrics.size() ? "\n" : ",\n");
      }
      out << "  }" << (++section == document.size() ? "\n" : ",\n");
    }
    out << "}\n";
    std::printf("\nbench results merged into %s\n", path().c_str());
  }

 private:
  using Section = std::map<std::string, double>;

  /// Line-based reader for the writer's own output. Unknown lines are
  /// ignored, so a corrupt file degrades to "start fresh" per section.
  static std::map<std::string, Section> parse_file(const std::string& file) {
    std::map<std::string, Section> document;
    std::ifstream in(file);
    if (!in) return document;
    std::string line, current;
    while (std::getline(in, line)) {
      const auto q1 = line.find('"');
      if (q1 == std::string::npos) continue;
      const auto q2 = line.find('"', q1 + 1);
      if (q2 == std::string::npos) continue;
      const std::string key = line.substr(q1 + 1, q2 - q1 - 1);
      const auto colon = line.find(':', q2);
      if (colon == std::string::npos) continue;
      const std::string rest = line.substr(colon + 1);
      if (rest.find('{') != std::string::npos) {
        current = key;
      } else if (!current.empty()) {
        document[current][key] = std::strtod(rest.c_str(), nullptr);
      }
    }
    return document;
  }

  std::string binary_;
  Section metrics_;
};

}  // namespace proxion::bench
