// What bytecode-only layout inference buys the collision phase: sweeps the
// bench population (augmented with keccak-family-bearing proxy/logic pairs)
// twice with infer_layout on — once with the sourcemeta repository attached
// (declared layouts preferred for source-covered pairs) and once
// source-blind (every family comparison forced through bytecode inference).
// Reports layout coverage (inferred / reliable), the source-free pair
// coverage ratio, and the family-verdict drift between the two modes.
//
// Acceptance (asserted here and re-checked by tools/bench_smoke.sh): the
// source-free sweep family-checks >= 90% of the pairs the source-attached
// sweep checks, with zero family-verdict diffs on the overlap.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_results.h"
#include "core/pipeline.h"
#include "datagen/contract_factory.h"

namespace {

using namespace proxion;
using namespace proxion::bench;

/// The bench population's sweep inputs plus EIP-1967 pairs whose logic
/// carries mapping/array slot families and packed members — the layouts the
/// inference tier exists to recover — so family comparisons with real
/// content are in every measured sweep.
std::vector<core::SweepInput>& augmented_inputs() {
  static std::vector<core::SweepInput> inputs = [] {
    using datagen::ContractFactory;
    auto& pop = population();
    auto all = pop.sweep_inputs();
    const evm::Address deployer =
        evm::Address::from_label("bench.layout.deployer");
    const auto add_pair = [&](const evm::Bytes& logic_code) {
      const evm::Address logic =
          pop.chain->deploy_runtime(deployer, logic_code);
      const evm::Address proxy = pop.chain->deploy_runtime(
          deployer, ContractFactory::eip1967_proxy());
      pop.chain->set_storage(proxy, ContractFactory::eip1967_slot(),
                             logic.to_word());
      all.push_back({.address = proxy, .year = 2023});
    };
    for (std::uint64_t salt = 0; salt < 8; ++salt) {
      add_pair(ContractFactory::mapping_token_contract(0x1a70 + salt));
    }
    add_pair(ContractFactory::packed_config_contract());
    return all;
  }();
  return inputs;
}

struct SweepSample {
  double wall_ms = 0.0;
  std::vector<core::ContractAnalysis> reports;
  core::LandscapeStats stats;
};

SweepSample sweep_once(bool with_sources) {
  auto& pop = population();
  core::PipelineConfig config;  // static tier + infer_layout default on
  core::AnalysisPipeline pipeline(
      *pop.chain, with_sources ? &pop.sources : nullptr, config);
  SweepSample s;
  const auto t0 = std::chrono::steady_clock::now();
  s.reports = pipeline.run(augmented_inputs());
  const auto t1 = std::chrono::steady_clock::now();
  s.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  s.stats = pipeline.summarize(s.reports);
  return s;
}

/// Best-of-N over fresh pipelines (cold caches), as in bench_static_tier.
SweepSample best_of(int n, bool with_sources) {
  SweepSample best = sweep_once(with_sources);
  for (int i = 1; i < n; ++i) {
    SweepSample s = sweep_once(with_sources);
    if (s.wall_ms < best.wall_ms) best = std::move(s);
  }
  return best;
}

}  // namespace

int main() {
  BenchResults results("bench_layout_inference");

  const SweepSample attached = best_of(3, true);
  const SweepSample free_mode = best_of(3, false);

  if (attached.reports.size() != free_mode.reports.size()) {
    std::fprintf(stderr, "sweep sizes diverged: %zu vs %zu\n",
                 attached.reports.size(), free_mode.reports.size());
    return 1;
  }

  // Overlap drift: contracts whose pairs were family-checked in BOTH modes
  // must reach the same family-collision verdict — declared layouts and
  // bytecode-inferred ones share the (base_slot, depth, path) identity
  // scheme, so agreement is the whole point, not a lucky accident.
  int verdict_diffs = 0;
  std::uint64_t overlap = 0;
  for (std::size_t i = 0; i < attached.reports.size(); ++i) {
    const auto& a = attached.reports[i];
    const auto& f = free_mode.reports[i];
    if (a.collision_pairs_family_checked == 0 ||
        f.collision_pairs_family_checked == 0) {
      continue;
    }
    ++overlap;
    if (a.family_collision != f.family_collision) ++verdict_diffs;
  }

  const double pairs_attached =
      static_cast<double>(attached.stats.collision_pairs_family_checked);
  const double pairs_free =
      static_cast<double>(free_mode.stats.collision_pairs_family_checked);
  const double coverage = pairs_attached == 0 ? 0 : pairs_free / pairs_attached;

  heading("layout inference: source-attached vs source-free (best of 3)");
  row("contracts swept", std::to_string(attached.reports.size()));
  row("sweep wall-clock attached", fmt(attached.wall_ms, " ms"));
  row("sweep wall-clock source-free", fmt(free_mode.wall_ms, " ms"));
  row("layouts inferred (unique blobs)",
      std::to_string(free_mode.stats.layout_inferred));
  row("layouts reliable",
      std::to_string(free_mode.stats.layout_reliable) + "  (" +
          pct(static_cast<double>(free_mode.stats.layout_reliable),
              static_cast<double>(free_mode.stats.layout_inferred)) +
          ")");

  heading("pair coverage & verdict drift");
  row("pairs family-checked, attached", fmt(pairs_attached));
  row("  of which source-free (no sourcemeta pair)",
      std::to_string(attached.stats.collision_pairs_source_free));
  row("pairs family-checked, source-free sweep", fmt(pairs_free));
  row("source-free coverage ratio (floor 0.90)", fmt(coverage));
  row("overlap contracts (checked in both)", std::to_string(overlap));
  row("family-verdict diffs on overlap (must be 0)",
      std::to_string(verdict_diffs));
  row("family collisions, attached",
      std::to_string(attached.stats.family_collisions));
  row("family collisions, source-free",
      std::to_string(free_mode.stats.family_collisions));

  results.set("layouts_inferred",
              static_cast<double>(free_mode.stats.layout_inferred));
  results.set("layouts_reliable",
              static_cast<double>(free_mode.stats.layout_reliable));
  results.set("pairs_family_checked_attached", pairs_attached);
  results.set("pairs_family_checked_source_free", pairs_free);
  results.set("source_free_coverage_ratio", coverage);
  results.set("family_verdict_diffs", static_cast<double>(verdict_diffs));
  results.set("family_collisions_attached",
              static_cast<double>(attached.stats.family_collisions));
  results.set("family_collisions_source_free",
              static_cast<double>(free_mode.stats.family_collisions));
  results.write();

  if (coverage < 0.90) {
    std::fprintf(stderr, "COVERAGE VIOLATED: source-free ratio %.3f < 0.90\n",
                 coverage);
    return 1;
  }
  if (verdict_diffs != 0) {
    std::fprintf(stderr, "EQUIVALENCE VIOLATED: %d family-verdict diffs\n",
                 verdict_diffs);
    return 1;
  }
  return 0;
}
