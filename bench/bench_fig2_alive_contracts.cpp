// Figure 2 reproduction: the cumulative number of alive contracts per year,
// broken down by (source code?, transactions?) availability. The paper's
// point: source-only tools see <20%, tx-mining tools ~53%, and the red
// "hidden" series (no source, no tx) is large and growing.
#include <cstdio>

#include "bench_common.h"
#include "datagen/population.h"

int main() {
  using namespace proxion;
  using namespace proxion::bench;

  const auto& pop = population();

  struct YearBuckets {
    std::uint64_t source_only = 0;
    std::uint64_t source_and_tx = 0;
    std::uint64_t tx_only = 0;
    std::uint64_t hidden = 0;
  };
  std::map<int, YearBuckets> per_year;
  for (const auto& c : pop.contracts) {
    YearBuckets& b = per_year[c.year];
    if (c.has_source && c.has_tx) ++b.source_and_tx;
    else if (c.has_source) ++b.source_only;
    else if (c.has_tx) ++b.tx_only;
    else ++b.hidden;
  }

  std::printf("Figure 2: accumulated alive contracts by availability class\n");
  std::printf("(paper: ~18%% have source, ~53%% have transactions; the "
              "hidden class is out of reach of all prior tools)\n\n");
  std::printf("  %-6s %-12s %-12s %-12s %-12s %-12s\n", "Year", "src only",
              "src+tx", "tx only", "hidden", "cumulative");
  std::printf("  %s\n", std::string(70, '-').c_str());

  YearBuckets cum;
  std::uint64_t cum_total = 0;
  for (int year = 2015; year <= 2023; ++year) {
    const YearBuckets& b = per_year[year];
    cum.source_only += b.source_only;
    cum.source_and_tx += b.source_and_tx;
    cum.tx_only += b.tx_only;
    cum.hidden += b.hidden;
    cum_total = cum.source_only + cum.source_and_tx + cum.tx_only + cum.hidden;
    std::printf("  %-6d %-12llu %-12llu %-12llu %-12llu %-12llu\n", year,
                static_cast<unsigned long long>(cum.source_only),
                static_cast<unsigned long long>(cum.source_and_tx),
                static_cast<unsigned long long>(cum.tx_only),
                static_cast<unsigned long long>(cum.hidden),
                static_cast<unsigned long long>(cum_total));
  }

  heading("final availability shares");
  const double total = static_cast<double>(cum_total);
  row("with source code (USCHunt/Slither scope)",
      pct(static_cast<double>(cum.source_only + cum.source_and_tx), total));
  row("with transactions (CRUSH/Salehi scope)",
      pct(static_cast<double>(cum.tx_only + cum.source_and_tx), total));
  row("hidden: no source AND no tx (Proxion-only)",
      pct(static_cast<double>(cum.hidden), total));
  std::printf("\n[fig2] expected shape: source <25%%, tx ~40-60%%, hidden a "
              "large growing remainder.\n");
  return 0;
}
