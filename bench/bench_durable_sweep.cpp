// Durable-sweep bench: what checkpointing costs and what it buys. Sections:
//   1. journaling overhead — a fresh durable sharded sweep vs the monolithic
//      pipeline over the same population (wall time + journal size);
//   2. kill + resume parity — stop after half the shards, resume, and check
//      the merged result is verdict-identical with zero recomputation of
//      committed contracts;
//   3. incremental fraction — upgrade ~1% of the slot-based proxies and
//      measure how much of the population the incremental pass re-analyzes
//      (target: the upgraded fraction, not the population);
//   4. bounded memory — peak-RSS growth of the streaming sweep at 1x vs 4x
//      population with a fixed shard size (the per-shard state, not the
//      population, should set the high-water mark).
// Headline numbers are merged into BENCH_results.json.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_results.h"
#include "core/pipeline.h"
#include "store/durable_sweep.h"
#include "store/journal.h"

namespace {

using namespace proxion;
using namespace proxion::bench;

double time_ms(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

std::string journal_path(const std::string& name) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "proxion_bench_sweep";
  fs::create_directories(dir);
  const fs::path p = dir / name;
  fs::remove(p);
  fs::remove(store::manifest_path_for(p.string()));
  return p.string();
}

/// The deterministic aggregates two sweeps of the same world must agree on.
bool same_verdicts(const core::LandscapeStats& a, const core::LandscapeStats& b) {
  return a.total_contracts == b.total_contracts && a.proxies == b.proxies &&
         a.hidden_proxies == b.hidden_proxies &&
         a.unique_proxy_codehashes == b.unique_proxy_codehashes &&
         a.function_collisions == b.function_collisions &&
         a.storage_collisions == b.storage_collisions &&
         a.exploitable_storage_collisions == b.exploitable_storage_collisions &&
         a.by_standard == b.by_standard &&
         a.upgrade_histogram == b.upgrade_histogram &&
         a.quarantined == b.quarantined;
}

/// VmHWM from /proc/self/status (kB); 0 when unavailable (non-Linux).
double peak_rss_kb() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr);
    }
  }
  return 0.0;
}

/// Resets the peak-RSS counter so each measured phase gets its own
/// high-water mark. Best effort: a kernel without CLEAR_REFS_MM_HIWATER_RSS
/// leaves the counter monotone and the bench reports deltas of 0.
void reset_peak_rss() {
  std::ofstream out("/proc/self/clear_refs");
  out << "5\n";
}

}  // namespace

int main() {
  BenchResults results("bench_durable_sweep");
  auto& pop = population();
  const auto inputs = pop.sweep_inputs();
  const std::size_t shard_size = 1'024;
  std::printf("durable-sweep bench over %zu contracts (shard size %zu)\n",
              inputs.size(), shard_size);

  // ---- 1. journaling overhead -------------------------------------------
  core::PipelineConfig config;
  core::AnalysisPipeline mono(*pop.chain, &pop.sources, config);
  core::LandscapeStats mono_stats;
  const double mono_ms =
      time_ms([&] { mono_stats = mono.summarize(mono.run(inputs)); });

  store::DurableSweepConfig sc;
  sc.journal_path = journal_path("overhead.journal");
  sc.shard_size = shard_size;
  core::AnalysisPipeline piped(*pop.chain, &pop.sources, config);
  store::DurableSweep durable(piped, *pop.chain, &pop.sources, sc);
  store::DurableSweepResult fresh;
  const double durable_ms = time_ms([&] { fresh = durable.run(inputs); });
  const double journal_mb =
      static_cast<double>(std::filesystem::file_size(sc.journal_path)) / 1e6;
  const double overhead_pct = (durable_ms - mono_ms) / mono_ms * 100.0;

  heading("checkpointing overhead (monolithic vs durable sharded)");
  row("monolithic pipeline.run", fmt(mono_ms, " ms"));
  row("durable sharded sweep", fmt(durable_ms, " ms"));
  row("overhead", fmt(overhead_pct, " %"));
  row("journal size", fmt(journal_mb, " MB"));
  row("verdicts identical", same_verdicts(fresh.stats, mono_stats) ? "yes" : "NO");
  results.set("monolithic_ms", mono_ms);
  results.set("durable_ms", durable_ms);
  results.set("journal_overhead_pct", overhead_pct);
  results.set("journal_mb", journal_mb);

  // ---- 2. kill + resume parity ------------------------------------------
  {
    store::DurableSweepConfig kc = sc;
    kc.journal_path = journal_path("kill.journal");
    kc.max_shards = (inputs.size() / shard_size) / 2 + 1;  // ~half the sweep
    core::AnalysisPipeline p(*pop.chain, &pop.sources, config);
    store::DurableSweep killed(p, *pop.chain, &pop.sources, kc);
    store::DurableSweepResult partial;
    const double phase1_ms = time_ms([&] { partial = killed.run(inputs); });

    kc.max_shards = 0;
    store::DurableSweep resumed(p, *pop.chain, &pop.sources, kc);
    store::DurableSweepResult merged;
    const double resume_ms = time_ms([&] { merged = resumed.resume(inputs); });

    heading("kill after half the shards + resume");
    row("phase 1 (killed)", fmt(phase1_ms, " ms"));
    row("resume pass", fmt(resume_ms, " ms"));
    row("replayed from journal", std::to_string(merged.replayed));
    row("recomputed by resume", std::to_string(merged.recomputed));
    row("committed work recomputed",
        merged.replayed == partial.recomputed ? "none" : "SOME");
    row("verdicts identical to monolithic",
        same_verdicts(merged.stats, mono_stats) ? "yes" : "NO");
    results.set("resume_phase1_ms", phase1_ms);
    results.set("resume_ms", resume_ms);
    results.set("resume_replayed", static_cast<double>(merged.replayed));
    results.set("resume_recomputed", static_cast<double>(merged.recomputed));
  }

  // ---- 3. incremental fraction after a ~1% upgrade wave ------------------
  {
    store::DurableSweepConfig ic = sc;
    ic.journal_path = journal_path("incremental.journal");
    core::AnalysisPipeline p(*pop.chain, &pop.sources, config);
    store::DurableSweep sweep(p, *pop.chain, &pop.sources, ic);
    sweep.run(inputs);

    const evm::U256 eip1967_slot = evm::U256::from_hex(
        "360894a13ba1a3210667c828492db98dca3e2076cc3735a920a3ca505d382bbc");
    evm::Address new_logic;
    for (const auto& c : pop.contracts) {
      if (c.archetype == datagen::Archetype::kToken) {
        new_logic = c.address;
        break;
      }
    }
    const std::size_t wave = inputs.size() / 100 + 1;  // ~1%
    std::size_t upgraded = 0;
    pop.chain->mine_block();
    for (const auto& c : pop.contracts) {
      if (upgraded >= wave) break;
      if (c.archetype != datagen::Archetype::kEip1967Proxy &&
          c.archetype != datagen::Archetype::kTransparentProxy) {
        continue;
      }
      if (c.logic_truth == new_logic) continue;
      pop.chain->set_storage(c.address, eip1967_slot, new_logic.to_word());
      ++upgraded;
    }
    pop.chain->mine_block();

    store::DurableSweepResult inc;
    const double inc_ms = time_ms([&] { inc = sweep.incremental(inputs); });
    const double frac = 100.0 * static_cast<double>(inc.recomputed) /
                        static_cast<double>(inputs.size());

    heading("incremental re-sweep after upgrading ~1% of slot proxies");
    row("upgraded proxies", std::to_string(upgraded));
    row("incremental pass", fmt(inc_ms, " ms"));
    row("re-analyzed", std::to_string(inc.recomputed) + " (" + fmt(frac, "%") +
                           " of population)");
    row("replayed from journal", std::to_string(inc.replayed));
    row("speedup vs full sweep", fmt(mono_ms / inc_ms, "x"));
    results.set("incremental_upgraded", static_cast<double>(upgraded));
    results.set("incremental_ms", inc_ms);
    results.set("incremental_reanalyzed", static_cast<double>(inc.recomputed));
    results.set("incremental_fraction_pct", frac);
    results.set("incremental_speedup", mono_ms / inc_ms);
  }

  // ---- 4. bounded memory: sharded+shed vs monolithic at 4x scale ---------
  {
    heading("peak-RSS above the fixture (shard size 512, shed between shards)");
    const std::uint32_t base_n = 2'500;
    auto sweep_delta_mb = [&](std::uint32_t n, bool sharded) {
      datagen::PopulationSpec spec;
      spec.total_contracts = n;
      datagen::Population world = datagen::PopulationGenerator().generate(spec);
      const auto world_inputs = world.sweep_inputs();
      core::AnalysisPipeline p(*world.chain, &world.sources, config);
      reset_peak_rss();
      const double before = peak_rss_kb();
      if (sharded) {
        store::DurableSweepConfig mc;
        mc.journal_path = journal_path("memory.journal");
        mc.shard_size = 512;
        store::DurableSweep(p, *world.chain, &world.sources, mc)
            .run(world_inputs);
      } else {
        p.summarize(p.run(world_inputs));
      }
      return (peak_rss_kb() - before) / 1024.0;
    };
    // The fingerprint/donor metadata is O(N) by design (32B+ per contract);
    // it is the per-contract *artifacts* — reports, code blobs, memo
    // entries — that the shard loop keeps bounded. So the claim under test
    // is relative: at 4x population the sharded sweep's high-water delta
    // must stay well under the monolithic pipeline's, which retains every
    // report and cache entry until summarize().
    const double sharded_1x = sweep_delta_mb(base_n, true);
    const double sharded_4x = sweep_delta_mb(4 * base_n, true);
    const double mono_4x = sweep_delta_mb(4 * base_n, false);
    row("sharded sweep, 1x population", fmt(sharded_1x, " MB peak delta"));
    row("sharded sweep, 4x population", fmt(sharded_4x, " MB peak delta"));
    row("monolithic run, 4x population", fmt(mono_4x, " MB peak delta"));
    const double vs_mono = mono_4x > 0 ? sharded_4x / mono_4x : 0.0;
    row("sharded / monolithic at 4x", fmt(vs_mono, "x (lower is better)"));
    results.set("rss_delta_sharded_1x_mb", sharded_1x);
    results.set("rss_delta_sharded_4x_mb", sharded_4x);
    results.set("rss_delta_monolithic_4x_mb", mono_4x);
    results.set("rss_sharded_vs_monolithic_at_4x", vs_mono);
  }

  results.write();
  return 0;
}
