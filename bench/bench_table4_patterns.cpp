// Table 4 reproduction: the proxy design-standard distribution (paper:
// EIP-1167 89.05%, EIP-1822 0.12%, EIP-1967 1.00%, others 9.83%) plus the
// documented diamond-proxy misses.
#include <cstdio>

#include "bench_common.h"
#include "datagen/population.h"

int main() {
  using namespace proxion;
  using namespace proxion::bench;
  using core::ProxyStandard;

  const auto& sweep = full_sweep();
  const auto& stats = sweep.stats;

  std::printf("Table 4: proxy contracts by design standard\n");
  std::printf("(paper: EIP-1167 89.05%% | EIP-1822 0.12%% | EIP-1967 1.00%% "
              "| others 9.83%%)\n\n");
  std::printf("  %-12s %-12s %-8s\n", "Standard", "# Proxies", "Ratio");
  std::printf("  %s\n", std::string(34, '-').c_str());
  const double total = static_cast<double>(stats.proxies);
  for (const auto standard :
       {ProxyStandard::kEip1167, ProxyStandard::kEip1822,
        ProxyStandard::kEip1967, ProxyStandard::kOther}) {
    const auto it = stats.by_standard.find(standard);
    const std::uint64_t count = it == stats.by_standard.end() ? 0 : it->second;
    std::printf("  %-12s %-12llu %-8s\n",
                std::string(core::to_string(standard)).c_str(),
                static_cast<unsigned long long>(count),
                pct(static_cast<double>(count), total).c_str());
  }

  // Diamond proxies: ground truth vs detection (the paper: "misses only a
  // few hundred of the diamond proxy contracts").
  const auto& pop = population();
  std::uint64_t diamonds_truth = 0, diamonds_detected = 0;
  for (std::size_t i = 0; i < pop.contracts.size(); ++i) {
    if (pop.contracts[i].archetype != datagen::Archetype::kDiamondProxy) {
      continue;
    }
    ++diamonds_truth;
    if (sweep.reports[i].proxy.is_proxy()) ++diamonds_detected;
  }
  heading("EIP-2535 diamond proxies (documented miss, §8.1)");
  row("diamond proxies in ground truth", std::to_string(diamonds_truth));
  row("detected by Proxion", std::to_string(diamonds_detected));

  heading("emulation outcomes (§7.1: 95.1% analyzed cleanly)");
  row("contracts analyzed", std::to_string(stats.total_contracts));
  row("emulation errors",
      std::to_string(stats.emulation_errors) + " (" +
          pct(static_cast<double>(stats.emulation_errors),
              static_cast<double>(stats.total_contracts)) +
          ")");
  std::printf("\n[table4] expected shape: minimal proxies dominate; diamonds "
              "are missed; error rate is low single digits.\n");
  return 0;
}
