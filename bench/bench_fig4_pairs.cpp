// Figure 4 reproduction: the cumulative number of (proxy, logic) pairs
// identified by Proxion per year, broken down by which side has verified
// source. The paper's point: the vast majority of proxies are bytecode-only
// while their logic contracts often do have source.
#include <cstdio>

#include "bench_common.h"
#include "datagen/population.h"

int main() {
  using namespace proxion;
  using namespace proxion::bench;

  const auto& sweep = full_sweep();

  struct Buckets {
    std::uint64_t both = 0;         // proxy + logic have source
    std::uint64_t logic_only = 0;   // only the logic side
    std::uint64_t proxy_only = 0;
    std::uint64_t neither = 0;
  };
  std::map<int, Buckets> per_year;
  for (const auto& r : sweep.reports) {
    if (!r.proxy.is_proxy() || r.logic_history.logic_addresses.empty()) {
      continue;
    }
    Buckets& b = per_year[r.year];
    if (r.has_source && r.logic_has_source) ++b.both;
    else if (r.logic_has_source) ++b.logic_only;
    else if (r.has_source) ++b.proxy_only;
    else ++b.neither;
  }

  std::printf("Figure 4: accumulated proxy/logic pairs by source "
              "availability\n(paper: ~90%% of proxy contracts lack source; "
              "~2M pairs have source on both sides)\n\n");
  std::printf("  %-6s %-12s %-14s %-14s %-14s %-10s\n", "Year", "both src",
              "logic only", "proxy only", "no source", "total");
  std::printf("  %s\n", std::string(74, '-').c_str());
  Buckets cum;
  for (int year = 2015; year <= 2023; ++year) {
    const Buckets& b = per_year[year];
    cum.both += b.both;
    cum.logic_only += b.logic_only;
    cum.proxy_only += b.proxy_only;
    cum.neither += b.neither;
    const std::uint64_t total =
        cum.both + cum.logic_only + cum.proxy_only + cum.neither;
    std::printf("  %-6d %-12llu %-14llu %-14llu %-14llu %-10llu\n", year,
                static_cast<unsigned long long>(cum.both),
                static_cast<unsigned long long>(cum.logic_only),
                static_cast<unsigned long long>(cum.proxy_only),
                static_cast<unsigned long long>(cum.neither),
                static_cast<unsigned long long>(total));
  }

  const double total = static_cast<double>(cum.both + cum.logic_only +
                                           cum.proxy_only + cum.neither);
  heading("final pair shares");
  row("proxy side lacks source",
      pct(static_cast<double>(cum.logic_only + cum.neither), total));
  row("hidden proxies among all proxies (no src, no tx)",
      std::to_string(sweep.stats.hidden_proxies));
  std::printf("\n[fig4] expected shape: the 'logic only' and 'no source' "
              "series dominate and accelerate after 2020.\n");
  return 0;
}
