// Fault-tolerance bench: what resilience costs when nothing is wrong, and
// what recovery costs when things are. Sections:
//   1. resilience overhead at 0% faults — the retry/breaker wrapper plus the
//      IArchiveNode virtual seam vs the raw in-process backend (target <2%);
//   2. recovery at 5/10/20% injected fault rates — wall time, retries, and
//      the bit-identity check (a faulty sweep with retries must produce
//      exactly the fault-free reports, with nothing quarantined);
//   3. outage + resume — retry budget exhausted on purpose, then the
//      checkpoint/resume pass after the backend "recovers".
// All headline numbers are merged into BENCH_results.json.
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_results.h"
#include "chain/archive_node.h"
#include "chain/fault_injection.h"
#include "core/pipeline.h"

namespace {

using namespace proxion;
using namespace proxion::bench;
using chain::FaultInjectingArchiveNode;
using chain::FaultProfile;

double time_ms(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// Best-of-N wall time for one full sweep under `config`; returns the last
/// run's reports through `out` so callers can compare results.
double best_sweep_ms(datagen::Population& pop, core::PipelineConfig config,
                     std::vector<core::ContractAnalysis>* out, int reps = 3) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    // A fresh pipeline per rep: cross-run caches must not turn later reps
    // into warm sweeps of earlier ones.
    core::AnalysisPipeline pipeline(*pop.chain, &pop.sources, config);
    std::vector<core::ContractAnalysis> reports;
    const double ms =
        time_ms([&] { reports = pipeline.run(pop.sweep_inputs()); });
    if (ms < best) best = ms;
    if (out != nullptr && r == reps - 1) *out = std::move(reports);
  }
  return best;
}

util::RetryPolicy bench_retry() {
  util::RetryPolicy p;
  p.base_delay_us = 1;  // keep the bench about work, not sleeping
  p.max_delay_us = 50;
  return p;
}

bool identical(const std::vector<core::ContractAnalysis>& a,
               const std::vector<core::ContractAnalysis>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

}  // namespace

int main() {
  BenchResults results("bench_fault_sweep");
  auto& pop = population();
  const auto inputs = pop.sweep_inputs();
  std::printf("fault-tolerance bench over %zu contracts\n", inputs.size());

  // ---- 1. resilience overhead at 0% faults ------------------------------
  std::vector<core::ContractAnalysis> raw_reports, guarded_reports;
  core::PipelineConfig raw_config;
  raw_config.enable_retries = false;
  const double raw_ms = best_sweep_ms(pop, raw_config, &raw_reports);

  core::PipelineConfig guarded_config;
  guarded_config.retry = bench_retry();
  const double guarded_ms = best_sweep_ms(pop, guarded_config,
                                          &guarded_reports);
  const double overhead_pct = (guarded_ms - raw_ms) / raw_ms * 100.0;

  heading("resilience overhead at 0% faults (best of 3)");
  row("raw backend (retries off)", fmt(raw_ms, " ms"));
  row("retry + breaker wrapper", fmt(guarded_ms, " ms"));
  row("overhead", fmt(overhead_pct, " % (target < 2%)"));
  row("results bit-identical", identical(raw_reports, guarded_reports)
                                   ? "yes"
                                   : "NO");
  results.set("sweep_raw_ms", raw_ms);
  results.set("sweep_guarded_ms", guarded_ms);
  results.set("overhead_pct_at_0_faults", overhead_pct);

  // ---- 2. recovery at 5/10/20% fault rates ------------------------------
  heading("recovery under injected faults (retries absorb everything)");
  for (const double rate : {0.05, 0.10, 0.20}) {
    chain::ArchiveNode inner(*pop.chain);
    FaultProfile profile;
    profile.seed = 0xfa17'0000ull + static_cast<std::uint64_t>(rate * 100);
    profile.transient_rate = rate * 0.5;
    profile.timeout_rate = rate * 0.25;
    profile.rate_limit_rate = rate * 0.15;
    profile.stale_read_rate = rate * 0.10;
    FaultInjectingArchiveNode faulty(inner, profile);

    core::PipelineConfig config;
    config.archive_node = &faulty;
    config.retry = bench_retry();
    core::AnalysisPipeline pipeline(*pop.chain, &pop.sources, config);
    std::vector<core::ContractAnalysis> reports;
    const double ms = time_ms([&] { reports = pipeline.run(inputs); });
    const auto stats = pipeline.summarize(reports);

    const std::string tag = std::to_string(static_cast<int>(rate * 100));
    row(tag + "% faults: sweep", fmt(ms, " ms"));
    row(tag + "% faults: slowdown vs clean",
        fmt(ms / raw_ms, "x"));
    row(tag + "% faults: injected / retried",
        std::to_string(faulty.injected_faults()) + " / " +
            std::to_string(stats.rpc_retries));
    row(tag + "% faults: quarantined", std::to_string(stats.quarantined));
    row(tag + "% faults: bit-identical to clean",
        identical(reports, raw_reports) ? "yes" : "NO");
    results.set("sweep_ms_at_" + tag + "pct_faults", ms);
    results.set("slowdown_at_" + tag + "pct_faults", ms / raw_ms);
    results.set("retries_at_" + tag + "pct_faults",
                static_cast<double>(stats.rpc_retries));
  }

  // ---- 3. outage + checkpoint/resume ------------------------------------
  {
    chain::ArchiveNode inner(*pop.chain);
    FaultProfile profile;
    profile.seed = 77;
    profile.transient_rate = 0.10;
    profile.failures_per_fault = 1'000'000;  // a real outage: retries lose
    FaultInjectingArchiveNode faulty(inner, profile);

    core::PipelineConfig config;
    config.archive_node = &faulty;
    config.retry = bench_retry();
    core::AnalysisPipeline pipeline(*pop.chain, &pop.sources, config);
    std::vector<core::ContractAnalysis> reports;
    const double outage_ms = time_ms([&] { reports = pipeline.run(inputs); });
    const auto partial = pipeline.summarize(reports);

    faulty.heal();
    std::size_t still = 0;
    const double resume_ms =
        time_ms([&] { still = pipeline.resume(inputs, reports); });

    heading("outage (10% of requests dead) + resume after recovery");
    row("outage sweep", fmt(outage_ms, " ms"));
    row("quarantined by the outage", std::to_string(partial.quarantined));
    row("analyzed anyway (partial coverage)",
        std::to_string(partial.analyzed_contracts));
    row("resume pass", fmt(resume_ms, " ms"));
    row("still quarantined after resume", std::to_string(still));
    row("converged to fault-free reports",
        identical(reports, raw_reports) ? "yes" : "NO");
    results.set("outage_sweep_ms", outage_ms);
    results.set("outage_quarantined", static_cast<double>(partial.quarantined));
    results.set("resume_ms", resume_ms);
    results.set("resume_still_quarantined", static_cast<double>(still));
  }

  results.write();
  return 0;
}
