// Figure 6 reproduction: the upgrade-count distribution. The paper finds
// 99.7% of proxies never upgrade, upgraded proxies average only 1.32 logic
// contracts, and upgrade events are rare overall; also validates Algorithm
// 1's API-call efficiency against the naive per-block scan.
#include <cstdio>

#include "bench_common.h"
#include "chain/archive_node.h"
#include "core/logic_finder.h"
#include "core/upgrade_drift.h"

int main() {
  using namespace proxion;
  using namespace proxion::bench;

  const auto& sweep = full_sweep();
  const auto& stats = sweep.stats;

  std::printf("Figure 6: logic-contract upgrades per proxy\n");
  std::printf("(paper: 51,925 of 19.6M proxies ever upgraded = 0.26%%; "
              "avg 1.32 logics per upgraded proxy)\n\n");
  std::printf("  %-12s %-12s\n", "# upgrades", "# proxies");
  std::printf("  %s\n", std::string(26, '-').c_str());
  std::uint64_t upgraded = 0, never = 0, logic_sum = 0;
  for (const auto& [upgrades, count] : stats.upgrade_histogram) {
    std::printf("  %-12llu %-12llu\n",
                static_cast<unsigned long long>(upgrades),
                static_cast<unsigned long long>(count));
    if (upgrades == 0) {
      never += count;
    } else {
      upgraded += count;
    }
  }
  for (const auto& r : sweep.reports) {
    if (r.proxy.is_proxy() && r.logic_history.upgrade_events > 0) {
      logic_sum += r.logic_history.logic_addresses.size();
    }
  }

  heading("headline numbers");
  row("proxies that never upgraded",
      std::to_string(never) + " (" +
          pct(static_cast<double>(never), static_cast<double>(never + upgraded)) +
          ")");
  row("proxies with >=1 upgrade", std::to_string(upgraded));
  row("total upgrade events", std::to_string(stats.total_upgrade_events));
  if (upgraded > 0) {
    row("avg logic contracts per upgraded proxy",
        fmt(static_cast<double>(logic_sum) / static_cast<double>(upgraded)));
  }

  // Algorithm 1 efficiency (§6.1: ~26 getStorageAt calls per proxy vs one
  // call per block for the naive scan).
  heading("Algorithm 1 archive-node efficiency");
  std::uint64_t slot_proxies = 0, api_calls = 0;
  for (const auto& r : sweep.reports) {
    if (!r.proxy.is_proxy() ||
        r.proxy.logic_source != core::LogicSource::kStorageSlot) {
      continue;
    }
    ++slot_proxies;
    api_calls += r.logic_history.api_calls;
  }
  auto& chain = *population().chain;
  row("chain height (blocks)", std::to_string(chain.height()));
  row("slot-based proxies searched", std::to_string(slot_proxies));
  if (slot_proxies > 0) {
    row("avg getStorageAt calls per proxy (Algorithm 1)",
        fmt(static_cast<double>(api_calls) /
            static_cast<double>(slot_proxies)));
  }
  row("naive scan cost per proxy (calls)",
      std::to_string(chain.height() + 1));

  // Direct head-to-head on one upgraded proxy.
  for (std::size_t i = 0; i < sweep.reports.size(); ++i) {
    const auto& r = sweep.reports[i];
    if (!r.proxy.is_proxy() || r.logic_history.upgrade_events == 0 ||
        r.proxy.logic_source != core::LogicSource::kStorageSlot) {
      continue;
    }
    chain::ArchiveNode node(chain);
    core::LogicFinder finder(node);
    const auto fast = finder.find(r.address, r.proxy);
    const auto naive = finder.find_naive(r.address, r.proxy.logic_slot);
    heading("head-to-head on one upgraded proxy");
    row("binary search calls", std::to_string(fast.api_calls));
    row("naive scan calls", std::to_string(naive.api_calls));
    row("identical logic histories",
        fast.logic_addresses == naive.logic_addresses ? "yes" : "NO");
    break;
  }
  // §2.3 extension: upgrade-induced storage drift across the recovered
  // logic histories.
  heading("upgrade-induced storage drift (§2.3)");
  std::uint64_t checked = 0, drifting = 0;
  for (const auto& r : sweep.reports) {
    if (!r.proxy.is_proxy() || r.logic_history.logic_addresses.size() < 2) {
      continue;
    }
    ++checked;
    core::UpgradeDriftDetector drift(chain);
    if (drift.analyze(r.address, r.logic_history).has_drift()) ++drifting;
  }
  row("upgraded proxies checked for layout drift", std::to_string(checked));
  row("with type-incompatible upgrades", std::to_string(drifting));

  std::printf("\n[fig6] expected shape: overwhelming mass at zero upgrades; "
              "binary search beats the naive scan by orders of magnitude.\n");
  return 0;
}
